//! DNN application example: train a small VGG-style network on a synthetic
//! dataset, quantize it to INT4 and compare the exact INT4 baseline with the
//! in-SRAM multiplier corners (paper Tables II/III, scaled down).
//!
//! ```bash
//! cargo run --release --example dnn_inference
//! ```

use optima_suite::optima_circuit::prelude::*;
use optima_suite::optima_core::calibration::{CalibrationConfig, Calibrator};
use optima_suite::optima_dnn::data::{Dataset, SyntheticImageConfig};
use optima_suite::optima_dnn::eval::evaluate;
use optima_suite::optima_dnn::models::{build_model, ModelKind};
use optima_suite::optima_dnn::multiplier::{ExactInt4Products, InMemoryProducts, ProductTable};
use optima_suite::optima_dnn::quantized::QuantizedNetwork;
use optima_suite::optima_dnn::training::{Trainer, TrainingConfig};
use optima_suite::optima_imc::multiplier::{InSramMultiplier, MultiplierConfig, MultiplierTable};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Calibrate the multiplier models and derive the fom / variation tables.
    let technology = Technology::tsmc65_like();
    let models = Calibrator::new(technology, CalibrationConfig::fast())
        .run()?
        .into_models();
    let mut tables: Vec<(&str, Arc<dyn ProductTable>)> =
        vec![("exact INT4", Arc::new(ExactInt4Products))];
    for (name, config) in [
        ("fom", MultiplierConfig::paper_fom_corner()),
        ("variation", MultiplierConfig::paper_variation_corner()),
    ] {
        let multiplier = InSramMultiplier::new(models.clone(), config)?;
        let table =
            MultiplierTable::from_multiplier(&multiplier, multiplier.nominal_operating_point())?;
        tables.push((name, Arc::new(InMemoryProducts::new(table, name))));
    }

    // Train a small VGG-style network on a synthetic 10-class dataset.
    let dataset = Dataset::synthetic(SyntheticImageConfig {
        classes: 6,
        train_per_class: 20,
        test_per_class: 8,
        ..SyntheticImageConfig::cifar_like()
    });
    let shape = dataset.image_shape().to_vec();
    let mut network = build_model(
        ModelKind::Vgg16Style,
        shape[0],
        shape[1],
        dataset.classes(),
        1,
    );
    println!(
        "Training a {} ({} parameters) on {} samples ...",
        ModelKind::Vgg16Style,
        network.parameter_count(),
        dataset.train_len()
    );
    Trainer::new(TrainingConfig {
        epochs: 5,
        learning_rate: 0.02,
        learning_rate_decay: 0.9,
    })
    .train(&mut network, &dataset)?;

    let float_report = evaluate(&mut network, &dataset)?;
    println!(
        "FLOAT32      : top-1 {:.1} %, top-5 {:.1} %",
        float_report.top1_percent(),
        float_report.top5_percent()
    );

    // Quantize to INT4 and swap in the different product providers.
    for (name, products) in tables {
        let mut quantized = QuantizedNetwork::from_network(&network, products)?;
        let report = evaluate(&mut quantized, &dataset)?;
        println!(
            "{name:<13}: top-1 {:.1} %, top-5 {:.1} %",
            report.top1_percent(),
            report.top5_percent()
        );
    }
    Ok(())
}
