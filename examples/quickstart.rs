//! Quickstart: calibrate the OPTIMA models and run one in-SRAM multiplication.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use optima_suite::optima_circuit::prelude::*;
use optima_suite::optima_core::calibration::{CalibrationConfig, Calibrator};
use optima_suite::optima_imc::multiplier::{InSramMultiplier, MultiplierConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the technology and calibrate the OPTIMA models against the
    //    golden-reference transient simulator (the slow-but-accurate path).
    let technology = Technology::tsmc65_like();
    println!("Calibrating OPTIMA models for {} ...", technology.name);
    let outcome = Calibrator::new(technology, CalibrationConfig::fast()).run()?;
    let report = outcome.report();
    println!(
        "  basic discharge RMS: {:.2} mV (from {} circuit simulations)",
        report.basic_discharge_rms_mv, report.circuit_simulations
    );

    // 2. Evaluate a single discharge without solving differential equations.
    let models = outcome.models().clone();
    let v_bl = models.bitline_voltage(Seconds(1.0e-9), Volts(0.8), Volts(1.0), Celsius(25.0))?;
    println!("  V_BL after 1 ns at V_WL = 0.8 V: {:.4} V", v_bl.0);

    // 3. Build the paper's fom-corner 4-bit multiplier and multiply.
    let multiplier = InSramMultiplier::new(models, MultiplierConfig::paper_fom_corner())?;
    for (a, d) in [(3u16, 5u16), (9, 11), (15, 15)] {
        let outcome = multiplier.multiply(a, d)?;
        println!(
            "  {a:2} x {d:2} -> {:3} (expected {:3}, error {:+.0} LSB, {:.1} fJ per multiply)",
            outcome.result,
            outcome.expected,
            outcome.error_lsb(),
            outcome.multiply_energy.0
        );
    }
    Ok(())
}
