//! Design-space exploration example: sweep the paper's 48 corners, select
//! the fom / power / variation corners and print the Pareto front.
//!
//! ```bash
//! cargo run --release --example design_space_exploration
//! ```

use optima_suite::optima_circuit::prelude::*;
use optima_suite::optima_core::calibration::{CalibrationConfig, Calibrator};
use optima_suite::optima_imc::dse::{DesignSpace, DesignSpaceExplorer};
use optima_suite::optima_imc::fom::select_corners;
use optima_suite::optima_imc::pareto::pareto_front;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let technology = Technology::tsmc65_like();
    let models = Calibrator::new(technology, CalibrationConfig::fast())
        .run()?
        .into_models();

    let space = DesignSpace::paper_sweep();
    println!("Exploring {} design corners ...", space.len());
    let explorer = DesignSpaceExplorer::new(models).with_threads(4);
    let results = explorer.explore(&space)?;

    let selected = select_corners(&results)?;
    println!("\nSelected corners (paper Table I analogue):");
    for (name, corner) in [
        ("fom", &selected.fom),
        ("power", &selected.power),
        ("variation", &selected.variation),
    ] {
        println!(
            "  {name:<9}: tau0 = {:.2} ns, V_DAC,0 = {:.1} V, V_DAC,FS = {:.1} V, eps = {:.2} LSB, E = {:.1} fJ",
            corner.point.tau0.0 * 1e9,
            corner.point.vdac_zero.0,
            corner.point.vdac_full_scale.0,
            corner.metrics.epsilon_mul,
            corner.metrics.energy_per_multiply.0,
        );
    }

    let front = pareto_front(&results);
    println!(
        "\nPareto-optimal corners (energy vs. error): {}",
        front.len()
    );
    for corner in front {
        println!(
            "  E = {:6.1} fJ, eps = {:5.2} LSB  (tau0 {:.2} ns, V0 {:.1} V, VFS {:.1} V)",
            corner.metrics.energy_per_multiply.0,
            corner.metrics.epsilon_mul,
            corner.point.tau0.0 * 1e9,
            corner.point.vdac_zero.0,
            corner.point.vdac_full_scale.0,
        );
    }
    Ok(())
}
