//! PVT analysis example: how supply voltage, temperature and mismatch affect
//! the selected multiplier corners (paper Fig. 8).
//!
//! ```bash
//! cargo run --release --example pvt_analysis
//! ```

use optima_suite::optima_circuit::prelude::*;
use optima_suite::optima_core::calibration::{CalibrationConfig, Calibrator};
use optima_suite::optima_imc::multiplier::{InSramMultiplier, MultiplierConfig};
use optima_suite::optima_imc::pvt_analysis::{PvtAnalysis, PvtAnalysisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let technology = Technology::tsmc65_like();
    let models = Calibrator::new(technology, CalibrationConfig::fast())
        .run()?
        .into_models();

    let corners = [
        ("fom", MultiplierConfig::paper_fom_corner()),
        ("power", MultiplierConfig::paper_power_corner()),
        ("variation", MultiplierConfig::paper_variation_corner()),
    ];
    let config = PvtAnalysisConfig::fast();

    for (name, corner) in corners {
        let multiplier = InSramMultiplier::new(models.clone(), corner)?;
        let analysis = PvtAnalysis::run(&multiplier, &config)?;
        println!("Corner `{name}`");
        println!(
            "  nominal average error : {:.2} LSB",
            analysis.nominal_epsilon_mul
        );
        println!(
            "  worst-case analog sigma: {:.2} mV",
            analysis.worst_case_sigma * 1e3
        );
        println!("  error vs. supply voltage:");
        for (vdd, error) in analysis
            .supply_sweep
            .condition_values
            .iter()
            .zip(analysis.supply_sweep.average_error_lsb.iter())
        {
            println!("    VDD = {vdd:.2} V -> {error:.2} LSB");
        }
        println!("  error vs. temperature:");
        for (temp, error) in analysis
            .temperature_sweep
            .condition_values
            .iter()
            .zip(analysis.temperature_sweep.average_error_lsb.iter())
        {
            println!("    T = {temp:>5.1} degC -> {error:.2} LSB");
        }
        println!();
    }
    Ok(())
}
