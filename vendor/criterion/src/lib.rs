//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`]/[`criterion_main!`] and [`black_box`] — backed by a
//! simple wall-clock sampler: each benchmark runs one warm-up iteration and
//! then `sample_size` timed iterations, reporting min/mean/max. No
//! statistics, plots or `target/criterion` reports. When invoked by
//! `cargo test` (which passes `--test` to `harness = false` targets) the
//! benches are skipped so test runs stay fast.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once for warm-up and then `sample_size` timed times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "  {name}: min {min:?} / mean {mean:?} / max {max:?} ({} samples)",
        bencher.samples.len()
    );
}

/// Should the bench binary actually run? `cargo test` passes `--test` to
/// `harness = false` targets; only smoke-check compilation in that case.
#[doc(hidden)]
pub fn should_run_benches() -> bool {
    !std::env::args().any(|a| a == "--test")
}

/// Bundles benchmark functions into a group runner, like the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::should_run_benches() {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub_smoke");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(3u64) * 7));
    }

    #[test]
    fn harness_runs_benches() {
        let mut criterion = Criterion::default();
        trivial_bench(&mut criterion);
    }
}
