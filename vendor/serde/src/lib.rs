//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` to keep its public
//! data types serialization-ready; nothing actually serializes at runtime
//! (there is no `serde_json`/`bincode` in the dependency set). This stub
//! provides the two marker traits and re-exports the no-op derive macros so
//! `use serde::{Deserialize, Serialize};` + `#[derive(...)]` compile
//! unchanged. Swapping in the real crates later requires no source edits.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
