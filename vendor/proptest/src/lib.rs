//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's `tests/properties.rs` uses: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` inner
//! attribute, `x in <range>` strategies over float/integer ranges, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Unlike the real crate, the runner is **fully deterministic**: each
//! property's RNG is seeded from an FNV-1a hash of its test-function name,
//! so repeated CI runs explore identical cases and no
//! `proptest-regressions/` persistence is needed. On failure the panic
//! message reports the property name and case index so the exact inputs can
//! be replayed locally. `PROPTEST_CASES` (an integer environment variable)
//! caps the per-property case count to keep `cargo test -q` fast.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Per-property configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run for each property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random test inputs. Implemented for float and integer ranges.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = runner.unit_f64();
                let value = self.start + ((self.end - self.start) as f64 * unit) as $t;
                // Rounding in the product/cast can land exactly on the
                // excluded upper bound; nudge back inside the range.
                if value >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    value
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let unit = runner.unit_f64_inclusive();
                lo + ((hi - lo) as f64 * unit) as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(runner.next_u64()) * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(runner.next_u64()) * span) >> 64;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Drives the cases of one property: case counting plus a deterministic
/// SplitMix64 stream seeded from the property name.
#[derive(Debug)]
pub struct TestRunner {
    state: u64,
    cases: u32,
    current_case: u32,
}

impl TestRunner {
    /// Creates a runner for the property named `name`.
    pub fn new(config: &ProptestConfig, name: &str) -> Self {
        // FNV-1a over the property name gives a stable per-property seed.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        let cases = match std::env::var("PROPTEST_CASES") {
            Ok(v) => match v.parse::<u32>() {
                Ok(n) => config.cases.min(n.max(1)),
                Err(_) => config.cases,
            },
            Err(_) => config.cases,
        };
        TestRunner {
            state: seed,
            cases,
            current_case: 0,
        }
    }

    /// The number of cases this runner will execute.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The index of the case currently being generated/executed.
    pub fn current_case(&self) -> u32 {
        self.current_case
    }

    /// Advances to the next case.
    pub fn advance_case(&mut self) {
        self.current_case += 1;
    }

    /// Next raw SplitMix64 output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn unit_f64_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }
}

/// Defines property tests. Mirrors the real macro's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn my_property(x in 0.0f64..1.0, n in 0u16..=15) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(&config, stringify!($name));
            while runner.current_case() < runner.cases() {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)*
                let case = runner.current_case();
                let run = ::std::panic::AssertUnwindSafe(|| { $body });
                if let Err(payload) = ::std::panic::catch_unwind(run) {
                    eprintln!(
                        "proptest stub: property `{}` failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        case,
                        runner.cases(),
                        [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),*].join(", "),
                    );
                    ::std::panic::resume_unwind(payload);
                }
                runner.advance_case();
            }
        }
    )*};
}

/// Asserts a condition inside a property, like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property, like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Generated floats respect their strategy range.
        #[test]
        fn floats_in_range(x in -2.0f64..3.0, y in 0.25f32..0.75) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        /// Generated integers respect inclusive bounds.
        #[test]
        fn ints_in_range(n in 0u16..=15, m in 1u16..=15) {
            prop_assert!(n <= 15);
            prop_assert!((1..=15).contains(&m));
            prop_assert_ne!(m, 0);
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let config = super::ProptestConfig::with_cases(4);
        let mut a = super::TestRunner::new(&config, "prop");
        let mut b = super::TestRunner::new(&config, "prop");
        let mut c = super::TestRunner::new(&config, "other");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
