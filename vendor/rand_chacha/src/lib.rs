//! Offline stand-in for `rand_chacha` providing [`ChaCha8Rng`].
//!
//! Unlike the other vendored stubs this is a genuine ChaCha8 implementation
//! (RFC 7539 quarter-round, 8 rounds, 64-bit block counter), so the stream is
//! high quality and fully deterministic for a given seed — which is all the
//! workspace's Monte-Carlo and weight-initialisation code relies on.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha state: constants, 8 key words, counter, nonce.
    state: [u32; 16],
    /// The current output block.
    buffer: [u32; 16],
    /// Next unread word index in `buffer`; 16 means "exhausted".
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter (words 12..14) and nonce (words 14..16) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_rfc7539_style_keystream_shape() {
        // Same seed -> same stream; different seeds -> different streams.
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 10_000;
        let mean = (0..n)
            .map(|_| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
