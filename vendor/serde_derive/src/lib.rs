//! No-op `#[derive(Serialize, Deserialize)]` macros for the offline serde
//! stub. They accept the `#[serde(...)]` helper attribute and expand to
//! nothing — the workspace never serializes at runtime.

use proc_macro::TokenStream;

/// Accepts and discards a `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
