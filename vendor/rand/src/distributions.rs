//! The distribution subset used by the workspace: [`Standard`] and uniform
//! range sampling behind [`SampleRange`].

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: unit-interval floats, full-range integers,
/// fair bools.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled from uniformly. Implemented for `Range` and
/// `RangeInclusive` over the float and integer types the workspace uses.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let value = self.start + ((self.end - self.start) as f64 * unit) as $t;
                // Rounding in the product/cast can land exactly on the
                // excluded upper bound; nudge back inside the range.
                if value >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    value
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // [0, 1] inclusive via 53-bit fraction of (2^53 - 1).
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + ((hi - lo) as f64 * unit) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
