//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API used by this workspace:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (including the SplitMix64-based `seed_from_u64` seed
//! expansion, matching `rand_core`'s construction), and the
//! [`distributions::Standard`] distribution for `f32`/`f64`/integers/`bool`.

#![warn(missing_docs)]

pub mod distributions;

use distributions::{Distribution, SampleRange, Standard};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it to a full seed with
    /// the same PCG32 construction `rand_core` 0.6 uses, so seeded streams
    /// are bit-identical to the real crates'.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // A weak LCG is enough to exercise the trait plumbing.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5f64..1.5);
            assert!((-2.5..1.5).contains(&x));
            let n = rng.gen_range(3u16..=9);
            assert!((3..=9).contains(&n));
            let m = rng.gen_range(10i32..20);
            assert!((10..20).contains(&m));
        }
    }

    #[test]
    fn trait_objects_and_reborrows_work() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            let r: &mut R = rng;
            r.gen_range(0.0f64..1.0)
        }
        let mut rng = Counter(1);
        let x = takes_unsized(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
