//! Umbrella crate of the OPTIMA reproduction workspace.
//!
//! This crate only re-exports the member crates so that the runnable
//! examples in `examples/` and the cross-crate integration tests in `tests/`
//! have a single dependency to pull in.  The actual functionality lives in:
//!
//! * [`optima_math`] — numeric foundations,
//! * [`optima_circuit`] — golden-reference analog circuit simulator,
//! * [`optima_core`] — the OPTIMA behavioural models, calibration, event
//!   simulator and evaluation,
//! * [`optima_imc`] — the 4-bit in-SRAM multiplier case study and
//!   design-space exploration,
//! * [`optima_dnn`] — the quantized DNN substrate used for the application
//!   analysis,
//! * [`optima_serve`] — the batched inference serving engine (queue,
//!   coalescer, shard workers, latency histograms).

pub use optima_circuit;
pub use optima_core;
pub use optima_dnn;
pub use optima_imc;
pub use optima_math;
pub use optima_serve;
