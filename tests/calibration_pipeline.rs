//! Integration test: the full calibration → model → evaluation pipeline
//! spanning `optima-circuit`, `optima-math` and `optima-core`.

use optima_suite::optima_circuit::montecarlo::MismatchSample;
use optima_suite::optima_circuit::prelude::*;
use optima_suite::optima_circuit::pvt::linspace;
use optima_suite::optima_core::calibration::{CalibrationConfig, Calibrator};
use optima_suite::optima_core::evaluation::ModelEvaluator;
use optima_suite::optima_core::simulator::{Event, EventKind, EventSimulator};

#[test]
fn calibrated_models_reproduce_the_golden_reference_across_the_grid() {
    let technology = Technology::tsmc65_like();
    let outcome = Calibrator::new(technology.clone(), CalibrationConfig::fast())
        .run()
        .expect("calibration succeeds");
    let models = outcome.models().clone();
    let simulator = TransientSimulator::new(technology.clone());
    let nominal = PvtConditions::nominal(&technology);

    // The fitted model must stay within a few millivolt of the circuit
    // simulator over an entire held-out grid (not just single points).
    let mut worst = 0.0f64;
    for &v_wl in &linspace(0.5, 0.98, 7) {
        let stimulus = DischargeStimulus {
            word_line_voltage: Volts(v_wl),
            duration: Seconds(2e-9),
            time_steps: 300,
            ..DischargeStimulus::default()
        };
        let waveform = simulator
            .discharge_waveform(&stimulus, &nominal, &MismatchSample::none())
            .unwrap();
        for &t in &linspace(0.3e-9, 1.9e-9, 6) {
            let reference = waveform.sample_at(Seconds(t)).unwrap().0;
            let predicted = models
                .bitline_voltage(Seconds(t), Volts(v_wl), Volts(1.0), Celsius(25.0))
                .unwrap()
                .0;
            worst = worst.max((reference - predicted).abs());
        }
    }
    assert!(
        worst < 0.025,
        "worst model deviation {worst} V is too large"
    );
}

#[test]
fn speedup_over_circuit_simulation_is_substantial() {
    let technology = Technology::tsmc65_like();
    let models = Calibrator::new(technology.clone(), CalibrationConfig::fast())
        .run()
        .expect("calibration succeeds")
        .into_models();
    let evaluator = ModelEvaluator::new(technology, models).with_reference_time_steps(200);
    let report = evaluator
        .measure_speedup(6, 6)
        .expect("measurement succeeds");
    assert!(
        report.speedup() > 10.0,
        "expected at least an order of magnitude, got {}",
        report.speedup()
    );
}

#[test]
fn event_simulator_reproduces_bit_weighted_discharges_with_calibrated_models() {
    let technology = Technology::tsmc65_like();
    let models = Calibrator::new(technology, CalibrationConfig::fast())
        .run()
        .expect("calibration succeeds")
        .into_models();

    // Two columns storing '1'; the second is sampled twice as late, so it
    // must show roughly twice the discharge (bit weighting in time).
    let mut simulator = EventSimulator::new(models, 2);
    let tau0 = 0.4e-9;
    let trace = simulator
        .run(&[
            Event::new(
                Seconds(0.0),
                EventKind::Write {
                    column: 0,
                    bit: true,
                },
            ),
            Event::new(
                Seconds(0.0),
                EventKind::Write {
                    column: 1,
                    bit: true,
                },
            ),
            Event::new(Seconds(0.01e-9), EventKind::Precharge { column: 0 }),
            Event::new(Seconds(0.01e-9), EventKind::Precharge { column: 1 }),
            Event::new(
                Seconds(0.02e-9),
                EventKind::DriveWordLine {
                    voltage: Volts(0.9),
                },
            ),
            Event::new(
                Seconds(0.02e-9 + tau0),
                EventKind::SampleBitline { column: 0 },
            ),
            Event::new(
                Seconds(0.02e-9 + 2.0 * tau0),
                EventKind::SampleBitline { column: 1 },
            ),
            Event::new(Seconds(0.02e-9 + 2.0 * tau0), EventKind::ReleaseWordLine),
        ])
        .expect("schedule is valid");
    assert_eq!(trace.samples.len(), 2);
    let ratio = trace.samples[1].discharge.0 / trace.samples[0].discharge.0;
    assert!(
        (ratio - 2.0).abs() < 0.35,
        "bit weighting ratio {ratio} deviates too far from 2"
    );
    assert!(trace.total_energy().0 > 0.0);
}
