//! Equivalence suite for the DNN inference hot path: the im2col + GEMM and
//! flat-LUT kernels must reproduce the naive scalar reference kernels —
//! within 1e-4 for FLOAT32, bit-identically for the integer-accumulating
//! quantized path — over randomly drawn channel/kernel/size combinations.

use optima_suite::optima_dnn::eval::{evaluate, evaluate_batched};
use optima_suite::optima_dnn::layers::{Conv2d, Dense, Flatten, Layer, MaxPool2d, Relu};
use optima_suite::optima_dnn::multiplier::{
    ComposedProducts, CountingProducts, ExactInt4Products, ProductTable,
};
use optima_suite::optima_dnn::network::Network;
use optima_suite::optima_dnn::prelude::{Dataset, SyntheticImageConfig};
use optima_suite::optima_dnn::quantized::QuantizedNetwork;
use optima_suite::optima_dnn::reference;
use optima_suite::optima_dnn::scratch::KernelScratch;
use optima_suite::optima_dnn::Tensor;
use optima_suite::optima_math::gemm::{
    gemm, packed_gemm_model, packed_gemv_model, GemmScratch, PackedGemm,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn random_tensor(shape: &[usize], rng: &mut ChaCha8Rng) -> Tensor {
    Tensor::from_vec(
        shape,
        (0..shape.iter().product::<usize>())
            .map(|_| rng.gen::<f32>() * 2.0 - 1.0)
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conv2d's im2col + GEMM forward matches the naive six-deep loop
    /// within 1e-4 over random channel/kernel/size combinations.
    #[test]
    fn conv_forward_matches_the_naive_reference(
        in_channels in 1usize..4,
        out_channels in 1usize..5,
        kernel_index in 0usize..3,
        height in 1usize..10,
        width in 1usize..10,
        seed in 0u64..1_000,
    ) {
        let kernel = [1usize, 3, 5][kernel_index];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let conv = Conv2d::new(in_channels, out_channels, kernel, &mut rng);
        let input = random_tensor(&[in_channels, height, width], &mut rng);
        let fast = conv.infer(&input).unwrap();
        let naive = reference::conv2d_forward(
            input.data(),
            in_channels,
            height,
            width,
            conv.weights(),
            conv.bias(),
            out_channels,
            kernel,
        );
        for (index, (&a, &b)) in fast.data().iter().zip(naive.iter()).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-4,
                "element {index}: optimized {a} vs reference {b}"
            );
        }
    }

    /// Dense's GEMV forward matches the naive dot-product loop within 1e-4.
    #[test]
    fn dense_forward_matches_the_naive_reference(
        inputs in 1usize..200,
        outputs in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let dense = Dense::new(inputs, outputs, &mut rng);
        let input = random_tensor(&[inputs], &mut rng);
        let fast = dense.infer(&input).unwrap();
        let naive = reference::dense_forward(
            input.data(),
            dense.weights(),
            dense.bias(),
            inputs,
            outputs,
        );
        for (index, (&a, &b)) in fast.data().iter().zip(naive.iter()).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-4,
                "element {index}: optimized {a} vs reference {b}"
            );
        }
    }

    /// The blocked GEMM matches a naive triple loop within 1e-4.
    #[test]
    fn gemm_matches_a_naive_triple_loop(
        m in 1usize..40,
        k in 1usize..60,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen::<f32>() - 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen::<f32>() - 0.5).collect();
        let mut c = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        for i in 0..m {
            for j in 0..n {
                let expected: f32 = (0..k).map(|kk| a[i * k + kk] * b[kk * n + j]).sum();
                prop_assert!(
                    (c[i * n + j] - expected).abs() <= 1e-4,
                    "C[{i},{j}]: {} vs {expected}",
                    c[i * n + j]
                );
            }
        }
    }

    /// The quantized LUT path is bit-identical to the per-product
    /// dynamic-dispatch reference on whole-network forwards.
    #[test]
    fn quantized_lut_is_bit_identical_to_dyn_dispatch(
        image_seed in 0u64..1_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let network = Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 4 * 4, 3, &mut rng)),
        ]);
        let lut = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        // CountingProducts declines the snapshot, forcing per-product calls.
        let reference = QuantizedNetwork::from_network(
            &network,
            Arc::new(CountingProducts::new(Arc::new(ExactInt4Products))),
        )
        .unwrap();
        prop_assert!(lut.uses_snapshot());
        prop_assert!(!reference.uses_snapshot());
        let mut rng = ChaCha8Rng::seed_from_u64(image_seed);
        let image = Tensor::from_vec(
            &[1, 8, 8],
            (0..64).map(|_| rng.gen::<f32>()).collect(),
        )
        .unwrap();
        prop_assert_eq!(lut.forward(&image).unwrap(), reference.forward(&image).unwrap());
    }

    /// The packed-panel GEMM is **exactly** (bit-for-bit) the lane-ordered
    /// scalar model over random shapes, including M/K/N not divisible by the
    /// 8-wide panel height, with the packed-B scratch reused across calls.
    #[test]
    fn packed_gemm_is_exactly_the_lane_ordered_model(
        m in 1usize..40,
        k in 1usize..60,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen::<f32>() - 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen::<f32>() - 0.5).collect();
        // Accumulate into a nonzero C so `+=` semantics are covered too.
        let seeded: Vec<f32> = (0..m * n).map(|_| rng.gen::<f32>() - 0.5).collect();

        let plan = PackedGemm::pack(m, k, &a);
        let mut scratch = GemmScratch::new();
        let mut packed = seeded.clone();
        // Two passes with the same scratch: reuse must not change results.
        plan.gemm_into(n, &b, &mut packed, &mut scratch);
        plan.gemm_into(n, &b, &mut packed, &mut scratch);

        let mut expected = seeded;
        packed_gemm_model(m, k, n, &a, &b, &mut expected);
        packed_gemm_model(m, k, n, &a, &b, &mut expected);

        for (index, (got, want)) in packed.iter().zip(expected.iter()).enumerate() {
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "element {}: packed {} vs model {}",
                index,
                got,
                want
            );
        }
    }

    /// The packed GEMV (n = 1 fast path) is exactly the lane-ordered model.
    #[test]
    fn packed_gemv_is_exactly_the_lane_ordered_model(
        m in 1usize..48,
        k in 1usize..60,
        seed in 0u64..1_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen::<f32>() - 0.5).collect();
        let x: Vec<f32> = (0..k).map(|_| rng.gen::<f32>() - 0.5).collect();
        let seeded: Vec<f32> = (0..m).map(|_| rng.gen::<f32>() - 0.5).collect();

        let plan = PackedGemm::pack(m, k, &a);
        let mut packed = seeded.clone();
        plan.gemv_into(&x, &mut packed);

        let mut expected = seeded;
        packed_gemv_model(m, k, &a, &x, &mut expected);

        for (index, (got, want)) in packed.iter().zip(expected.iter()).enumerate() {
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "row {}: packed {} vs model {}",
                index,
                got,
                want
            );
        }
    }

    /// The 8-pixel LUT-gather scratch path (`forward_with`) is bit-for-bit
    /// identical to the allocating flat-LUT path at INT4 and at INT8
    /// composed from 2 × INT4 slices, with one arena shared across both
    /// networks and image widths that exercise the hw % 8 scalar tail.
    #[test]
    fn eight_pixel_gather_matches_the_flat_lut_path(
        width in 5usize..12,
        image_seed in 0u64..1_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let network = Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 8 * width, 3, &mut rng)),
        ]);
        let int4 = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        let int8 = QuantizedNetwork::from_network(
            &network,
            Arc::new(ComposedProducts::new(Arc::new(ExactInt4Products), 2)),
        )
        .unwrap();
        prop_assert!(int4.uses_snapshot());
        prop_assert!(int8.uses_snapshot());

        let mut rng = ChaCha8Rng::seed_from_u64(image_seed);
        let image = Tensor::from_vec(
            &[1, 8, width],
            (0..8 * width).map(|_| rng.gen::<f32>()).collect(),
        )
        .unwrap();
        let mut scratch = KernelScratch::new();
        for quantized in [&int4, &int8] {
            let flat = quantized.forward(&image).unwrap();
            let gathered = quantized.forward_with(&image, &mut scratch).unwrap();
            prop_assert_eq!(gathered, &flat);
        }
    }
}

#[test]
fn snapshot_covers_every_product_pair() {
    // A table that records which (a, |w|) pairs were probed during the
    // snapshot: all 15 × 7 nonzero combinations must be covered.
    #[derive(Debug)]
    // optima-lint: allow(R2) -- membership-only set; the test never iterates it
    struct Probing(std::sync::Mutex<std::collections::HashSet<(u8, u8)>>);
    impl ProductTable for Probing {
        fn product(&self, a: u8, b: u8) -> u16 {
            self.0.lock().unwrap().insert((a, b));
            a as u16 * b as u16
        }
        fn name(&self) -> String {
            "probing".to_string()
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let network = Network::new(vec![Box::new(Dense::new(4, 2, &mut rng)) as Box<dyn Layer>]);
    let probing = Arc::new(Probing(std::sync::Mutex::new(Default::default())));
    let _ = QuantizedNetwork::from_network(&network, probing.clone()).unwrap();
    let seen = probing.0.lock().unwrap();
    assert_eq!(seen.len(), 15 * 7, "snapshot must probe all nonzero pairs");
    assert!(!seen.iter().any(|&(a, b)| a == 0 || b == 0));
}

#[test]
fn batched_evaluation_is_deterministic_across_thread_counts() {
    let dataset = Dataset::synthetic(SyntheticImageConfig::tiny());
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut network = Network::new(vec![
        Box::new(Conv2d::new(1, 2, 3, &mut rng)) as Box<dyn Layer>,
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(2 * 8 * 8, 3, &mut rng)),
    ]);
    let serial = evaluate(&mut network, &dataset).unwrap();
    for threads in [1, 2, 5, 16] {
        assert_eq!(
            evaluate_batched(&network, &dataset, threads).unwrap(),
            serial,
            "threads = {threads}"
        );
    }
}

#[test]
fn quantized_batched_evaluation_is_identical_at_one_through_eight_threads() {
    // The per-worker KernelScratch arenas route every image through the
    // 8-pixel gather kernels; the result must not depend on how the sweep
    // is partitioned.
    let dataset = Dataset::synthetic(SyntheticImageConfig::tiny());
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let network = Network::new(vec![
        Box::new(Conv2d::new(1, 2, 3, &mut rng)) as Box<dyn Layer>,
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(2 * 8 * 8, 3, &mut rng)),
    ]);
    for table in [
        Arc::new(ExactInt4Products) as Arc<dyn ProductTable>,
        Arc::new(ComposedProducts::new(Arc::new(ExactInt4Products), 2)),
    ] {
        let mut quantized = QuantizedNetwork::from_network(&network, table).unwrap();
        assert!(quantized.uses_snapshot());
        let serial = evaluate(&mut quantized, &dataset).unwrap();
        for threads in 1..=8 {
            assert_eq!(
                evaluate_batched(&quantized, &dataset, threads).unwrap(),
                serial,
                "threads = {threads}"
            );
        }
    }
}
