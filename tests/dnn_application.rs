//! Integration test: the full application analysis pipeline of the paper's
//! Section VI — calibrate, derive multiplier corner tables, train a DNN,
//! quantize it and compare the accuracy ordering across multipliers.

use optima_suite::optima_circuit::prelude::*;
use optima_suite::optima_core::calibration::{CalibrationConfig, Calibrator};
use optima_suite::optima_dnn::data::{Dataset, SyntheticImageConfig};
use optima_suite::optima_dnn::eval::evaluate;
use optima_suite::optima_dnn::models::{build_model, ModelKind};
use optima_suite::optima_dnn::multiplier::{ExactInt4Products, InMemoryProducts};
use optima_suite::optima_dnn::quantized::QuantizedNetwork;
use optima_suite::optima_dnn::training::{Trainer, TrainingConfig};
use optima_suite::optima_dnn::transfer::transfer_to_new_head;
use optima_suite::optima_imc::multiplier::{InSramMultiplier, MultiplierConfig, MultiplierTable};
use optima_suite::optima_math::units::Seconds;
use std::sync::Arc;

#[test]
fn accuracy_ordering_matches_the_paper_float_int4_fom_beat_variation() {
    // 1. Calibrate and derive the fom and variation multiplier tables.
    let models = Calibrator::new(Technology::tsmc65_like(), CalibrationConfig::fast())
        .run()
        .expect("calibration succeeds")
        .into_models();
    let fom_multiplier =
        InSramMultiplier::new(models.clone(), MultiplierConfig::paper_fom_corner()).unwrap();
    let fom_table =
        MultiplierTable::from_multiplier(&fom_multiplier, fom_multiplier.nominal_operating_point())
            .unwrap();
    // A deliberately bad corner plays the role of the paper's accuracy-losing
    // configuration: its DAC zero code sits far below the threshold voltage
    // and its full scale is low, so most small operands collapse to zero —
    // the failure mode the paper attributes to its variation corner.
    let bad_corner = MultiplierConfig::new(Seconds(0.16e-9), Volts(0.25), Volts(0.6));
    let bad_multiplier = InSramMultiplier::new(models.clone(), bad_corner).unwrap();
    let bad_table =
        MultiplierTable::from_multiplier(&bad_multiplier, bad_multiplier.nominal_operating_point())
            .unwrap();

    // The fom table must be closer to exact multiplication than the bad corner.
    assert!(fom_table.mean_absolute_error() <= bad_table.mean_absolute_error());

    // 2. Train a small CNN on a synthetic dataset.
    let dataset = Dataset::synthetic(SyntheticImageConfig {
        classes: 4,
        image_size: 8,
        channels: 1,
        train_per_class: 30,
        test_per_class: 8,
        noise_level: 0.08,
        seed: 33,
    });
    let shape = dataset.image_shape().to_vec();
    let mut network = build_model(
        ModelKind::Vgg16Style,
        shape[0],
        shape[1],
        dataset.classes(),
        9,
    );
    Trainer::new(TrainingConfig {
        epochs: 14,
        learning_rate: 0.05,
        learning_rate_decay: 0.95,
    })
    .train(&mut network, &dataset)
    .expect("training succeeds");

    // 3. Evaluate FLOAT32, exact INT4, fom and variation.
    let float_top1 = evaluate(&mut network, &dataset).unwrap().top1;
    let mut int4 = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
    let int4_top1 = evaluate(&mut int4, &dataset).unwrap().top1;
    let mut fom =
        QuantizedNetwork::from_network(&network, Arc::new(InMemoryProducts::new(fom_table, "fom")))
            .unwrap();
    let fom_top1 = evaluate(&mut fom, &dataset).unwrap().top1;
    let mut degraded = QuantizedNetwork::from_network(
        &network,
        Arc::new(InMemoryProducts::new(bad_table, "degraded")),
    )
    .unwrap();
    let variation_top1 = evaluate(&mut degraded, &dataset).unwrap().top1;

    // The trained FLOAT32 network must clearly beat chance.
    // Chance level on the 4-class task is 0.25.
    assert!(float_top1 > 0.4, "float top-1 {float_top1} too low");
    // INT4 and fom stay close to FLOAT32 (within 25 percentage points on this
    // tiny task), and the variation corner must not outperform fom.
    assert!(
        int4_top1 > float_top1 - 0.25,
        "int4 {int4_top1} vs float {float_top1}"
    );
    assert!(
        fom_top1 > float_top1 - 0.3,
        "fom {fom_top1} vs float {float_top1}"
    );
    assert!(
        variation_top1 <= fom_top1 + 0.1,
        "the degraded corner ({variation_top1}) should not beat fom ({fom_top1})"
    );
}

#[test]
fn transfer_learning_pipeline_produces_a_working_ten_class_classifier() {
    let pretrain = Dataset::synthetic(SyntheticImageConfig {
        classes: 5,
        image_size: 8,
        channels: 1,
        train_per_class: 15,
        test_per_class: 5,
        noise_level: 0.12,
        seed: 3,
    });
    let target = Dataset::synthetic(SyntheticImageConfig {
        classes: 3,
        image_size: 8,
        channels: 1,
        train_per_class: 15,
        test_per_class: 6,
        noise_level: 0.12,
        seed: 44,
    });
    let shape = pretrain.image_shape().to_vec();
    let mut network = build_model(
        ModelKind::Vgg16Style,
        shape[0],
        shape[1],
        pretrain.classes(),
        5,
    );
    let trainer = Trainer::new(TrainingConfig {
        epochs: 8,
        learning_rate: 0.03,
        learning_rate_decay: 0.9,
    });
    trainer.train(&mut network, &pretrain).unwrap();
    transfer_to_new_head(&mut network, target.classes(), 11).unwrap();
    let head_trainer = Trainer::new(TrainingConfig {
        epochs: 12,
        learning_rate: 0.05,
        learning_rate_decay: 0.95,
    });
    head_trainer.train_head_only(&mut network, &target).unwrap();

    let report = evaluate(&mut network, &target).unwrap();
    assert!(
        report.top1 > 0.45,
        "transfer-learned top-1 {} is too low",
        report.top1
    );
    // Quantizing the transferred network must still work end to end.
    let mut quantized =
        QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
    let quantized_report = evaluate(&mut quantized, &target).unwrap();
    assert!(quantized_report.top1 > 0.3);
}
