//! Property-based tests on cross-crate invariants (proptest).

use optima_suite::optima_circuit::montecarlo::MismatchSample;
use optima_suite::optima_circuit::prelude::*;
use optima_suite::optima_core::model::discharge::DischargeModel;
use optima_suite::optima_core::model::energy::{DischargeEnergyModel, WriteEnergyModel};
use optima_suite::optima_core::model::mismatch::MismatchSigmaModel;
use optima_suite::optima_core::model::suite::ModelSuite;
use optima_suite::optima_core::model::supply::SupplyModel;
use optima_suite::optima_core::model::temperature::TemperatureModel;
use optima_suite::optima_imc::multiplier::{InSramMultiplier, MultiplierConfig};
use optima_suite::optima_math::lsq::polynomial_fit;
use optima_suite::optima_math::units::{Celsius, Seconds, Volts};
use optima_suite::optima_math::Polynomial;
use proptest::prelude::*;

/// A simple linear model suite used by the multiplier properties.
fn linear_suite() -> ModelSuite {
    ModelSuite::new(
        DischargeModel::new(
            Volts(1.0),
            Volts(0.45),
            Polynomial::new(vec![0.0, -0.25]),
            Polynomial::new(vec![0.0, 1.0]),
            (0.0, 3.0),
            (0.0, 1.1),
        ),
        SupplyModel::identity(Volts(1.0)),
        TemperatureModel::identity(Celsius(25.0)),
        MismatchSigmaModel::new(
            Polynomial::new(vec![0.0, 1e-3]),
            Polynomial::new(vec![0.0, 1.0]),
        ),
        WriteEnergyModel::new(Polynomial::new(vec![11.0]), Polynomial::new(vec![1.0])),
        DischargeEnergyModel::new(
            Polynomial::new(vec![1.0]),
            Polynomial::new(vec![0.0, 45.0]),
            Polynomial::new(vec![1.0]),
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Polynomial fitting through exact polynomial data recovers the values.
    #[test]
    fn polynomial_fit_interpolates_exact_data(
        c0 in -2.0f64..2.0,
        c1 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
        probe in -1.0f64..1.0,
    ) {
        let truth = Polynomial::new(vec![c0, c1, c2]);
        let xs: Vec<f64> = (0..12).map(|i| -1.0 + i as f64 * 0.2).collect();
        let ys = truth.eval_many(&xs);
        let fitted = polynomial_fit(&xs, &ys, 2).unwrap();
        prop_assert!((fitted.eval(probe) - truth.eval(probe)).abs() < 1e-6);
    }

    /// The golden-reference discharge is monotone: longer times and higher
    /// word-line voltages never reduce the discharge.
    #[test]
    fn circuit_discharge_is_monotone(
        v_wl in 0.5f64..1.0,
        duration_ns in 0.3f64..1.5,
    ) {
        let tech = Technology::tsmc65_like();
        let sim = TransientSimulator::new(tech.clone());
        let pvt = PvtConditions::nominal(&tech);
        let stimulus = |v: f64, t: f64| DischargeStimulus {
            word_line_voltage: Volts(v),
            duration: Seconds(t * 1e-9),
            time_steps: 120,
            ..DischargeStimulus::default()
        };
        let base = sim
            .discharge_delta(&stimulus(v_wl, duration_ns), &pvt, &MismatchSample::none())
            .unwrap()
            .0;
        let longer = sim
            .discharge_delta(&stimulus(v_wl, duration_ns + 0.4), &pvt, &MismatchSample::none())
            .unwrap()
            .0;
        let stronger = sim
            .discharge_delta(&stimulus((v_wl + 0.1).min(1.0), duration_ns), &pvt, &MismatchSample::none())
            .unwrap()
            .0;
        prop_assert!(longer >= base - 1e-12);
        prop_assert!(stronger >= base - 1e-12);
    }

    /// In-SRAM multiplication by zero is always exactly zero, and results are
    /// monotone in the stored operand for a fixed DAC input.
    #[test]
    fn multiplier_zero_and_monotonicity(a in 0u16..=15, d in 1u16..=15) {
        let multiplier = InSramMultiplier::new(
            linear_suite(),
            MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0)),
        )
        .unwrap();
        prop_assert_eq!(multiplier.multiply(a, 0).unwrap().result, 0);
        prop_assert_eq!(multiplier.multiply(0, d).unwrap().result, 0);
        let smaller = multiplier.multiply(a, d - 1).unwrap().result;
        let larger = multiplier.multiply(a, d).unwrap().result;
        prop_assert!(larger >= smaller);
    }

    /// The multiplier's energy accounting is always positive and grows with
    /// the number of active stored bits.
    #[test]
    fn multiplier_energy_is_positive_and_monotone_in_weight(a in 1u16..=15) {
        let multiplier = InSramMultiplier::new(
            linear_suite(),
            MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0)),
        )
        .unwrap();
        let light = multiplier.multiply(a, 0b0001).unwrap().multiply_energy.0;
        let heavy = multiplier.multiply(a, 0b1111).unwrap().multiply_energy.0;
        prop_assert!(light > 0.0);
        prop_assert!(heavy >= light);
    }
}
