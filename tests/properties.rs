//! Property-based tests on cross-crate invariants (proptest).

use optima_suite::optima_circuit::defects::DefectMap;
use optima_suite::optima_circuit::montecarlo::MismatchSample;
use optima_suite::optima_circuit::prelude::*;
use optima_suite::optima_core::model::discharge::DischargeModel;
use optima_suite::optima_core::model::energy::{DischargeEnergyModel, WriteEnergyModel};
use optima_suite::optima_core::model::mismatch::MismatchSigmaModel;
use optima_suite::optima_core::model::suite::ModelSuite;
use optima_suite::optima_core::model::supply::SupplyModel;
use optima_suite::optima_core::model::temperature::TemperatureModel;
use optima_suite::optima_core::sweep::par_map;
use optima_suite::optima_dnn::multiplier::{
    ComposedProducts, ExactInt4Products, ExactProducts, ProductTable,
};
use optima_suite::optima_imc::dse::{DesignSpace, DesignSpaceExplorer};
use optima_suite::optima_imc::metrics::evaluate_multiplier_at_scalar;
use optima_suite::optima_imc::multiplier::{
    InSramMultiplier, MultiplierConfig, MultiplierTable, OperatingPoint,
};
use optima_suite::optima_imc::reliability::FaultState;
use optima_suite::optima_math::lsq::polynomial_fit;
use optima_suite::optima_math::units::{Celsius, Seconds, Volts};
use optima_suite::optima_math::Polynomial;
use proptest::prelude::*;

/// A PVT-sensitive analytic suite: supply and temperature corrections are
/// non-trivial, so the batched fills exercise every Eq. 3–5 stage.
fn pvt_sensitive_suite() -> ModelSuite {
    ModelSuite::new(
        DischargeModel::new(
            Volts(1.0),
            Volts(0.45),
            Polynomial::new(vec![0.0, -0.25, 0.02, -0.003]),
            Polynomial::new(vec![0.0, 1.0, -0.05]),
            (0.0, 3.0),
            (0.0, 1.1),
        ),
        SupplyModel::new(Volts(1.0), Polynomial::new(vec![1.0, 0.6]), (0.9, 1.1)),
        TemperatureModel::new(Celsius(25.0), Polynomial::new(vec![1e-4]), (-40.0, 125.0)),
        MismatchSigmaModel::new(
            Polynomial::new(vec![0.0, 1.5e-3]),
            Polynomial::new(vec![0.0, 1.0]),
        ),
        WriteEnergyModel::new(
            Polynomial::new(vec![0.0, 0.0, 11.0]),
            Polynomial::new(vec![1.0, 4e-4]),
        ),
        DischargeEnergyModel::new(
            Polynomial::new(vec![0.0, 1.0]),
            Polynomial::new(vec![0.0, 45.0]),
            Polynomial::new(vec![1.0, 3e-4]),
        ),
    )
}

/// A simple linear model suite used by the multiplier properties.
fn linear_suite() -> ModelSuite {
    ModelSuite::new(
        DischargeModel::new(
            Volts(1.0),
            Volts(0.45),
            Polynomial::new(vec![0.0, -0.25]),
            Polynomial::new(vec![0.0, 1.0]),
            (0.0, 3.0),
            (0.0, 1.1),
        ),
        SupplyModel::identity(Volts(1.0)),
        TemperatureModel::identity(Celsius(25.0)),
        MismatchSigmaModel::new(
            Polynomial::new(vec![0.0, 1e-3]),
            Polynomial::new(vec![0.0, 1.0]),
        ),
        WriteEnergyModel::new(Polynomial::new(vec![11.0]), Polynomial::new(vec![1.0])),
        DischargeEnergyModel::new(
            Polynomial::new(vec![1.0]),
            Polynomial::new(vec![0.0, 45.0]),
            Polynomial::new(vec![1.0]),
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Polynomial fitting through exact polynomial data recovers the values.
    #[test]
    fn polynomial_fit_interpolates_exact_data(
        c0 in -2.0f64..2.0,
        c1 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
        probe in -1.0f64..1.0,
    ) {
        let truth = Polynomial::new(vec![c0, c1, c2]);
        let xs: Vec<f64> = (0..12).map(|i| -1.0 + i as f64 * 0.2).collect();
        let ys = truth.eval_many(&xs);
        let fitted = polynomial_fit(&xs, &ys, 2).unwrap();
        prop_assert!((fitted.eval(probe) - truth.eval(probe)).abs() < 1e-6);
    }

    /// The golden-reference discharge is monotone: longer times and higher
    /// word-line voltages never reduce the discharge.
    #[test]
    fn circuit_discharge_is_monotone(
        v_wl in 0.5f64..1.0,
        duration_ns in 0.3f64..1.5,
    ) {
        let tech = Technology::tsmc65_like();
        let sim = TransientSimulator::new(tech.clone());
        let pvt = PvtConditions::nominal(&tech);
        let stimulus = |v: f64, t: f64| DischargeStimulus {
            word_line_voltage: Volts(v),
            duration: Seconds(t * 1e-9),
            time_steps: 120,
            ..DischargeStimulus::default()
        };
        let base = sim
            .discharge_delta(&stimulus(v_wl, duration_ns), &pvt, &MismatchSample::none())
            .unwrap()
            .0;
        let longer = sim
            .discharge_delta(&stimulus(v_wl, duration_ns + 0.4), &pvt, &MismatchSample::none())
            .unwrap()
            .0;
        let stronger = sim
            .discharge_delta(&stimulus((v_wl + 0.1).min(1.0), duration_ns), &pvt, &MismatchSample::none())
            .unwrap()
            .0;
        prop_assert!(longer >= base - 1e-12);
        prop_assert!(stronger >= base - 1e-12);
    }

    /// In-SRAM multiplication by zero is always exactly zero, and results are
    /// monotone in the stored operand for a fixed DAC input.
    #[test]
    fn multiplier_zero_and_monotonicity(a in 0u16..=15, d in 1u16..=15) {
        let multiplier = InSramMultiplier::new(
            linear_suite(),
            MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0)),
        )
        .unwrap();
        prop_assert_eq!(multiplier.multiply(a, 0).unwrap().result, 0);
        prop_assert_eq!(multiplier.multiply(0, d).unwrap().result, 0);
        let smaller = multiplier.multiply(a, d - 1).unwrap().result;
        let larger = multiplier.multiply(a, d).unwrap().result;
        prop_assert!(larger >= smaller);
    }

    /// The multiplier's energy accounting is always positive and grows with
    /// the number of active stored bits.
    #[test]
    fn multiplier_energy_is_positive_and_monotone_in_weight(a in 1u16..=15) {
        let multiplier = InSramMultiplier::new(
            linear_suite(),
            MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0)),
        )
        .unwrap();
        let light = multiplier.multiply(a, 0b0001).unwrap().multiply_energy.0;
        let heavy = multiplier.multiply(a, 0b1111).unwrap().multiply_energy.0;
        prop_assert!(light > 0.0);
        prop_assert!(heavy >= light);
    }

    /// The blocked batched Horner kernel is bit-identical to per-point
    /// scalar evaluation for arbitrary coefficients, grids and lengths
    /// (including lengths that exercise the remainder loop).
    #[test]
    fn batched_polynomial_eval_is_bit_identical(
        c0 in -3.0f64..3.0,
        c1 in -3.0f64..3.0,
        c2 in -3.0f64..3.0,
        c3 in -3.0f64..3.0,
        x0 in -5.0f64..5.0,
        dx in 0.01f64..0.7,
        len in 0usize..40,
    ) {
        let poly = Polynomial::new(vec![c0, c1, c2, c3]);
        let xs: Vec<f64> = (0..len).map(|i| x0 + dx * i as f64).collect();
        let batched = poly.eval_many(&xs);
        let mut in_place = xs.clone();
        poly.eval_many_in_place(&mut in_place);
        for (i, &x) in xs.iter().enumerate() {
            let scalar = poly.eval(x);
            prop_assert_eq!(scalar.to_bits(), batched[i].to_bits());
            prop_assert_eq!(scalar.to_bits(), in_place[i].to_bits());
        }
    }

    /// The batched `ModelSuite` time-grid and operand-grid fills are
    /// bit-identical to the scalar per-point Eqs. 3–5 path at arbitrary
    /// operating points.
    #[test]
    fn batched_model_suite_fills_are_bit_identical(
        v_wl in 0.05f64..1.05,
        vdd in 0.9f64..1.1,
        temp in -30.0f64..110.0,
        points in 1usize..24,
    ) {
        let suite = pvt_sensitive_suite();
        let times: Vec<Seconds> = (1..=points)
            .map(|i| Seconds(2.6e-9 * i as f64 / points as f64))
            .collect();
        let mut voltages = vec![0.0; times.len()];
        suite.fill_bitline_voltages_unchecked(
            &times, Volts(v_wl), Volts(vdd), Celsius(temp), &mut voltages,
        );
        let mut discharges = vec![0.0; times.len()];
        suite
            .fill_discharges(&times, Volts(v_wl), true, Volts(vdd), Celsius(temp), &mut discharges)
            .unwrap();
        for (i, &t) in times.iter().enumerate() {
            let scalar_v = suite.bitline_voltage_unchecked(t, Volts(v_wl), Volts(vdd), Celsius(temp));
            let scalar_d = suite
                .discharge(t, Volts(v_wl), true, Volts(vdd), Celsius(temp))
                .unwrap()
                .0;
            prop_assert_eq!(scalar_v.to_bits(), voltages[i].to_bits());
            prop_assert_eq!(scalar_d.to_bits(), discharges[i].to_bits());
        }
    }

    /// Batched multiplier-table construction and the batched input-space
    /// outcomes are bit-identical to the scalar per-pair path for arbitrary
    /// design points and operating points.
    #[test]
    fn batched_multiplier_table_is_bit_identical_to_scalar(
        tau0_ps in 100.0f64..300.0,
        vdac_zero in 0.3f64..0.6,
        vdd in 0.95f64..1.05,
        temp in 0.0f64..60.0,
    ) {
        let multiplier = InSramMultiplier::new(
            pvt_sensitive_suite(),
            MultiplierConfig::new(Seconds(tau0_ps * 1e-12), Volts(vdac_zero), Volts(1.0)),
        )
        .unwrap();
        let at = OperatingPoint {
            vdd: Volts(vdd),
            temperature: Celsius(temp),
        };
        let batched = MultiplierTable::from_multiplier(&multiplier, at).unwrap();
        let scalar = MultiplierTable::from_multiplier_scalar(&multiplier, at).unwrap();
        prop_assert_eq!(batched, scalar);
        let outcomes = multiplier.outcome_grid(at).unwrap();
        for a in 0..=15u16 {
            for d in 0..=15u16 {
                let scalar_outcome = multiplier.multiply_at(a, d, at).unwrap();
                prop_assert_eq!(outcomes[(a * 16 + d) as usize], scalar_outcome);
            }
        }
    }

    /// Composed INT8 multiplication — four 4-bit analog passes with digital
    /// shift-add accumulation — equals the widened scalar reference over the
    /// full 256×256 input space under ideal (exact-table) conditions, no
    /// matter how many worker threads fan the input space out.
    #[test]
    fn composed_int8_matches_the_widened_reference_at_any_thread_count(
        threads in 1usize..=8,
    ) {
        let composed = ComposedProducts::new(std::sync::Arc::new(ExactInt4Products), 2);
        let reference = ExactProducts::new(8);
        let pairs: Vec<(u8, u8)> = (0..=255u8)
            .flat_map(|a| (0..=255u8).map(move |b| (a, b)))
            .collect();
        let products = par_map(&pairs, threads, |_, &(a, b)| composed.product(a, b));
        for (&(a, b), &product) in pairs.iter().zip(&products) {
            prop_assert_eq!(product, reference.product(a, b), "{} x {}", a, b);
            prop_assert_eq!(product, a as u16 * b as u16, "{} x {}", a, b);
        }
    }

    /// A `DefectMap::none()` fault state — even routed through the
    /// redundancy planner over an array with spare columns — leaves the
    /// multiplier table and the quantized-DNN evaluation bit-identical to
    /// the fault-free path, at any worker-thread count.  This pins the
    /// tentpole invariant that fault injection costs nothing when nothing
    /// is broken.
    #[test]
    fn pristine_defect_map_is_bit_identical_at_any_thread_count(threads in 1usize..=8) {
        use optima_suite::optima_dnn::data::{Dataset, SyntheticImageConfig};
        use optima_suite::optima_dnn::eval::evaluate_batched;
        use optima_suite::optima_dnn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
        use optima_suite::optima_dnn::multiplier::InMemoryProducts;
        use optima_suite::optima_dnn::network::Network;
        use optima_suite::optima_dnn::quantized::QuantizedNetwork;
        use rand::SeedableRng;
        use std::sync::Arc;

        let array = optima_suite::optima_circuit::array::ArrayConfig::default().with_spares(2);
        let config = MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0))
            .with_array(array);
        let baseline = InSramMultiplier::new(pvt_sensitive_suite(), config).unwrap();
        let at = baseline.nominal_operating_point();
        let faults = FaultState::with_redundancy(&array, DefectMap::none(&array), 0).unwrap();
        prop_assert!(faults.is_pristine());
        let faulted = baseline.clone().with_faults(faults).unwrap();

        let base_table = MultiplierTable::from_multiplier(&baseline, at).unwrap();
        let fault_table = MultiplierTable::from_multiplier(&faulted, at).unwrap();
        prop_assert_eq!(&base_table, &fault_table);

        let dataset = Dataset::synthetic(SyntheticImageConfig {
            classes: 4,
            image_size: 8,
            channels: 1,
            train_per_class: 2,
            test_per_class: 3,
            noise_level: 0.1,
            seed: 0x5eed_caf3,
        });
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x0abc_1234);
        let network = Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 4 * 4, 4, &mut rng)),
        ]);
        let base_products: Arc<dyn ProductTable> =
            Arc::new(InMemoryProducts::new(base_table, "pristine"));
        let fault_products: Arc<dyn ProductTable> =
            Arc::new(InMemoryProducts::new(fault_table, "none-map"));
        let base_net = QuantizedNetwork::from_network(&network, base_products).unwrap();
        let fault_net = QuantizedNetwork::from_network(&network, fault_products).unwrap();
        for (image, _) in dataset.test_iter() {
            let base_logits = base_net.forward(image).unwrap();
            let fault_logits = fault_net.forward(image).unwrap();
            for (a, b) in base_logits.data().iter().zip(fault_logits.data()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let base_report = evaluate_batched(&base_net, &dataset, threads).unwrap();
        let fault_report = evaluate_batched(&fault_net, &dataset, 1).unwrap();
        prop_assert_eq!(base_report, fault_report);
    }

    /// The batched operand grids stay bit-identical to the scalar reference
    /// when fanned over the parallel sweep engine, for any worker-thread
    /// count (the explicit-knob equivalent of `OPTIMA_SWEEP_THREADS`).
    #[test]
    fn batched_corner_sweeps_are_thread_invariant(threads in 1usize..=8) {
        let space = DesignSpace::small();
        let explorer = DesignSpaceExplorer::new(pvt_sensitive_suite()).with_threads(threads);
        let results = explorer.explore(&space).unwrap();
        prop_assert_eq!(results.len(), space.len());
        for result in &results {
            let multiplier = InSramMultiplier::new(
                pvt_sensitive_suite(),
                result.point.to_config(),
            )
            .unwrap();
            let reference = evaluate_multiplier_at_scalar(
                &multiplier,
                multiplier.nominal_operating_point(),
            )
            .unwrap();
            prop_assert_eq!(result.metrics, reference);
        }
    }
}
