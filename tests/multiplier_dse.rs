//! Integration test: calibration → multiplier → design-space exploration →
//! corner selection, spanning `optima-core` and `optima-imc`.

use optima_suite::optima_circuit::prelude::*;
use optima_suite::optima_core::calibration::{CalibrationConfig, Calibrator};
use optima_suite::optima_core::model::suite::ModelSuite;
use optima_suite::optima_imc::dse::{DesignSpace, DesignSpaceExplorer};
use optima_suite::optima_imc::fom::select_corners;
use optima_suite::optima_imc::metrics::evaluate_multiplier;
use optima_suite::optima_imc::multiplier::{InSramMultiplier, MultiplierConfig};
use optima_suite::optima_imc::pareto::pareto_front;
use optima_suite::optima_imc::pvt_analysis::{PvtAnalysis, PvtAnalysisConfig};

fn calibrated_models() -> ModelSuite {
    Calibrator::new(Technology::tsmc65_like(), CalibrationConfig::fast())
        .run()
        .expect("calibration succeeds")
        .into_models()
}

#[test]
fn fom_corner_multiplier_is_reasonably_accurate_with_calibrated_models() {
    let models = calibrated_models();
    let multiplier = InSramMultiplier::new(models, MultiplierConfig::paper_fom_corner())
        .expect("corner configuration is valid");
    let metrics = evaluate_multiplier(&multiplier).expect("evaluation succeeds");
    // The paper reports 4.78 LSB average error for its fom corner; our
    // substrate differs, but the error must stay in the single-digit to
    // low-double-digit LSB range and the energy in the tens of femtojoules.
    assert!(
        metrics.epsilon_mul < 30.0,
        "fom corner error {} LSB is implausibly high",
        metrics.epsilon_mul
    );
    assert!(metrics.energy_per_multiply.0 > 1.0);
    assert!(metrics.energy_per_multiply.0 < 500.0);
}

#[test]
fn exploration_and_corner_selection_follow_the_paper_trends() {
    let models = calibrated_models();
    let explorer = DesignSpaceExplorer::new(models).with_threads(4);
    let results = explorer
        .explore(&DesignSpace::paper_sweep())
        .expect("exploration succeeds");
    assert_eq!(results.len(), 48);

    let selected = select_corners(&results).expect("selection succeeds");
    // power uses the smallest energy by definition.
    for result in &results {
        assert!(
            selected.power.metrics.energy_per_multiply.0
                <= result.metrics.energy_per_multiply.0 + 1e-9
        );
    }
    // The fom corner must beat the power corner on accuracy.
    assert!(selected.fom.metrics.epsilon_mul <= selected.power.metrics.epsilon_mul + 1e-9);

    // Energy grows with V_DAC,FS for fixed other parameters (Fig. 7 trend).
    let mut by_fs: Vec<&_> = results
        .iter()
        .filter(|r| {
            (r.point.tau0.0 - 0.16e-9).abs() < 1e-15 && (r.point.vdac_zero.0 - 0.3).abs() < 1e-12
        })
        .collect();
    by_fs.sort_by(|a, b| {
        a.point
            .vdac_full_scale
            .0
            .total_cmp(&b.point.vdac_full_scale.0)
    });
    for pair in by_fs.windows(2) {
        assert!(
            pair[1].metrics.energy_per_multiply.0 >= pair[0].metrics.energy_per_multiply.0,
            "energy must grow with V_DAC,FS"
        );
    }

    // The Pareto front is non-empty and contains the power corner.
    let front = pareto_front(&results);
    assert!(!front.is_empty());
    assert!(front.iter().any(|r| (r.metrics.energy_per_multiply.0
        - selected.power.metrics.energy_per_multiply.0)
        .abs()
        < 1e-9));
}

#[test]
fn pvt_analysis_reports_bounded_voltage_and_temperature_sensitivity() {
    let models = calibrated_models();
    let multiplier = InSramMultiplier::new(models, MultiplierConfig::paper_fom_corner())
        .expect("corner configuration is valid");
    let analysis =
        PvtAnalysis::run(&multiplier, &PvtAnalysisConfig::fast()).expect("analysis succeeds");

    // Both operating-condition sweeps must be populated and their influence on
    // the error must stay bounded (a few LSB over the swept windows); the
    // paper's Fig. 8 shows both voltage and temperature exerting a visible
    // but limited effect on the fom corner.
    let spread = |values: &[f64]| {
        values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    let supply_spread = spread(&analysis.supply_sweep.average_error_lsb);
    let temperature_spread = spread(&analysis.temperature_sweep.average_error_lsb);
    assert!(supply_spread.is_finite() && supply_spread >= 0.0);
    assert!(temperature_spread.is_finite() && temperature_spread >= 0.0);
    assert!(
        supply_spread < 20.0,
        "supply influence {supply_spread} LSB is implausible"
    );
    assert!(
        temperature_spread < 20.0,
        "temperature influence {temperature_spread} LSB is implausible"
    );
    assert!(analysis.worst_case_sigma > 0.0);
    assert!(!analysis.result_profile.expected_results.is_empty());
}
