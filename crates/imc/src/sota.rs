//! Published state-of-the-art in-SRAM multiplier design points (paper Fig. 1).
//!
//! Fig. 1 of the paper compares four published discharge/charge-based
//! in-SRAM multiplication circuits by energy per MAC, supported bit width and
//! operating clock.  These are literature values, not simulation results, so
//! they are reproduced here as a static table used by the `fig1_sota`
//! harness.

use serde::{Deserialize, Serialize};

/// One published design point of the Fig. 1 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SotaDesignPoint {
    /// Citation key in the paper's reference list.
    pub reference: &'static str,
    /// Short description of the work.
    pub description: &'static str,
    /// Energy per multiply-accumulate operation in picojoules.
    pub energy_pj: f64,
    /// Supported operand bit width.
    pub bit_width: u8,
    /// Operating clock frequency in MHz.
    pub clock_mhz: f64,
}

/// The four design points compared in Fig. 1.
///
/// The numbers are taken from the cited publications (IMAC [8], the
/// charge-based vector-vector multiplier [14], AID [15] and the
/// thermometer-encoded time/charge CIM macro [16]); where a paper reports a
/// range, the value used in the figure is listed.
pub fn published_design_points() -> Vec<SotaDesignPoint> {
    vec![
        SotaDesignPoint {
            reference: "[8]",
            description: "IMAC: in-memory multi-bit multiplication and accumulation in 6T SRAM",
            energy_pj: 1.0,
            bit_width: 4,
            clock_mhz: 125.0,
        },
        SotaDesignPoint {
            reference: "[14]",
            description: "Charge-based vector-vector multiplication in 65 nm",
            energy_pj: 1.3,
            bit_width: 4,
            clock_mhz: 20.0,
        },
        SotaDesignPoint {
            reference: "[15]",
            description: "AID: accuracy-improved analog discharge-based in-SRAM multiplier",
            energy_pj: 0.95,
            bit_width: 5,
            clock_mhz: 250.0,
        },
        SotaDesignPoint {
            reference: "[16]",
            description: "Thermometer-encoded time/charge-based CIM accelerator (0.735 pJ/MAC)",
            energy_pj: 0.735,
            bit_width: 8,
            clock_mhz: 100.0,
        },
    ]
}

/// The highest bit width among the published designs (Fig. 1 right panel).
pub fn max_published_bit_width() -> u8 {
    published_design_points()
        .iter()
        .map(|p| p.bit_width)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_design_points_are_listed() {
        let points = published_design_points();
        assert_eq!(points.len(), 4);
        let refs: Vec<&str> = points.iter().map(|p| p.reference).collect();
        assert_eq!(refs, vec!["[8]", "[14]", "[15]", "[16]"]);
    }

    #[test]
    fn values_are_in_plausible_ranges() {
        for point in published_design_points() {
            assert!(point.energy_pj > 0.0 && point.energy_pj < 10.0);
            assert!(point.bit_width >= 1 && point.bit_width <= 8);
            assert!(point.clock_mhz > 0.0 && point.clock_mhz < 1000.0);
        }
    }

    #[test]
    fn reference_16_has_the_highest_bit_width() {
        // The paper singles out [16] as offering higher bit widths.
        let points = published_design_points();
        let sixteen = points.iter().find(|p| p.reference == "[16]").unwrap();
        assert_eq!(sixteen.bit_width, max_published_bit_width());
    }
}
