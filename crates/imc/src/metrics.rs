//! Exhaustive input-space evaluation of a multiplier design point.
//!
//! The design-space exploration of Fig. 7 characterises every corner by the
//! average multiplication error after quantisation (`ϵ_mul`, in product LSBs)
//! and the average energy per operation (`E_mul`); the corner selection of
//! Table I additionally needs the analog standard deviation at the maximum
//! discharge.

use crate::error::ImcError;
use crate::multiplier::{InSramMultiplier, OperatingPoint};
use optima_math::stats;
use optima_math::units::{FemtoJoules, Volts};
use serde::{Deserialize, Serialize};

/// Aggregate metrics of one multiplier design point over its full input
/// space (16×16 for the paper's default geometry).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiplierMetrics {
    /// Average absolute error after quantisation, in product LSBs (`ϵ_mul`).
    pub epsilon_mul: f64,
    /// Root-mean-square error in product LSBs.
    pub rms_error_lsb: f64,
    /// Worst-case absolute error in product LSBs.
    pub max_error_lsb: f64,
    /// Average multiplication energy per operation (`E_mul`), excluding writes.
    pub energy_per_multiply: FemtoJoules,
    /// Average total (write + multiply) energy per operation.
    pub energy_per_operation: FemtoJoules,
    /// Analog mismatch standard deviation at the maximum discharge (a = d = 15).
    pub sigma_at_max_discharge: Volts,
    /// Worst-case analog mismatch standard deviation over the input space.
    pub worst_case_sigma: Volts,
}

impl MultiplierMetrics {
    /// Figure of merit of the paper's Eq. 9: `FOM = 1 / (ϵ_mul · E_mul)`.
    pub fn figure_of_merit(&self) -> f64 {
        let denominator = self.epsilon_mul.max(1e-9) * self.energy_per_multiply.0.max(1e-9);
        1.0 / denominator
    }
}

/// Evaluates a multiplier over the full input space at the given operating
/// point, through the batched analog grid
/// ([`InSramMultiplier::outcome_grid`]): the fitted polynomials are
/// evaluated once per (operand, column) instead of once per operand pair.
///
/// Bit-identical to [`evaluate_multiplier_at_scalar`] (enforced by property
/// tests).
///
/// # Errors
///
/// Propagates multiplier evaluation errors.
pub fn evaluate_multiplier_at(
    multiplier: &InSramMultiplier,
    at: OperatingPoint,
) -> Result<MultiplierMetrics, ImcError> {
    let outcomes = multiplier.outcome_grid(at)?;
    let sigmas = multiplier.analog_sigma_grid()?;
    metrics_from(&outcomes, &sigmas)
}

/// The scalar per-pair reference implementation of
/// [`evaluate_multiplier_at`], kept for bit-identity verification in tests
/// and the `analog_mac` benches.
///
/// # Errors
///
/// Propagates multiplier evaluation errors.
pub fn evaluate_multiplier_at_scalar(
    multiplier: &InSramMultiplier,
    at: OperatingPoint,
) -> Result<MultiplierMetrics, ImcError> {
    let max = multiplier.array().operand_max();
    let mut outcomes = Vec::with_capacity(multiplier.array().input_space());
    let mut sigmas = Vec::with_capacity(multiplier.array().input_space());
    for a in 0..=max {
        for d in 0..=max {
            outcomes.push(multiplier.multiply_at(a, d, at)?);
            sigmas.push(multiplier.analog_sigma(a, d)?);
        }
    }
    metrics_from(&outcomes, &sigmas)
}

fn metrics_from(
    outcomes: &[crate::multiplier::MultiplyOutcome],
    sigmas: &[Volts],
) -> Result<MultiplierMetrics, ImcError> {
    let mut abs_errors = Vec::with_capacity(outcomes.len());
    let mut signed_errors = Vec::with_capacity(outcomes.len());
    let mut multiply_energies = Vec::with_capacity(outcomes.len());
    let mut total_energies = Vec::with_capacity(outcomes.len());
    let mut worst_sigma: f64 = 0.0;

    for (outcome, sigma) in outcomes.iter().zip(sigmas) {
        signed_errors.push(outcome.error_lsb());
        abs_errors.push(outcome.error_lsb().abs());
        multiply_energies.push(outcome.multiply_energy.0);
        total_energies.push(outcome.total_energy().0);
        worst_sigma = worst_sigma.max(sigma.0);
    }

    Ok(MultiplierMetrics {
        epsilon_mul: stats::mean(&abs_errors),
        rms_error_lsb: stats::rms(&signed_errors),
        max_error_lsb: abs_errors.iter().cloned().fold(0.0, f64::max),
        energy_per_multiply: FemtoJoules(stats::mean(&multiply_energies)),
        energy_per_operation: FemtoJoules(stats::mean(&total_energies)),
        // The last grid entry is (a, d) = (max, max): the maximum discharge.
        // optima-lint: allow(R3) -- the operand grid always has at least (0, 0)
        sigma_at_max_discharge: *sigmas.last().expect("input space is never empty"),
        worst_case_sigma: Volts(worst_sigma),
    })
}

/// Evaluates a multiplier over the full input space at its nominal operating point.
///
/// # Errors
///
/// Propagates multiplier evaluation errors.
pub fn evaluate_multiplier(multiplier: &InSramMultiplier) -> Result<MultiplierMetrics, ImcError> {
    evaluate_multiplier_at(multiplier, multiplier.nominal_operating_point())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::{MultiplierConfig, OPERAND_BITS, OPERAND_MAX};
    use optima_circuit::array::ArrayConfig;
    use optima_math::units::{Seconds, Volts};

    fn near_ideal() -> InSramMultiplier {
        InSramMultiplier::new(
            crate::testsupport::linear_suite(),
            MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0)),
        )
        .unwrap()
    }

    fn nonlinear() -> InSramMultiplier {
        // Zero code well below the threshold voltage: small DAC codes produce
        // almost no discharge, which is the paper's "variation corner" failure
        // mode for small operands.
        InSramMultiplier::new(
            crate::testsupport::linear_suite(),
            MultiplierConfig::new(Seconds(0.16e-9), Volts(0.1), Volts(1.0)),
        )
        .unwrap()
    }

    #[test]
    fn near_ideal_configuration_has_sub_lsb_error() {
        let metrics = evaluate_multiplier(&near_ideal()).unwrap();
        assert!(
            metrics.epsilon_mul < 1.0,
            "epsilon = {}",
            metrics.epsilon_mul
        );
        assert!(metrics.rms_error_lsb < 1.5);
        assert!(metrics.max_error_lsb <= 3.0);
        assert!(metrics.energy_per_multiply.0 > 0.0);
        assert!(metrics.energy_per_operation.0 > metrics.energy_per_multiply.0);
    }

    #[test]
    fn misaligned_dac_zero_increases_error() {
        let good = evaluate_multiplier(&near_ideal()).unwrap();
        let bad = evaluate_multiplier(&nonlinear()).unwrap();
        assert!(
            bad.epsilon_mul > good.epsilon_mul,
            "bad {} <= good {}",
            bad.epsilon_mul,
            good.epsilon_mul
        );
    }

    #[test]
    fn sigma_metrics_are_consistent() {
        let metrics = evaluate_multiplier(&near_ideal()).unwrap();
        assert!(metrics.worst_case_sigma.0 >= metrics.sigma_at_max_discharge.0 - 1e-12);
        assert!(metrics.sigma_at_max_discharge.0 > 0.0);
    }

    #[test]
    fn figure_of_merit_prefers_accurate_and_efficient_corners() {
        let good = evaluate_multiplier(&near_ideal()).unwrap();
        let bad = evaluate_multiplier(&nonlinear()).unwrap();
        assert!(good.figure_of_merit() > bad.figure_of_merit());
    }

    #[test]
    fn batched_metrics_are_bit_identical_to_the_scalar_reference() {
        for multiplier in [near_ideal(), nonlinear()] {
            let at = multiplier.nominal_operating_point();
            let batched = evaluate_multiplier_at(&multiplier, at).unwrap();
            let scalar = evaluate_multiplier_at_scalar(&multiplier, at).unwrap();
            assert_eq!(batched, scalar);
        }
    }

    #[test]
    fn operand_bits_constant_is_four() {
        assert_eq!(OPERAND_BITS, 4);
        assert_eq!(OPERAND_MAX, 15);
    }

    #[test]
    fn int8_metrics_are_bit_identical_between_batched_and_scalar() {
        let multiplier = InSramMultiplier::new(
            crate::testsupport::linear_suite(),
            MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0))
                .with_array(ArrayConfig::int8()),
        )
        .unwrap();
        let at = multiplier.nominal_operating_point();
        let batched = evaluate_multiplier_at(&multiplier, at).unwrap();
        let scalar = evaluate_multiplier_at_scalar(&multiplier, at).unwrap();
        assert_eq!(batched, scalar);
        assert!(batched.epsilon_mul.is_finite());
        assert!(batched.energy_per_multiply.0 > 0.0);
    }
}
