//! Shared fixtures for the unit tests of this crate (compiled only for tests).

use optima_core::model::discharge::DischargeModel;
use optima_core::model::energy::{DischargeEnergyModel, WriteEnergyModel};
use optima_core::model::mismatch::MismatchSigmaModel;
use optima_core::model::suite::ModelSuite;
use optima_core::model::supply::SupplyModel;
use optima_core::model::temperature::TemperatureModel;
use optima_math::units::{Celsius, Volts};
use optima_math::Polynomial;

/// A suite whose discharge is exactly linear in overdrive and time:
/// `ΔV = 0.25 V/(V·ns) · V_od · t`.  With a linear DAC whose zero code sits at
/// the threshold voltage, the resulting multiplier is nearly ideal, which
/// makes expected results easy to reason about in tests.
pub(crate) fn linear_suite() -> ModelSuite {
    ModelSuite::new(
        DischargeModel::new(
            Volts(1.0),
            Volts(0.45),
            Polynomial::new(vec![0.0, -0.25]),
            Polynomial::new(vec![0.0, 1.0]),
            (0.0, 3.0),
            (0.0, 1.1),
        ),
        SupplyModel::identity(Volts(1.0)),
        TemperatureModel::identity(Celsius(25.0)),
        MismatchSigmaModel::new(
            Polynomial::new(vec![0.0, 1e-3]),
            Polynomial::new(vec![0.0, 1.0]),
        ),
        WriteEnergyModel::new(Polynomial::new(vec![11.0]), Polynomial::new(vec![1.0])),
        DischargeEnergyModel::new(
            Polynomial::new(vec![1.0]),
            Polynomial::new(vec![0.0, 45.0]),
            Polynomial::new(vec![1.0]),
        ),
    )
}

/// Like [`linear_suite`] but with supply and temperature sensitivity, so PVT
/// sweeps actually move the results.
pub(crate) fn pvt_sensitive_suite() -> ModelSuite {
    ModelSuite::new(
        DischargeModel::new(
            Volts(1.0),
            Volts(0.45),
            Polynomial::new(vec![0.0, -0.25]),
            Polynomial::new(vec![0.0, 1.0]),
            (0.0, 3.0),
            (0.0, 1.1),
        ),
        SupplyModel::new(Volts(1.0), Polynomial::new(vec![1.0, 0.6]), (0.9, 1.1)),
        TemperatureModel::new(Celsius(25.0), Polynomial::new(vec![1e-4]), (-40.0, 125.0)),
        MismatchSigmaModel::new(
            Polynomial::new(vec![0.0, 1.5e-3]),
            Polynomial::new(vec![0.0, 1.0]),
        ),
        WriteEnergyModel::new(
            Polynomial::new(vec![0.0, 0.0, 11.0]),
            Polynomial::new(vec![1.0, 4e-4]),
        ),
        DischargeEnergyModel::new(
            Polynomial::new(vec![0.0, 1.0]),
            Polynomial::new(vec![0.0, 45.0]),
            Polynomial::new(vec![1.0, 3e-4]),
        ),
    )
}
