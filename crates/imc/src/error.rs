//! Error type of the in-SRAM multiplier case study.

use optima_circuit::CircuitError;
use optima_core::ModelError;
use std::fmt;

/// Error returned by the multiplier, design-space exploration and PVT analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ImcError {
    /// A multiplier operand exceeded the 4-bit range.
    OperandOutOfRange {
        /// The offending operand value.
        value: u16,
        /// The largest representable operand.
        max: u16,
    },
    /// The multiplier configuration is inconsistent (e.g. `V_DAC,0 ≥ V_DAC,FS`).
    InvalidConfiguration {
        /// Human-readable description of the inconsistency.
        context: String,
    },
    /// The design space contains no corners.
    EmptyDesignSpace,
    /// One corner of an error-strict parallel sweep failed (design-space
    /// exploration, PVT sweep or Monte-Carlo sweep).  No partial result is
    /// returned and the lowest failing corner is named.
    CornerFailed {
        /// Zero-based index of the failing corner in the swept grid.
        index: usize,
        /// Human-readable description of the failing corner.
        corner: String,
        /// The underlying error.
        source: Box<ImcError>,
    },
    /// A defective array column could not be remapped because every spare
    /// column is already used or itself defective.  Names the exact failing
    /// coordinate — row, logical column and the analog slice pass that
    /// consumes it — so a defect-triggered [`ImcError::CornerFailed`] deep
    /// in a sweep is actionable.
    UnrepairableDefect {
        /// Array row of the stored operand.
        row: u16,
        /// Logical (data) column that is defective.
        column: u16,
        /// Analog slice pass (d-slice index) that reads the column.
        slice_pass: u16,
        /// Number of spare columns the geometry provides.
        spares: u16,
    },
    /// Error bubbled up from the OPTIMA models.
    Model(ModelError),
    /// Error bubbled up from the circuit-level converters.
    Circuit(CircuitError),
}

impl fmt::Display for ImcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImcError::OperandOutOfRange { value, max } => {
                write!(f, "operand {value} exceeds the maximum {max}")
            }
            ImcError::InvalidConfiguration { context } => {
                write!(f, "invalid multiplier configuration: {context}")
            }
            ImcError::EmptyDesignSpace => write!(f, "design space contains no corners"),
            ImcError::CornerFailed {
                index,
                corner,
                source,
            } => {
                write!(f, "sweep corner {index} ({corner}) failed: {source}")
            }
            ImcError::UnrepairableDefect {
                row,
                column,
                slice_pass,
                spares,
            } => {
                write!(
                    f,
                    "unrepairable defect at array cell (row {row}, column {column}, slice pass \
                     {slice_pass}): all {spares} spare columns are exhausted or defective"
                )
            }
            ImcError::Model(err) => write!(f, "model error: {err}"),
            ImcError::Circuit(err) => write!(f, "circuit error: {err}"),
        }
    }
}

impl std::error::Error for ImcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImcError::Model(err) => Some(err),
            ImcError::Circuit(err) => Some(err),
            ImcError::CornerFailed { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl ImcError {
    /// Wraps an [`optima_core::sweep::SweepError`] with a human-readable
    /// description of the failing corner.
    pub fn from_sweep(
        err: optima_core::sweep::SweepError<ImcError>,
        corner: impl Into<String>,
    ) -> Self {
        ImcError::CornerFailed {
            index: err.index,
            corner: corner.into(),
            source: Box::new(err.source),
        }
    }
}

impl From<ModelError> for ImcError {
    fn from(err: ModelError) -> Self {
        ImcError::Model(err)
    }
}

impl From<CircuitError> for ImcError {
    fn from(err: CircuitError) -> Self {
        ImcError::Circuit(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = ImcError::OperandOutOfRange { value: 16, max: 15 };
        assert!(err.to_string().contains("16"));
        assert!(ImcError::EmptyDesignSpace
            .to_string()
            .contains("no corners"));
    }

    #[test]
    fn unrepairable_defect_names_the_full_coordinate() {
        let err = ImcError::UnrepairableDefect {
            row: 3,
            column: 6,
            slice_pass: 1,
            spares: 2,
        };
        let message = err.to_string();
        assert!(message.contains("row 3"), "{message}");
        assert!(message.contains("column 6"), "{message}");
        assert!(message.contains("slice pass 1"), "{message}");
        assert!(message.contains("2 spare"), "{message}");
    }

    #[test]
    fn corner_failed_chain_surfaces_the_defect_coordinate() {
        // The display chain a sweep user actually sees: the corner wrapper
        // must carry the nested coordinate through, not swallow it.
        let err = ImcError::CornerFailed {
            index: 7,
            corner: "rate 0.2, lifetime step 3".to_string(),
            source: Box::new(ImcError::UnrepairableDefect {
                row: 0,
                column: 2,
                slice_pass: 0,
                spares: 0,
            }),
        };
        let message = err.to_string();
        assert!(message.contains("corner 7"), "{message}");
        assert!(
            message.contains("(row 0, column 2, slice pass 0)"),
            "{message}"
        );
        use std::error::Error;
        assert!(err.source().is_some());
    }

    #[test]
    fn conversions_preserve_sources() {
        use std::error::Error;
        let err: ImcError = ModelError::NotCalibrated {
            model: "discharge".to_string(),
        }
        .into();
        assert!(err.source().is_some());
        let err: ImcError = CircuitError::InvalidConverterConfig {
            context: "x".to_string(),
        }
        .into();
        assert!(matches!(err, ImcError::Circuit(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImcError>();
    }
}
