//! PVT and mismatch analysis of selected multiplier corners (paper Fig. 8).
//!
//! For each selected corner the paper reports:
//!
//! * the average multiplication result deviation and the analog standard
//!   deviation as a function of the expected result (Fig. 8 left),
//! * the influence of supply-voltage and temperature variations on the error
//!   level (Fig. 8 right), and
//! * the mismatch Monte-Carlo error distribution (the 28.1×-accelerated
//!   sweep of Section V).
//!
//! All three sweeps run on the error-strict parallel engine of
//! [`optima_core::sweep`]: a failing condition aborts the analysis with
//! [`ImcError::CornerFailed`] naming it, and every reported number —
//! including the Monte-Carlo statistics, which draw one split-seed RNG
//! stream per sample — is bit-identical for any thread count.  Inside each
//! swept condition the full 16×16 operand grid is evaluated through the
//! batched analog path ([`InSramMultiplier::outcome_grid`]), which is
//! bit-identical to the scalar per-pair loop it replaced.

use crate::error::ImcError;
use crate::multiplier::{InSramMultiplier, OperatingPoint};
use optima_circuit::pvt::linspace;
use optima_core::sweep::{par_map_sweep, stream_seed};
use optima_math::stats;
use optima_math::units::{Celsius, Volts};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the PVT analysis sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PvtAnalysisConfig {
    /// Supply voltages of the voltage sweep (volts).
    pub supply_voltages: Vec<f64>,
    /// Temperatures of the temperature sweep (°C).
    pub temperatures: Vec<f64>,
    /// Number of mismatch Monte Carlo instances (each covers the full
    /// input space of the analysed geometry).
    pub mismatch_samples: usize,
    /// Base RNG seed of the Monte Carlo sampling; every sample derives its
    /// own independent stream from it (see
    /// [`optima_core::sweep::stream_seed`]).
    pub seed: u64,
    /// Worker threads of the sweeps (`0` = automatic, see
    /// [`optima_core::sweep::default_threads`]).
    pub threads: usize,
}

impl Default for PvtAnalysisConfig {
    fn default() -> Self {
        PvtAnalysisConfig {
            supply_voltages: linspace(0.9, 1.1, 5),
            temperatures: linspace(0.0, 60.0, 4),
            mismatch_samples: 50,
            seed: 0xf188,
            threads: 0,
        }
    }
}

impl PvtAnalysisConfig {
    /// A reduced configuration for tests.
    pub fn fast() -> Self {
        PvtAnalysisConfig {
            supply_voltages: vec![0.95, 1.0, 1.05],
            temperatures: vec![0.0, 25.0, 60.0],
            mismatch_samples: 12,
            ..PvtAnalysisConfig::default()
        }
    }
}

/// Error statistics binned by the expected multiplication result (Fig. 8 left).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResultProfile {
    /// Expected results (0..=product_max) that occur in the input space, ascending.
    pub expected_results: Vec<u16>,
    /// Average signed error (result − expected) per expected result, in LSBs.
    pub average_error_lsb: Vec<f64>,
    /// Average analog mismatch standard deviation per expected result, in volts.
    pub analog_sigma: Vec<f64>,
}

/// Average error as a function of one varied operating-condition axis (Fig. 8 right).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConditionSweep {
    /// The swept condition values (volts or °C).
    pub condition_values: Vec<f64>,
    /// Average absolute error over the input space at each condition, in LSBs.
    pub average_error_lsb: Vec<f64>,
}

/// Mismatch Monte-Carlo error statistics over the full input space.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MismatchMonteCarlo {
    /// Average absolute error of each Monte-Carlo instance, in LSBs, in
    /// sample order (sample `i` uses the RNG stream derived for index `i`).
    pub per_sample_error_lsb: Vec<f64>,
    /// Mean of the per-sample average errors, in LSBs.
    pub mean_error_lsb: f64,
    /// Standard deviation of the per-sample average errors, in LSBs.
    pub std_error_lsb: f64,
    /// Worst per-sample average error, in LSBs.
    pub worst_error_lsb: f64,
}

/// Full Fig. 8 analysis result for one corner.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PvtAnalysis {
    /// Error/σ versus expected result at nominal conditions.
    pub result_profile: ResultProfile,
    /// Error versus supply voltage.
    pub supply_sweep: ConditionSweep,
    /// Error versus temperature.
    pub temperature_sweep: ConditionSweep,
    /// Mismatch Monte-Carlo error statistics at nominal conditions.
    pub mismatch_monte_carlo: MismatchMonteCarlo,
    /// Worst-case analog standard deviation observed (volts).
    pub worst_case_sigma: f64,
    /// Average error over the whole input space at nominal conditions (LSBs).
    pub nominal_epsilon_mul: f64,
}

impl PvtAnalysis {
    /// Runs the full analysis for one multiplier corner.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::CornerFailed`] naming the first failing sweep
    /// condition; no partial analysis is ever returned.
    pub fn run(
        multiplier: &InSramMultiplier,
        config: &PvtAnalysisConfig,
    ) -> Result<Self, ImcError> {
        let nominal = multiplier.nominal_operating_point();
        let operand_max = multiplier.array().operand_max();
        let product_max = multiplier.array().product_max();
        let input_space = multiplier.array().input_space();

        // ---- Fig. 8 left: error and sigma binned by expected result ----
        // The whole input space is evaluated in one batched analog-grid
        // pass ([`InSramMultiplier::outcome_grid`]); outcomes come back in
        // operand-major order, so binning sees samples in the same (a, d)
        // order as the historical serial double loop — and the grid itself is
        // bit-identical to that loop.
        let outcomes =
            multiplier
                .outcome_grid(nominal)
                .map_err(|source| ImcError::CornerFailed {
                    index: 0,
                    corner: "nominal input-space grid".to_string(),
                    source: Box::new(source),
                })?;
        let sigmas = multiplier
            .analog_sigma_grid()
            .map_err(|source| ImcError::CornerFailed {
                index: 0,
                corner: "nominal input-space sigma grid".to_string(),
                source: Box::new(source),
            })?;

        let mut per_expected_error: Vec<Vec<f64>> = vec![Vec::new(); product_max as usize + 1];
        let mut per_expected_sigma: Vec<Vec<f64>> = vec![Vec::new(); product_max as usize + 1];
        let mut abs_errors = Vec::with_capacity(input_space);
        let mut worst_sigma: f64 = 0.0;
        for (outcome, sigma) in outcomes.iter().zip(&sigmas) {
            let error_lsb = outcome.error_lsb();
            per_expected_error[outcome.expected as usize].push(error_lsb);
            per_expected_sigma[outcome.expected as usize].push(sigma.0);
            abs_errors.push(error_lsb.abs());
            worst_sigma = worst_sigma.max(sigma.0);
        }

        let mut result_profile = ResultProfile::default();
        for expected in 0..=product_max as usize {
            if per_expected_error[expected].is_empty() {
                continue;
            }
            result_profile.expected_results.push(expected as u16);
            result_profile
                .average_error_lsb
                .push(stats::mean(&per_expected_error[expected]));
            result_profile
                .analog_sigma
                .push(stats::mean(&per_expected_sigma[expected]));
        }

        // ---- Fig. 8 right: error vs supply voltage and temperature ----
        let supply_errors = par_map_sweep(&config.supply_voltages, config.threads, |_, &vdd| {
            average_error_at(
                multiplier,
                OperatingPoint {
                    vdd: Volts(vdd),
                    temperature: nominal.temperature,
                },
            )
        })
        .map_err(|err| {
            let vdd = config.supply_voltages[err.index];
            ImcError::from_sweep(err, format!("supply sweep V_DD = {vdd} V"))
        })?;
        let supply_sweep = ConditionSweep {
            condition_values: config.supply_voltages.clone(),
            average_error_lsb: supply_errors,
        };

        let temperature_errors = par_map_sweep(&config.temperatures, config.threads, |_, &temp| {
            average_error_at(
                multiplier,
                OperatingPoint {
                    vdd: nominal.vdd,
                    temperature: Celsius(temp),
                },
            )
        })
        .map_err(|err| {
            let temp = config.temperatures[err.index];
            ImcError::from_sweep(err, format!("temperature sweep T = {temp} degC"))
        })?;
        let temperature_sweep = ConditionSweep {
            condition_values: config.temperatures.clone(),
            average_error_lsb: temperature_errors,
        };

        // ---- Mismatch Monte Carlo: one split-seed RNG stream per sample ----
        let sample_indices: Vec<u64> = (0..config.mismatch_samples as u64).collect();
        let per_sample_error_lsb = par_map_sweep(&sample_indices, config.threads, |_, &sample| {
            let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(config.seed, sample));
            let mut errors = Vec::with_capacity(input_space);
            for a in 0..=operand_max {
                for d in 0..=operand_max {
                    let outcome = multiplier.multiply_with_mismatch(&mut rng, a, d, nominal)?;
                    errors.push(outcome.error_lsb().abs());
                }
            }
            Ok::<_, ImcError>(stats::mean(&errors))
        })
        .map_err(|err| {
            let sample = sample_indices[err.index];
            ImcError::from_sweep(err, format!("mismatch Monte-Carlo sample {sample}"))
        })?;
        let mismatch_monte_carlo = MismatchMonteCarlo {
            mean_error_lsb: stats::mean(&per_sample_error_lsb),
            std_error_lsb: stats::std_dev(&per_sample_error_lsb),
            worst_error_lsb: per_sample_error_lsb.iter().cloned().fold(0.0, f64::max),
            per_sample_error_lsb,
        };

        Ok(PvtAnalysis {
            result_profile,
            supply_sweep,
            temperature_sweep,
            mismatch_monte_carlo,
            worst_case_sigma: worst_sigma,
            nominal_epsilon_mul: stats::mean(&abs_errors),
        })
    }
}

/// Average absolute error over the full input space at one operating point,
/// evaluated through the batched analog grid (bit-identical to the scalar
/// per-pair loop it replaced).
fn average_error_at(multiplier: &InSramMultiplier, at: OperatingPoint) -> Result<f64, ImcError> {
    let errors: Vec<f64> = multiplier
        .outcome_grid(at)?
        .iter()
        .map(|outcome| outcome.error_lsb().abs())
        .collect();
    Ok(stats::mean(&errors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::{MultiplierConfig, PRODUCT_MAX};
    use crate::testsupport::{linear_suite, pvt_sensitive_suite};
    use optima_circuit::array::ArrayConfig;
    use optima_math::units::Seconds;

    fn multiplier(suite_sensitive: bool) -> InSramMultiplier {
        let suite = if suite_sensitive {
            pvt_sensitive_suite()
        } else {
            linear_suite()
        };
        InSramMultiplier::new(
            suite,
            MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0)),
        )
        .unwrap()
    }

    fn analysis(suite_sensitive: bool) -> PvtAnalysis {
        PvtAnalysis::run(&multiplier(suite_sensitive), &PvtAnalysisConfig::fast()).unwrap()
    }

    #[test]
    fn result_profile_covers_the_product_range() {
        let analysis = analysis(false);
        let profile = &analysis.result_profile;
        assert_eq!(profile.expected_results[0], 0);
        assert_eq!(*profile.expected_results.last().unwrap(), PRODUCT_MAX);
        assert_eq!(
            profile.expected_results.len(),
            profile.average_error_lsb.len()
        );
        assert_eq!(profile.expected_results.len(), profile.analog_sigma.len());
        // Expected results of a 4x4-bit multiplier: not every integer occurs
        // (e.g. 211 is prime and > 15), so the list is shorter than 226.
        assert!(profile.expected_results.len() < PRODUCT_MAX as usize + 1);
    }

    #[test]
    fn analog_sigma_grows_with_expected_result() {
        let analysis = analysis(false);
        let profile = &analysis.result_profile;
        let first_nonzero = profile.analog_sigma.iter().position(|&s| s > 0.0).unwrap();
        assert!(profile.analog_sigma.last().unwrap() > &profile.analog_sigma[first_nonzero]);
    }

    #[test]
    fn off_nominal_supply_increases_error_for_sensitive_models() {
        let analysis = analysis(true);
        let sweep = &analysis.supply_sweep;
        let nominal_index = sweep
            .condition_values
            .iter()
            .position(|&v| (v - 1.0).abs() < 1e-9)
            .unwrap();
        let nominal_error = sweep.average_error_lsb[nominal_index];
        let worst = sweep
            .average_error_lsb
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max);
        assert!(worst >= nominal_error);
        assert!(
            worst > nominal_error + 0.5,
            "supply sweep should visibly degrade the error"
        );
    }

    #[test]
    fn temperature_sweep_is_present_and_mild() {
        let analysis = analysis(true);
        assert_eq!(
            analysis.temperature_sweep.condition_values.len(),
            analysis.temperature_sweep.average_error_lsb.len()
        );
        // Temperature influence exists but stays well below the supply influence.
        let temp_spread = analysis
            .temperature_sweep
            .average_error_lsb
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max)
            - analysis
                .temperature_sweep
                .average_error_lsb
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
        let supply_spread = analysis
            .supply_sweep
            .average_error_lsb
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max)
            - analysis
                .supply_sweep
                .average_error_lsb
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
        assert!(temp_spread <= supply_spread);
    }

    #[test]
    fn nominal_epsilon_and_worst_sigma_are_populated() {
        let analysis = analysis(false);
        assert!(analysis.nominal_epsilon_mul < 1.0);
        assert!(analysis.worst_case_sigma > 0.0);
    }

    #[test]
    fn monte_carlo_statistics_are_populated() {
        let analysis = analysis(false);
        let mc = &analysis.mismatch_monte_carlo;
        assert_eq!(
            mc.per_sample_error_lsb.len(),
            PvtAnalysisConfig::fast().mismatch_samples
        );
        assert!(mc.mean_error_lsb.is_finite());
        assert!(mc.worst_error_lsb >= mc.mean_error_lsb);
        assert!(mc.std_error_lsb >= 0.0);
    }

    #[test]
    fn analysis_follows_the_array_geometry() {
        // A composed INT8 corner runs the same analysis end-to-end: bins
        // cover the widened product range and the Monte Carlo still resolves.
        let multiplier = InSramMultiplier::new(
            linear_suite(),
            MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0))
                .with_array(ArrayConfig::int8()),
        )
        .unwrap();
        let config = PvtAnalysisConfig {
            mismatch_samples: 2,
            supply_voltages: vec![1.0],
            temperatures: vec![25.0],
            ..PvtAnalysisConfig::fast()
        };
        let analysis = PvtAnalysis::run(&multiplier, &config).unwrap();
        let profile = &analysis.result_profile;
        assert_eq!(profile.expected_results[0], 0);
        assert_eq!(*profile.expected_results.last().unwrap(), 65025);
        assert!(analysis.nominal_epsilon_mul.is_finite());
        assert_eq!(analysis.mismatch_monte_carlo.per_sample_error_lsb.len(), 2);
    }

    #[test]
    fn analysis_is_bit_identical_at_any_thread_count() {
        // The full analysis — including the Monte-Carlo sweep, whose samples
        // draw independent split-seed RNG streams — must not depend on how
        // work is distributed over threads.
        let multiplier = multiplier(true);
        let serial = PvtAnalysis::run(
            &multiplier,
            &PvtAnalysisConfig {
                threads: 1,
                ..PvtAnalysisConfig::fast()
            },
        )
        .unwrap();
        for threads in [2, 8] {
            let parallel = PvtAnalysis::run(
                &multiplier,
                &PvtAnalysisConfig {
                    threads,
                    ..PvtAnalysisConfig::fast()
                },
            )
            .unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }
}
