//! PVT and mismatch analysis of selected multiplier corners (paper Fig. 8).
//!
//! For each selected corner the paper reports:
//!
//! * the average multiplication result deviation and the analog standard
//!   deviation as a function of the expected result (Fig. 8 left), and
//! * the influence of supply-voltage and temperature variations on the error
//!   level (Fig. 8 right).

use crate::error::ImcError;
use crate::multiplier::{InSramMultiplier, OperatingPoint, OPERAND_MAX, PRODUCT_MAX};
use optima_circuit::pvt::linspace;
use optima_math::stats;
use optima_math::units::{Celsius, Volts};
use serde::{Deserialize, Serialize};

/// Configuration of the PVT analysis sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PvtAnalysisConfig {
    /// Supply voltages of the voltage sweep (volts).
    pub supply_voltages: Vec<f64>,
    /// Temperatures of the temperature sweep (°C).
    pub temperatures: Vec<f64>,
    /// Number of mismatch Monte Carlo samples per operand pair.
    pub mismatch_samples: usize,
    /// RNG seed of the Monte Carlo sampling.
    pub seed: u64,
}

impl Default for PvtAnalysisConfig {
    fn default() -> Self {
        PvtAnalysisConfig {
            supply_voltages: linspace(0.9, 1.1, 5),
            temperatures: linspace(0.0, 60.0, 4),
            mismatch_samples: 50,
            seed: 0xf188,
        }
    }
}

impl PvtAnalysisConfig {
    /// A reduced configuration for tests.
    pub fn fast() -> Self {
        PvtAnalysisConfig {
            supply_voltages: vec![0.95, 1.0, 1.05],
            temperatures: vec![0.0, 25.0, 60.0],
            mismatch_samples: 12,
            ..PvtAnalysisConfig::default()
        }
    }
}

/// Error statistics binned by the expected multiplication result (Fig. 8 left).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResultProfile {
    /// Expected results (0..=225) that occur in the 16×16 input space, ascending.
    pub expected_results: Vec<u16>,
    /// Average signed error (result − expected) per expected result, in LSBs.
    pub average_error_lsb: Vec<f64>,
    /// Average analog mismatch standard deviation per expected result, in volts.
    pub analog_sigma: Vec<f64>,
}

/// Average error as a function of one varied operating-condition axis (Fig. 8 right).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConditionSweep {
    /// The swept condition values (volts or °C).
    pub condition_values: Vec<f64>,
    /// Average absolute error over the input space at each condition, in LSBs.
    pub average_error_lsb: Vec<f64>,
}

/// Full Fig. 8 analysis result for one corner.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PvtAnalysis {
    /// Error/σ versus expected result at nominal conditions.
    pub result_profile: ResultProfile,
    /// Error versus supply voltage.
    pub supply_sweep: ConditionSweep,
    /// Error versus temperature.
    pub temperature_sweep: ConditionSweep,
    /// Worst-case analog standard deviation observed (volts).
    pub worst_case_sigma: f64,
    /// Average error over the whole input space at nominal conditions (LSBs).
    pub nominal_epsilon_mul: f64,
}

impl PvtAnalysis {
    /// Runs the full analysis for one multiplier corner.
    ///
    /// # Errors
    ///
    /// Propagates multiplier evaluation errors.
    pub fn run(
        multiplier: &InSramMultiplier,
        config: &PvtAnalysisConfig,
    ) -> Result<Self, ImcError> {
        let nominal = multiplier.nominal_operating_point();

        // ---- Fig. 8 left: error and sigma binned by expected result ----
        let mut per_expected_error: Vec<Vec<f64>> = vec![Vec::new(); PRODUCT_MAX as usize + 1];
        let mut per_expected_sigma: Vec<Vec<f64>> = vec![Vec::new(); PRODUCT_MAX as usize + 1];
        let mut abs_errors = Vec::with_capacity(256);
        let mut worst_sigma: f64 = 0.0;

        for a in 0..=OPERAND_MAX {
            for d in 0..=OPERAND_MAX {
                let outcome = multiplier.multiply_at(a, d, nominal)?;
                let sigma = multiplier.analog_sigma(a, d)?.0;
                per_expected_error[outcome.expected as usize].push(outcome.error_lsb());
                per_expected_sigma[outcome.expected as usize].push(sigma);
                abs_errors.push(outcome.error_lsb().abs());
                worst_sigma = worst_sigma.max(sigma);
            }
        }

        let mut result_profile = ResultProfile::default();
        for expected in 0..=PRODUCT_MAX as usize {
            if per_expected_error[expected].is_empty() {
                continue;
            }
            result_profile.expected_results.push(expected as u16);
            result_profile
                .average_error_lsb
                .push(stats::mean(&per_expected_error[expected]));
            result_profile
                .analog_sigma
                .push(stats::mean(&per_expected_sigma[expected]));
        }

        // ---- Fig. 8 right: error vs supply voltage and temperature ----
        let supply_sweep = ConditionSweep {
            condition_values: config.supply_voltages.clone(),
            average_error_lsb: config
                .supply_voltages
                .iter()
                .map(|&vdd| {
                    average_error_at(
                        multiplier,
                        OperatingPoint {
                            vdd: Volts(vdd),
                            temperature: nominal.temperature,
                        },
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let temperature_sweep = ConditionSweep {
            condition_values: config.temperatures.clone(),
            average_error_lsb: config
                .temperatures
                .iter()
                .map(|&temp| {
                    average_error_at(
                        multiplier,
                        OperatingPoint {
                            vdd: nominal.vdd,
                            temperature: Celsius(temp),
                        },
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
        };

        Ok(PvtAnalysis {
            result_profile,
            supply_sweep,
            temperature_sweep,
            worst_case_sigma: worst_sigma,
            nominal_epsilon_mul: stats::mean(&abs_errors),
        })
    }
}

/// Average absolute error over the full input space at one operating point.
fn average_error_at(multiplier: &InSramMultiplier, at: OperatingPoint) -> Result<f64, ImcError> {
    let mut errors = Vec::with_capacity(256);
    for a in 0..=OPERAND_MAX {
        for d in 0..=OPERAND_MAX {
            errors.push(multiplier.multiply_at(a, d, at)?.error_lsb().abs());
        }
    }
    Ok(stats::mean(&errors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::MultiplierConfig;
    use crate::testsupport::{linear_suite, pvt_sensitive_suite};
    use optima_math::units::Seconds;

    fn analysis(suite_sensitive: bool) -> PvtAnalysis {
        let suite = if suite_sensitive {
            pvt_sensitive_suite()
        } else {
            linear_suite()
        };
        let multiplier = InSramMultiplier::new(
            suite,
            MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0)),
        )
        .unwrap();
        PvtAnalysis::run(&multiplier, &PvtAnalysisConfig::fast()).unwrap()
    }

    #[test]
    fn result_profile_covers_the_product_range() {
        let analysis = analysis(false);
        let profile = &analysis.result_profile;
        assert_eq!(profile.expected_results[0], 0);
        assert_eq!(*profile.expected_results.last().unwrap(), PRODUCT_MAX);
        assert_eq!(
            profile.expected_results.len(),
            profile.average_error_lsb.len()
        );
        assert_eq!(profile.expected_results.len(), profile.analog_sigma.len());
        // Expected results of a 4x4-bit multiplier: not every integer occurs
        // (e.g. 211 is prime and > 15), so the list is shorter than 226.
        assert!(profile.expected_results.len() < PRODUCT_MAX as usize + 1);
    }

    #[test]
    fn analog_sigma_grows_with_expected_result() {
        let analysis = analysis(false);
        let profile = &analysis.result_profile;
        let first_nonzero = profile.analog_sigma.iter().position(|&s| s > 0.0).unwrap();
        assert!(profile.analog_sigma.last().unwrap() > &profile.analog_sigma[first_nonzero]);
    }

    #[test]
    fn off_nominal_supply_increases_error_for_sensitive_models() {
        let analysis = analysis(true);
        let sweep = &analysis.supply_sweep;
        let nominal_index = sweep
            .condition_values
            .iter()
            .position(|&v| (v - 1.0).abs() < 1e-9)
            .unwrap();
        let nominal_error = sweep.average_error_lsb[nominal_index];
        let worst = sweep
            .average_error_lsb
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max);
        assert!(worst >= nominal_error);
        assert!(
            worst > nominal_error + 0.5,
            "supply sweep should visibly degrade the error"
        );
    }

    #[test]
    fn temperature_sweep_is_present_and_mild() {
        let analysis = analysis(true);
        assert_eq!(
            analysis.temperature_sweep.condition_values.len(),
            analysis.temperature_sweep.average_error_lsb.len()
        );
        // Temperature influence exists but stays well below the supply influence.
        let temp_spread = analysis
            .temperature_sweep
            .average_error_lsb
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max)
            - analysis
                .temperature_sweep
                .average_error_lsb
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
        let supply_spread = analysis
            .supply_sweep
            .average_error_lsb
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max)
            - analysis
                .supply_sweep
                .average_error_lsb
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
        assert!(temp_spread <= supply_spread);
    }

    #[test]
    fn nominal_epsilon_and_worst_sigma_are_populated() {
        let analysis = analysis(false);
        assert!(analysis.nominal_epsilon_mul < 1.0);
        assert!(analysis.worst_case_sigma > 0.0);
    }
}
