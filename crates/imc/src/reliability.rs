//! Reliability layer: replica-column redundancy and fault-state injection.
//!
//! [`DefectMap`] (from `optima_circuit::defects`) describes *what is broken*;
//! this module decides *what to do about it* and carries the result into the
//! analog multiply path:
//!
//! * [`ColumnRemap`] — a deterministic assignment of defective data columns
//!   to clean spare columns, the behavioural analogue of the replica-column
//!   redundancy hardware generators bake into SRAM macros.  Planning fails
//!   with a coordinate-carrying [`ImcError::UnrepairableDefect`] when the
//!   spares are exhausted.
//! * [`FaultState`] — one array's complete reliability situation (defect
//!   map, stored-operand row, active remap, accumulated lifetime aging),
//!   attachable to an [`InSramMultiplier`](crate::multiplier::InSramMultiplier)
//!   via `with_faults`.  Every analog pass then sees the faulted cell
//!   behaviour: stuck cells gate the discharge, open bit-lines contribute
//!   nothing, shorted bit-lines discharge to the rail, retention drift
//!   scales each column's ΔV, and the aged V_th shaves the word-line
//!   overdrive.
//!
//! A pristine fault state (e.g. built from [`DefectMap::none`]) is
//! guaranteed bit-identical to running without any fault state attached —
//! property-tested in `tests/properties.rs`.

use crate::error::ImcError;
use optima_circuit::array::ArrayConfig;
use optima_circuit::defects::{BitLineFault, CellDefect, DefectMap, LifetimePoint};
use serde::{Deserialize, Serialize};

/// A deterministic logical-to-physical column assignment.
///
/// Data columns keep their identity unless defective; defective columns are
/// swapped for clean spares in ascending order (lowest defective column gets
/// the lowest clean spare), so the plan is a pure function of the defect map
/// and the geometry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnRemap {
    /// `mapping[logical] = physical` over the word-bearing data columns.
    mapping: Vec<u16>,
}

impl ColumnRemap {
    /// The identity remap (no redundancy applied) for `array`.
    pub fn identity(array: &ArrayConfig) -> Self {
        ColumnRemap {
            mapping: (0..array.operand_bits as u16).collect(),
        }
    }

    /// Plans the redundancy remap for the stored-operand `row` of `map`:
    /// scans the word-bearing data columns in ascending order and assigns
    /// each hard-faulted one the next clean spare.
    ///
    /// Only hard faults count (stuck cells, open/shorted bit-lines);
    /// retention drift is analog and left to noise-aware fine-tuning.
    ///
    /// # Errors
    ///
    /// [`ImcError::UnrepairableDefect`] naming the first column that cannot
    /// be repaired, and [`ImcError::InvalidConfiguration`] when `map` does
    /// not match `array` or `row` is out of range.
    pub fn plan(array: &ArrayConfig, map: &DefectMap, row: u16) -> Result<Self, ImcError> {
        check_geometry(array, map, row)?;
        let mut mapping: Vec<u16> = (0..array.operand_bits as u16).collect();
        let mut next_spare = array.columns;
        let end = array.physical_columns();
        for logical in 0..array.operand_bits as u16 {
            if !map.is_hard_faulted(row, logical) {
                continue;
            }
            let mut assigned = None;
            while next_spare < end {
                let candidate = next_spare;
                next_spare += 1;
                if !map.is_hard_faulted(row, candidate) {
                    assigned = Some(candidate);
                    break;
                }
            }
            match assigned {
                Some(spare) => mapping[logical as usize] = spare,
                None => {
                    return Err(ImcError::UnrepairableDefect {
                        row,
                        column: logical,
                        slice_pass: logical / array.slice_bits as u16,
                        spares: array.spare_columns,
                    })
                }
            }
        }
        Ok(ColumnRemap { mapping })
    }

    /// Physical column backing logical data column `logical`.
    #[inline]
    pub fn physical(&self, logical: u16) -> u16 {
        self.mapping[logical as usize]
    }

    /// Number of columns remapped onto spares.
    pub fn remapped(&self) -> usize {
        self.mapping
            .iter()
            .enumerate()
            .filter(|&(logical, &physical)| physical != logical as u16)
            .count()
    }

    /// `true` when no column was remapped.
    pub fn is_identity(&self) -> bool {
        self.remapped() == 0
    }
}

/// One array's complete reliability situation, attachable to the multiplier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultState {
    array: ArrayConfig,
    map: DefectMap,
    row: u16,
    remap: ColumnRemap,
    /// Accumulated word-line-referred V_th shift (volts).
    vth_shift: f64,
    /// Multiplier on the sampled per-cell retention drift (1.0 = fresh).
    retention_scale: f64,
}

impl FaultState {
    /// A fault state without mitigation: the defect map applies as-is
    /// (identity column mapping), fresh silicon.
    ///
    /// # Errors
    ///
    /// [`ImcError::InvalidConfiguration`] when `map` does not match `array`
    /// or `row` is out of range.
    pub fn unmitigated(array: &ArrayConfig, map: DefectMap, row: u16) -> Result<Self, ImcError> {
        check_geometry(array, &map, row)?;
        Ok(FaultState {
            array: *array,
            remap: ColumnRemap::identity(array),
            map,
            row,
            vth_shift: 0.0,
            retention_scale: 1.0,
        })
    }

    /// A fault state with replica-column redundancy planned for `row`.
    ///
    /// # Errors
    ///
    /// Same as [`ColumnRemap::plan`].
    pub fn with_redundancy(
        array: &ArrayConfig,
        map: DefectMap,
        row: u16,
    ) -> Result<Self, ImcError> {
        let remap = ColumnRemap::plan(array, &map, row)?;
        Ok(FaultState {
            array: *array,
            remap,
            map,
            row,
            vth_shift: 0.0,
            retention_scale: 1.0,
        })
    }

    /// Applies an accumulated lifetime aging state (builder style): the
    /// V_th shift reduces the word-line overdrive and the retention scale
    /// amplifies every cell's sampled drift.  The temperature component of
    /// the lifetime point acts on the operating conditions, not the fault
    /// state — compose it with [`LifetimePoint::apply_to`].
    pub fn with_lifetime(mut self, point: &LifetimePoint) -> Self {
        self.vth_shift = point.vth_shift.0;
        self.retention_scale = point.retention_scale;
        self
    }

    /// The geometry this fault state is keyed to.
    pub fn array(&self) -> &ArrayConfig {
        &self.array
    }

    /// The underlying defect map.
    pub fn map(&self) -> &DefectMap {
        &self.map
    }

    /// The stored-operand row the state applies to.
    pub fn row(&self) -> u16 {
        self.row
    }

    /// The active column remap.
    pub fn remap(&self) -> &ColumnRemap {
        &self.remap
    }

    /// `true` when the state changes nothing: pristine map, identity remap
    /// and no accumulated aging.  A pristine state is bit-identical to no
    /// state at all (property-tested).
    pub fn is_pristine(&self) -> bool {
        self.map.is_pristine() && self.remap.is_identity() && self.vth_shift == 0.0
    }

    /// Accumulated word-line V_th shift in volts.
    #[inline]
    pub(crate) fn vth_shift(&self) -> f64 {
        self.vth_shift
    }

    /// Physical column feeding `(pass, bit)`: pass `p` reads d-slice
    /// `p % slices`, whose bit `bit` lives on logical data column
    /// `(p % slices) · slice_bits + bit`, possibly remapped onto a spare.
    #[inline]
    fn physical_column(&self, pass: usize, bit: u8) -> u16 {
        let slices = self.array.slices() as usize;
        let d_slice = (pass % slices) as u16;
        self.remap
            .physical(d_slice * self.array.slice_bits as u16 + bit as u16)
    }

    /// `true` when the column of `(pass, bit)` discharges given the written
    /// bit `stored`: shorted bit-lines always discharge, open bit-lines
    /// never do, stuck cells override the written value.
    #[inline]
    pub(crate) fn column_discharges(&self, pass: usize, bit: u8, stored: bool) -> bool {
        let column = self.physical_column(pass, bit);
        match self.map.bitline_unchecked(column) {
            BitLineFault::Shorted => true,
            BitLineFault::Open => false,
            BitLineFault::Healthy => match self.map.cell_unchecked(self.row, column) {
                CellDefect::StuckAtZero => false,
                CellDefect::StuckAtOne => true,
                CellDefect::Healthy => stored,
            },
        }
    }

    /// `true` when the bit-line of `(pass, bit)` is shorted to ground (its
    /// discharge is the full rail, independent of the cell model).
    #[inline]
    pub(crate) fn is_shorted(&self, pass: usize, bit: u8) -> bool {
        self.map.bitline_unchecked(self.physical_column(pass, bit)) == BitLineFault::Shorted
    }

    /// Applies the column's retention drift (scaled by the lifetime state)
    /// to a model-evaluated discharge ΔV; clamped at zero so a heavily
    /// drifted cell weakens but never inverts its discharge.
    #[inline]
    pub(crate) fn scaled_delta(&self, pass: usize, bit: u8, raw: f64) -> f64 {
        let column = self.physical_column(pass, bit);
        let drift = self.map.drift_unchecked(self.row, column);
        (raw * (1.0 + drift * self.retention_scale)).max(0.0)
    }

    /// The set of bits of `(pass, d_slice)` whose columns discharge — the
    /// per-pass gating word the energy accounting iterates over.
    #[inline]
    pub(crate) fn gate_bits(&self, pass: usize, d_slice: u16) -> u16 {
        let mut gates = 0u16;
        for bit in 0..self.array.slice_bits {
            let stored = (d_slice >> bit) & 1 == 1;
            if self.column_discharges(pass, bit, stored) {
                gates |= 1 << bit;
            }
        }
        gates
    }
}

/// Shared geometry validation of the reliability constructors.
fn check_geometry(array: &ArrayConfig, map: &DefectMap, row: u16) -> Result<(), ImcError> {
    array
        .validate()
        .map_err(|err| ImcError::InvalidConfiguration {
            context: err.to_string(),
        })?;
    if map.array() != array {
        return Err(ImcError::InvalidConfiguration {
            context: format!(
                "defect map was sampled for {} but the multiplier runs {}",
                map.array().describe(),
                array.describe()
            ),
        });
    }
    if row >= array.rows {
        return Err(ImcError::InvalidConfiguration {
            context: format!(
                "stored-operand row {row} out of range for {} rows",
                array.rows
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use optima_circuit::defects::DefectModel;

    fn spare_array() -> ArrayConfig {
        ArrayConfig::paper().with_spares(2)
    }

    /// Samples maps at increasing seeds until `predicate` holds for row 0.
    fn sample_until(
        array: &ArrayConfig,
        rate: f64,
        predicate: impl Fn(&DefectMap) -> bool,
    ) -> DefectMap {
        for seed in 0..10_000u64 {
            let map = DefectMap::sample(array, &DefectModel::uniform(rate, seed)).unwrap();
            if predicate(&map) {
                return map;
            }
        }
        panic!("no defect map with the requested shape within 10k seeds");
    }

    #[test]
    fn identity_remap_for_pristine_maps() {
        let array = spare_array();
        let map = DefectMap::none(&array);
        let remap = ColumnRemap::plan(&array, &map, 0).unwrap();
        assert!(remap.is_identity());
        assert_eq!(remap.remapped(), 0);
        for logical in 0..4 {
            assert_eq!(remap.physical(logical), logical);
        }
    }

    #[test]
    fn defective_columns_swap_onto_clean_spares_deterministically() {
        let array = spare_array();
        let map = sample_until(&array, 0.25, |map| {
            let faulted: Vec<u16> = (0..4).filter(|&c| map.is_hard_faulted(0, c)).collect();
            let clean_spares = (4..6).filter(|&c| !map.is_hard_faulted(0, c)).count();
            faulted.len() == 1 && clean_spares == 2
        });
        let remap = ColumnRemap::plan(&array, &map, 0).unwrap();
        assert_eq!(remap.remapped(), 1);
        let faulted = (0..4).find(|&c| map.is_hard_faulted(0, c)).unwrap();
        // The lowest clean spare is column 4 (both spares are clean here).
        assert_eq!(remap.physical(faulted), 4);
        // Planning twice gives the identical plan.
        assert_eq!(remap, ColumnRemap::plan(&array, &map, 0).unwrap());
    }

    #[test]
    fn exhausted_spares_fail_with_the_failing_coordinate() {
        // No spares at all: any hard fault in the word is unrepairable.
        let array = ArrayConfig::paper();
        let map = sample_until(&array, 0.4, |map| (0..4).any(|c| map.is_hard_faulted(0, c)));
        let err = ColumnRemap::plan(&array, &map, 0).unwrap_err();
        match &err {
            ImcError::UnrepairableDefect {
                row,
                column,
                slice_pass,
                spares,
            } => {
                assert_eq!(*row, 0);
                assert!(*column < 4);
                assert_eq!(*slice_pass, column / 4);
                assert_eq!(*spares, 0);
            }
            other => panic!("expected UnrepairableDefect, got {other:?}"),
        }
        assert!(err.to_string().contains("spare columns are exhausted"));
    }

    #[test]
    fn fault_state_constructors_validate_geometry() {
        let array = spare_array();
        let map = DefectMap::none(&array);
        // Wrong geometry: map sampled for spares, state built without.
        let err = FaultState::unmitigated(&ArrayConfig::paper(), map.clone(), 0).unwrap_err();
        assert!(matches!(err, ImcError::InvalidConfiguration { .. }));
        // Row out of range.
        assert!(FaultState::unmitigated(&array, map.clone(), 16).is_err());
        let state = FaultState::with_redundancy(&array, map, 3).unwrap();
        assert!(state.is_pristine());
        assert_eq!(state.row(), 3);
    }

    #[test]
    fn lifetime_state_breaks_pristineness_via_vth_only() {
        use optima_circuit::defects::LifetimeTrajectory;
        let array = spare_array();
        let state = FaultState::unmitigated(&array, DefectMap::none(&array), 0).unwrap();
        assert!(state.is_pristine());
        let fresh = state
            .clone()
            .with_lifetime(&LifetimeTrajectory::nbti_like().at(0));
        assert!(fresh.is_pristine(), "step 0 must change nothing");
        let aged = state.with_lifetime(&LifetimeTrajectory::nbti_like().at(3));
        assert!(!aged.is_pristine());
        assert!(aged.vth_shift() > 0.0);
    }

    #[test]
    fn gating_follows_the_defect_kinds() {
        let array = spare_array();
        // Find a map with a stuck-at-one cell in the word of row 0 on a
        // healthy bit-line.
        let map = sample_until(&array, 0.3, |map| {
            (0..4).any(|c| {
                map.cell_unchecked(0, c) == CellDefect::StuckAtOne
                    && map.bitline_unchecked(c) == BitLineFault::Healthy
            })
        });
        let column = (0..4)
            .find(|&c| {
                map.cell_unchecked(0, c) == CellDefect::StuckAtOne
                    && map.bitline_unchecked(c) == BitLineFault::Healthy
            })
            .unwrap();
        let state = FaultState::unmitigated(&array, map, 0).unwrap();
        // Stuck-at-one discharges even when the written bit is 0.
        assert!(state.column_discharges(0, column as u8, false));
        assert!(state.column_discharges(0, column as u8, true));
    }

    #[test]
    fn pristine_gate_bits_equal_the_stored_slice() {
        let array = spare_array();
        let state = FaultState::unmitigated(&array, DefectMap::none(&array), 0).unwrap();
        for d_slice in 0..=15u16 {
            assert_eq!(state.gate_bits(0, d_slice), d_slice);
        }
        // And the scaled delta is the identity transform.
        let raw = 0.123456789;
        assert_eq!(state.scaled_delta(0, 2, raw).to_bits(), raw.to_bits());
    }
}
