//! The behavioural discharge-based in-SRAM multiplier.
//!
//! The circuit (paper Section V, based on ref. [8]) multiplies an operand
//! `a` applied through a word-line DAC with an operand `d` stored in an SRAM
//! row.  Each stored bit `d_i` gates the discharge of its own bit-line-bar;
//! bit weighting is achieved by letting column `i` discharge for `2^i · τ0`.
//! The discharges are then combined by charge sharing and digitised by an
//! ADC.
//!
//! The paper's macro is the fixed 16×4 INT4 array; here the geometry is data
//! ([`ArrayConfig`]): one analog pass handles a `slice_bits`-wide slice of
//! each operand, and wider operands (e.g. INT8 on a 4-bit array) are composed
//! from `slices² ` passes with digital shift-add accumulation.  The default
//! geometry reproduces the paper's array bit-for-bit.

use crate::error::ImcError;
use crate::reliability::FaultState;
use optima_circuit::adc::Adc;
use optima_circuit::array::ArrayConfig;
use optima_circuit::dac::{Dac, DacTransfer};
use optima_core::model::suite::ModelSuite;
use optima_math::units::{Celsius, FemtoJoules, Seconds, Volts};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Operand bits of the paper's default array geometry.
///
/// Kept for the fixed-width call sites of the paper experiments; geometry-
/// aware code should use [`ArrayConfig::operand_bits`] instead.
pub const OPERAND_BITS: u8 = 4;

/// Largest operand value of the paper's default geometry (`2^4 − 1`).
pub const OPERAND_MAX: u16 = (1 << OPERAND_BITS) - 1;

/// Largest exact product of the paper's default geometry (`15 × 15`).
pub const PRODUCT_MAX: u16 = OPERAND_MAX * OPERAND_MAX;

/// Static configuration of one multiplier design point.
///
/// The first three fields are exactly the design-space parameters explored in
/// the paper's Fig. 7 / Table I; the array geometry generalises the paper's
/// fixed 16×4 INT4 macro.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiplierConfig {
    /// Discharge time of the least-significant bit-line (`τ0`).
    pub tau0: Seconds,
    /// DAC output voltage for input code 0 (`V_DAC,0`).
    pub vdac_zero: Volts,
    /// DAC full-scale output voltage (`V_DAC,FS`).
    pub vdac_full_scale: Volts,
    /// DAC transfer curve (linear in the paper; square-root pre-distortion
    /// available for the ablation study).
    pub dac_transfer: DacTransfer,
    /// Array geometry (defaults to the paper's 16×4 INT4 macro).
    pub array: ArrayConfig,
}

impl MultiplierConfig {
    /// Creates a configuration from the three design-space parameters with a
    /// linear DAC and the paper's default array geometry.
    pub fn new(tau0: Seconds, vdac_zero: Volts, vdac_full_scale: Volts) -> Self {
        MultiplierConfig {
            tau0,
            vdac_zero,
            vdac_full_scale,
            dac_transfer: DacTransfer::Linear,
            array: ArrayConfig::default(),
        }
    }

    /// The paper's *fom* corner (Table I): τ0 = 0.16 ns, V_DAC,0 = 0.3 V,
    /// V_DAC,FS = 1.0 V.
    pub fn paper_fom_corner() -> Self {
        MultiplierConfig::new(Seconds(0.16e-9), Volts(0.3), Volts(1.0))
    }

    /// The paper's *power* corner (Table I): τ0 = 0.16 ns, V_DAC,0 = 0.3 V,
    /// V_DAC,FS = 0.7 V.
    pub fn paper_power_corner() -> Self {
        MultiplierConfig::new(Seconds(0.16e-9), Volts(0.3), Volts(0.7))
    }

    /// The paper's *variation* corner (Table I): τ0 = 0.24 ns, V_DAC,0 = 0.4 V,
    /// V_DAC,FS = 1.0 V.
    pub fn paper_variation_corner() -> Self {
        MultiplierConfig::new(Seconds(0.24e-9), Volts(0.4), Volts(1.0))
    }

    /// Switches the DAC transfer curve (builder style).
    pub fn with_dac_transfer(mut self, transfer: DacTransfer) -> Self {
        self.dac_transfer = transfer;
        self
    }

    /// Switches the array geometry (builder style).
    pub fn with_array(mut self, array: ArrayConfig) -> Self {
        self.array = array;
        self
    }

    /// Longest single-column discharge time of one analog pass
    /// (`2^(slice_bits − 1) · τ0`, the MSB column).
    pub fn longest_discharge(&self) -> Seconds {
        Seconds(self.tau0.0 * (1u32 << (self.array.slice_bits - 1)) as f64)
    }
}

/// Result of one in-SRAM multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiplyOutcome {
    /// Digitised product (in product LSBs, ideally `a · d`).
    pub result: u16,
    /// Exact product `a · d`.
    pub expected: u16,
    /// Combined analog discharge presented to the ADC (for composed
    /// geometries: the mean over the analog passes).
    pub combined_discharge: Volts,
    /// Energy of the multiplication (discharges + converter overhead over
    /// every analog pass), excluding the operand write.
    pub multiply_energy: FemtoJoules,
    /// Energy of writing the stored operand (one cell write per operand bit).
    pub write_energy: FemtoJoules,
}

impl MultiplyOutcome {
    /// Signed error in product LSBs (`result − expected`).
    pub fn error_lsb(&self) -> f64 {
        self.result as f64 - self.expected as f64
    }

    /// Total energy of write + multiplication.
    pub fn total_energy(&self) -> FemtoJoules {
        FemtoJoules(self.multiply_energy.0 + self.write_energy.0)
    }
}

/// Operating conditions of a multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage.
    pub vdd: Volts,
    /// Junction temperature.
    pub temperature: Celsius,
}

/// The behavioural in-SRAM multiplier.
#[derive(Debug, Clone)]
pub struct InSramMultiplier {
    models: ModelSuite,
    config: MultiplierConfig,
    dac: Dac,
    adc: Adc,
    /// Volts of combined discharge per slice-product LSB, determined by a
    /// one-time least-squares calibration over the slice input space.
    volts_per_lsb: f64,
    /// Fixed converter overhead charged per analog pass, amortised over the
    /// column-mux group.
    converter_overhead: FemtoJoules,
    nominal: OperatingPoint,
    /// Optional reliability fault state (defects, redundancy remap, aging).
    /// `None` is the pristine fast path and executes exactly the historic
    /// float operations; a pristine `Some` state is bit-identical to it
    /// (property-tested).
    faults: Option<FaultState>,
}

impl InSramMultiplier {
    /// Builds a multiplier for the given fitted models and design point.
    ///
    /// Construction performs a one-time transfer-curve calibration (the
    /// mapping from combined discharge to product LSBs) at nominal
    /// conditions, mirroring how the readout reference of the real circuit
    /// would be trimmed.
    ///
    /// # Errors
    ///
    /// * [`ImcError::InvalidConfiguration`] if the DAC voltages are
    ///   inconsistent, `τ0` is non-positive or the array geometry is invalid.
    /// * Propagates model-evaluation errors if the configuration drives the
    ///   models outside their calibrated domain.
    pub fn new(models: ModelSuite, config: MultiplierConfig) -> Result<Self, ImcError> {
        if config.tau0.0 <= 0.0 || !config.tau0.0.is_finite() {
            return Err(ImcError::InvalidConfiguration {
                context: format!("tau0 must be positive, got {}", config.tau0.0),
            });
        }
        config
            .array
            .validate()
            .map_err(|err| ImcError::InvalidConfiguration {
                context: err.to_string(),
            })?;
        let dac = Dac::new(
            config.array.dac_bits(),
            config.vdac_zero,
            config.vdac_full_scale,
        )
        .map_err(|err| ImcError::InvalidConfiguration {
            context: err.to_string(),
        })?
        .with_transfer(config.dac_transfer);
        // The ADC digitises the combined discharge of one pass; its range is
        // set after the transfer calibration so that one code equals one
        // slice-product LSB.
        let adc = Adc::new(config.array.adc_bits(), Volts(1.0)).map_err(|err| {
            ImcError::InvalidConfiguration {
                context: err.to_string(),
            }
        })?;
        let nominal = OperatingPoint {
            vdd: models.vdd_nominal(),
            temperature: models.temperature_nominal(),
        };

        let mut multiplier = InSramMultiplier {
            models,
            config,
            dac,
            adc,
            volts_per_lsb: 1.0,
            converter_overhead: FemtoJoules(2.0 / config.array.column_mux as f64),
            nominal,
            faults: None,
        };
        multiplier.calibrate_transfer()?;
        Ok(multiplier)
    }

    /// The design-point configuration.
    pub fn config(&self) -> &MultiplierConfig {
        &self.config
    }

    /// The array geometry the multiplier was generated for.
    pub fn array(&self) -> &ArrayConfig {
        &self.config.array
    }

    /// The fitted models driving the multiplier.
    pub fn models(&self) -> &ModelSuite {
        &self.models
    }

    /// Volts of combined discharge corresponding to one product LSB.
    pub fn volts_per_lsb(&self) -> Volts {
        Volts(self.volts_per_lsb)
    }

    /// Nominal operating point used for calibration.
    pub fn nominal_operating_point(&self) -> OperatingPoint {
        self.nominal
    }

    /// Attaches a reliability fault state (builder style): every subsequent
    /// multiplication sees the faulted cell behaviour — stuck cells gate the
    /// discharge, open bit-lines contribute nothing, shorted bit-lines
    /// discharge the full rail, retention drift scales each column's ΔV and
    /// the accumulated V_th aging shaves the word-line overdrive.
    ///
    /// The transfer trim ([`InSramMultiplier::volts_per_lsb`]) is *not*
    /// re-calibrated: the readout reference of the real circuit is trimmed
    /// once at test time on (presumed-good) reference columns, so deployed
    /// defects and aging show up as output error, exactly as in the field.
    ///
    /// # Errors
    ///
    /// [`ImcError::InvalidConfiguration`] when the fault state was built for
    /// a different array geometry.
    pub fn with_faults(mut self, faults: FaultState) -> Result<Self, ImcError> {
        if faults.array() != &self.config.array {
            return Err(ImcError::InvalidConfiguration {
                context: format!(
                    "fault state keyed to {} cannot attach to a {} multiplier",
                    faults.array().describe(),
                    self.config.array.describe()
                ),
            });
        }
        self.faults = Some(faults);
        Ok(self)
    }

    /// The attached reliability fault state, if any.
    pub fn faults(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Applies the accumulated V_th aging to a word-line voltage.  Without a
    /// fault state this is the identity (no float operations at all), so the
    /// pristine path stays bit-identical.
    #[inline]
    fn aged_word_line(&self, word_line: Volts) -> Volts {
        match &self.faults {
            None => word_line,
            Some(faults) => Volts((word_line.0 - faults.vth_shift()).max(0.0)),
        }
    }

    /// Least-squares calibration of the discharge-to-LSB transfer factor over
    /// the full slice input space at nominal conditions (batched: the analog
    /// grid is evaluated once, then combined per operand pair).
    ///
    /// Composed geometries calibrate the single analog pass; the digital
    /// shift-add composition is exact and needs no trimming of its own.
    fn calibrate_transfer(&mut self) -> Result<(), ImcError> {
        let grid = self.analog_grid(self.nominal)?;
        let slice_max = self.config.array.slice_max();
        let mut numerator = 0.0;
        let mut denominator = 0.0;
        for a in 0..=slice_max {
            for d in 0..=slice_max {
                let discharge = grid.combined_discharge(a, d);
                let expected = (a * d) as f64;
                numerator += discharge * expected;
                denominator += expected * expected;
            }
        }
        if denominator <= 0.0 || numerator <= 0.0 {
            return Err(ImcError::InvalidConfiguration {
                context: "transfer calibration produced no usable discharge".to_string(),
            });
        }
        self.volts_per_lsb = numerator / denominator;
        Ok(())
    }

    /// Discharge duration of column `bit` (`2^bit · τ0`).
    fn column_duration(&self, bit: u8) -> Seconds {
        Seconds(self.config.tau0.0 * (1u32 << bit) as f64)
    }

    /// Precomputes every per-(slice operand, column) analog quantity at `at`
    /// through the batched model fills.
    ///
    /// This is the batched analog hot path: one word-line voltage per slice
    /// operand and `slice_bits` discharges/energies each are evaluated once,
    /// and the operand pairs of the full input space are then combined from
    /// them — bit-identical to evaluating each pair through the scalar
    /// [`InSramMultiplier::multiply_at`] path, because a pair's discharge is
    /// the same sum of the same per-column values in the same (bit-ascending)
    /// order, pass by pass.
    ///
    /// # Errors
    ///
    /// Propagates converter and model-evaluation errors, in the same
    /// operand-major order as the scalar input-space loop.
    pub fn analog_grid(&self, at: OperatingPoint) -> Result<AnalogOperandGrid, ImcError> {
        let array = &self.config.array;
        let operands = array.slice_max() as usize + 1;
        let bits = array.slice_bits as usize;
        let durations: Vec<Seconds> = (0..array.slice_bits)
            .map(|b| self.column_duration(b))
            .collect();
        let mut word_lines = Vec::with_capacity(operands);
        let mut deltas = vec![0.0; operands * bits];
        let mut energies = vec![0.0; operands * bits];
        for a in 0..operands {
            let word_line = self.aged_word_line(self.dac.output_with_supply(
                a as u16,
                at.vdd,
                self.models.vdd_nominal(),
            )?);
            word_lines.push(word_line);
            let delta_row = &mut deltas[a * bits..(a + 1) * bits];
            self.models.fill_discharges(
                &durations,
                word_line,
                true,
                at.vdd,
                at.temperature,
                delta_row,
            )?;
            for (energy, &delta) in energies[a * bits..(a + 1) * bits]
                .iter_mut()
                .zip(&*delta_row)
            {
                *energy = self
                    .models
                    .discharge_energy(Volts(delta), at.vdd, at.temperature)
                    .0;
            }
        }
        Ok(AnalogOperandGrid {
            slice_bits: array.slice_bits,
            word_lines,
            deltas,
            energies,
            write_energy: FemtoJoules(
                self.models.write_energy(at.vdd, at.temperature).0 * array.operand_bits as f64,
            ),
        })
    }

    /// Evaluates the full input space at `at` through the batched analog
    /// grid, returning the outcomes in operand-major order (`a` outer, `d`
    /// inner) — bit-identical to calling [`InSramMultiplier::multiply_at`]
    /// for every pair.
    ///
    /// # Errors
    ///
    /// Same as [`InSramMultiplier::analog_grid`].
    pub fn outcome_grid(&self, at: OperatingPoint) -> Result<Vec<MultiplyOutcome>, ImcError> {
        let grid = self.analog_grid(at)?;
        let max = self.config.array.operand_max();
        let mut outcomes = Vec::with_capacity(self.config.array.input_space());
        for a in 0..=max {
            for d in 0..=max {
                outcomes.push(self.compose_outcome(
                    a,
                    d,
                    |pass, a_slice, d_slice| self.grid_discharge(&grid, pass, a_slice, d_slice, at),
                    |pass, a_slice, bit| self.grid_energy(&grid, pass, a_slice, bit, at),
                    grid.write_energy,
                ));
            }
        }
        Ok(outcomes)
    }

    /// Combined discharge of one pass from the precomputed grid, applying
    /// the fault state when one is attached.  The `None` arm is the historic
    /// pristine path; the faulted arm mirrors the scalar
    /// [`InSramMultiplier::slice_discharge`] transform per `(pass, bit)`, so
    /// the batched and scalar faulted paths stay bit-identical.
    fn grid_discharge(
        &self,
        grid: &AnalogOperandGrid,
        pass: usize,
        a_slice: u16,
        d_slice: u16,
        at: OperatingPoint,
    ) -> f64 {
        match &self.faults {
            None => grid.combined_discharge(a_slice, d_slice),
            Some(faults) => {
                let mut total = 0.0;
                for bit in 0..grid.slice_bits {
                    let stored = (d_slice >> bit) & 1 == 1;
                    if !faults.column_discharges(pass, bit, stored) {
                        continue;
                    }
                    if faults.is_shorted(pass, bit) {
                        total += at.vdd.0;
                        continue;
                    }
                    total += faults.scaled_delta(pass, bit, grid.delta(a_slice, bit));
                }
                total / grid.slice_bits as f64
            }
        }
    }

    /// Per-column discharge energy from the precomputed grid, applying the
    /// fault state when one is attached (shorted bit-lines burn the energy
    /// of a full-rail discharge; drifted cells the energy of their scaled
    /// ΔV).
    fn grid_energy(
        &self,
        grid: &AnalogOperandGrid,
        pass: usize,
        a_slice: u16,
        bit: u8,
        at: OperatingPoint,
    ) -> f64 {
        match &self.faults {
            None => grid.energy(a_slice, bit),
            Some(faults) => {
                let delta = if faults.is_shorted(pass, bit) {
                    at.vdd.0
                } else {
                    faults.scaled_delta(pass, bit, grid.delta(a_slice, bit))
                };
                self.models
                    .discharge_energy(Volts(delta), at.vdd, at.temperature)
                    .0
            }
        }
    }

    /// Analog mismatch σ of every operand pair, in operand-major order —
    /// bit-identical to calling [`InSramMultiplier::analog_sigma`] for every
    /// pair, from `slice_bits` σ-model evaluations per slice operand instead
    /// of one per set bit of every pair.
    ///
    /// # Errors
    ///
    /// Propagates converter errors.
    pub fn analog_sigma_grid(&self) -> Result<Vec<Volts>, ImcError> {
        let array = &self.config.array;
        let slice_operands = array.slice_max() as usize + 1;
        let bits = array.slice_bits as usize;
        let mut sigmas = vec![0.0; slice_operands * bits];
        for a in 0..slice_operands {
            let word_line = self.dac.output(a as u16)?;
            for bit in 0..array.slice_bits {
                sigmas[a * bits + bit as usize] = self
                    .models
                    .mismatch_sigma(self.column_duration(bit), word_line)
                    .0;
            }
        }
        let max = array.operand_max();
        let mut grid = Vec::with_capacity(array.input_space());
        for a in 0..=max {
            for d in 0..=max {
                let sigma = self.fold_passes(a, d, 0.0f64, |worst, _, a_slice, d_slice| {
                    let mut variance = 0.0;
                    for bit in 0..bits {
                        if (d_slice >> bit) & 1 == 1 {
                            let sigma = sigmas[a_slice as usize * bits + bit];
                            variance += sigma * sigma;
                        }
                    }
                    worst.max(variance.sqrt() / bits as f64)
                });
                grid.push(Volts(sigma));
            }
        }
        Ok(grid)
    }

    /// Charge-shared combined discharge of one analog pass (`pass` in the
    /// composed pass order) for the slice operands `a_slice` (DAC input) and
    /// `d_slice` (stored slice), optionally with mismatch sampling.
    ///
    /// An attached fault state changes which columns discharge (stuck cells,
    /// open/shorted bit-lines via the redundancy remap of `pass`) and scales
    /// each surviving column's ΔV by its retention drift; shorted bit-lines
    /// contribute the full rail without a model evaluation (and consume no
    /// mismatch sample — a shorted column has no transistor to mismatch).
    fn slice_discharge<R: Rng + ?Sized>(
        &self,
        pass: usize,
        a_slice: u16,
        d_slice: u16,
        at: OperatingPoint,
        mut rng: Option<&mut R>,
    ) -> Result<f64, ImcError> {
        let word_line = self.aged_word_line(self.dac.output_with_supply(
            a_slice,
            at.vdd,
            self.models.vdd_nominal(),
        )?);
        let mut total = 0.0;
        for bit in 0..self.config.array.slice_bits {
            let stored = (d_slice >> bit) & 1 == 1;
            let discharges = match &self.faults {
                None => stored,
                Some(faults) => faults.column_discharges(pass, bit, stored),
            };
            if !discharges {
                continue;
            }
            if let Some(faults) = &self.faults {
                if faults.is_shorted(pass, bit) {
                    total += at.vdd.0;
                    continue;
                }
            }
            let duration = self.column_duration(bit);
            let delta = match rng.as_mut() {
                Some(rng) => self.models.discharge_with_mismatch(
                    &mut **rng,
                    duration,
                    word_line,
                    true,
                    at.vdd,
                    at.temperature,
                )?,
                None => self
                    .models
                    .discharge(duration, word_line, true, at.vdd, at.temperature)?,
            };
            total += match &self.faults {
                None => delta.0,
                Some(faults) => faults.scaled_delta(pass, bit, delta.0),
            };
        }
        // Charge sharing across the slice's sampling capacitors averages the
        // individual discharges.
        Ok(total / self.config.array.slice_bits as f64)
    }

    /// Analog standard deviation of the combined discharge for `(a, d)` due
    /// to transistor mismatch (root-sum-square of the per-column σ within one
    /// pass; for composed geometries the worst pass, since every pass is
    /// digitised on its own).
    ///
    /// # Errors
    ///
    /// Propagates converter errors for out-of-range operands.
    pub fn analog_sigma(&self, a: u16, d: u16) -> Result<Volts, ImcError> {
        self.check_operands(a, d)?;
        let array = &self.config.array;
        let slices = array.slices() as u16;
        let shift = array.slice_bits as u16;
        let mask = array.slice_max();
        let mut worst = 0.0f64;
        for i in 0..slices {
            let a_slice = (a >> (i * shift)) & mask;
            let word_line = self.dac.output(a_slice)?;
            for j in 0..slices {
                let d_slice = (d >> (j * shift)) & mask;
                let mut variance = 0.0;
                for bit in 0..array.slice_bits {
                    if (d_slice >> bit) & 1 == 0 {
                        continue;
                    }
                    let sigma = self
                        .models
                        .mismatch_sigma(self.column_duration(bit), word_line)
                        .0;
                    variance += sigma * sigma;
                }
                worst = worst.max(variance.sqrt() / array.slice_bits as f64);
            }
        }
        Ok(Volts(worst))
    }

    fn check_operands(&self, a: u16, d: u16) -> Result<(), ImcError> {
        let max = self.config.array.operand_max();
        if a > max {
            return Err(ImcError::OperandOutOfRange { value: a, max });
        }
        if d > max {
            return Err(ImcError::OperandOutOfRange { value: d, max });
        }
        Ok(())
    }

    /// Performs one multiplication at nominal conditions.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::OperandOutOfRange`] for operands above
    /// [`ArrayConfig::operand_max`] and propagates model errors.
    pub fn multiply(&self, a: u16, d: u16) -> Result<MultiplyOutcome, ImcError> {
        self.multiply_at(a, d, self.nominal)
    }

    /// Performs one multiplication at an explicit operating point.
    ///
    /// # Errors
    ///
    /// Same as [`InSramMultiplier::multiply`].
    pub fn multiply_at(
        &self,
        a: u16,
        d: u16,
        at: OperatingPoint,
    ) -> Result<MultiplyOutcome, ImcError> {
        self.check_operands(a, d)?;
        self.multiply_inner::<rand_chacha::ChaCha8Rng>(a, d, at, None)
    }

    /// Performs one multiplication with per-column mismatch sampling (one
    /// Monte Carlo instance; composed geometries sample every pass
    /// independently, in pass order).
    ///
    /// # Errors
    ///
    /// Same as [`InSramMultiplier::multiply`].
    pub fn multiply_with_mismatch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: u16,
        d: u16,
        at: OperatingPoint,
    ) -> Result<MultiplyOutcome, ImcError> {
        self.check_operands(a, d)?;
        self.multiply_inner(a, d, at, Some(rng))
    }

    /// Shared scalar multiply path: evaluates every analog pass through the
    /// live models (optionally with mismatch sampling, consuming the RNG in
    /// pass order), then composes the digital result.
    fn multiply_inner<R: Rng + ?Sized>(
        &self,
        a: u16,
        d: u16,
        at: OperatingPoint,
        mut rng: Option<&mut R>,
    ) -> Result<MultiplyOutcome, ImcError> {
        let array = &self.config.array;
        let slices = array.slices() as u16;
        let shift = array.slice_bits as u16;
        let mask = array.slice_max();
        let mut discharges = Vec::with_capacity(array.passes() as usize);
        for i in 0..slices {
            let a_slice = (a >> (i * shift)) & mask;
            for j in 0..slices {
                let d_slice = (d >> (j * shift)) & mask;
                let pass = discharges.len();
                discharges.push(self.slice_discharge(
                    pass,
                    a_slice,
                    d_slice,
                    at,
                    rng.as_deref_mut(),
                )?);
            }
        }
        let write_energy = FemtoJoules(
            self.models.write_energy(at.vdd, at.temperature).0 * array.operand_bits as f64,
        );
        // Energy readout mirrors the real circuit: it cannot fail once the
        // pass discharges above succeeded, so fall back to zero-energy terms
        // instead of propagating.
        let column_energy = |pass: usize, a_slice: u16, bit: u8| {
            if let Some(faults) = &self.faults {
                if faults.is_shorted(pass, bit) {
                    return self
                        .models
                        .discharge_energy(Volts(at.vdd.0), at.vdd, at.temperature)
                        .0;
                }
            }
            let word_line = self.aged_word_line(
                self.dac
                    .output_with_supply(a_slice, at.vdd, self.models.vdd_nominal())
                    .unwrap_or(Volts(self.config.vdac_zero.0)),
            );
            let delta = self
                .models
                .discharge(
                    self.column_duration(bit),
                    word_line,
                    true,
                    at.vdd,
                    at.temperature,
                )
                .map(|v| v.0)
                .unwrap_or(0.0);
            let delta = match &self.faults {
                None => delta,
                Some(faults) => faults.scaled_delta(pass, bit, delta),
            };
            self.models
                .discharge_energy(Volts(delta), at.vdd, at.temperature)
                .0
        };
        Ok(self.compose_outcome(
            a,
            d,
            |pass, _, _| discharges[pass],
            column_energy,
            write_energy,
        ))
    }

    /// Folds `combine` over the analog passes of the pair `(a, d)` in pass
    /// order (`a`-slice outer, `d`-slice inner, both low-to-high), passing
    /// `(accumulator, pass_index, a_slice, d_slice)`.
    fn fold_passes<T>(
        &self,
        a: u16,
        d: u16,
        init: T,
        mut combine: impl FnMut(T, usize, u16, u16) -> T,
    ) -> T {
        let array = &self.config.array;
        let slices = array.slices() as u16;
        let shift = array.slice_bits as u16;
        let mask = array.slice_max();
        let mut acc = init;
        let mut pass = 0usize;
        for i in 0..slices {
            let a_slice = (a >> (i * shift)) & mask;
            for j in 0..slices {
                let d_slice = (d >> (j * shift)) & mask;
                acc = combine(acc, pass, a_slice, d_slice);
                pass += 1;
            }
        }
        acc
    }

    /// Shared readout back half of the scalar and batched multiply paths:
    /// per-pass ADC quantisation of the combined discharge, digital
    /// shift-add composition across the passes, and the per-set-bit energy
    /// combination.  Only how the per-pass discharge and per-column energy
    /// are obtained differs between the callers (live model evaluation vs.
    /// precomputed grid), so any change to the readout model lands in both
    /// paths.
    fn compose_outcome(
        &self,
        a: u16,
        d: u16,
        mut slice_discharge: impl FnMut(usize, u16, u16) -> f64,
        column_energy: impl Fn(usize, u16, u8) -> f64,
        write_energy: FemtoJoules,
    ) -> MultiplyOutcome {
        let array = &self.config.array;
        let slice_bits = array.slice_bits;
        let passes = array.passes() as f64;
        let max_code = self.adc.max_code() as f64;
        struct Acc {
            result: u32,
            discharge_sum: f64,
            multiply_energy: f64,
        }
        let acc = self.fold_passes(
            a,
            d,
            Acc {
                result: 0,
                discharge_sum: 0.0,
                multiply_energy: 0.0,
            },
            |mut acc, pass, a_slice, d_slice| {
                let discharge = slice_discharge(pass, a_slice, d_slice);
                acc.discharge_sum += discharge;
                // Round-to-nearest quantisation in slice-product LSB units,
                // clamped to the ADC code range of one pass.
                let raw = (discharge / self.volts_per_lsb).round();
                let code = raw.clamp(0.0, max_code) as u32;
                // Which pass this slice pair is determines its digital weight.
                let weight = {
                    let slices = array.slices() as usize;
                    ((pass / slices + pass % slices) * slice_bits as usize) as u32
                };
                acc.result += code << weight;
                acc.multiply_energy += self.converter_overhead.0;
                // Energy follows the columns that actually discharge: a
                // fault state can gate a stored 1 off (stuck-at-0, open
                // bit-line) or a stored 0 on (stuck-at-1, short).
                let gates = match &self.faults {
                    None => d_slice,
                    Some(faults) => faults.gate_bits(pass, d_slice),
                };
                for bit in 0..slice_bits {
                    if (gates >> bit) & 1 == 1 {
                        acc.multiply_energy += column_energy(pass, a_slice, bit);
                    }
                }
                acc
            },
        );
        MultiplyOutcome {
            // Non-ideal slice results can overshoot the exact product range;
            // the digital accumulator saturates at the u16 result width.
            result: acc.result.min(u16::MAX as u32) as u16,
            expected: a * d,
            combined_discharge: Volts(acc.discharge_sum / passes),
            multiply_energy: FemtoJoules(acc.multiply_energy),
            write_energy,
        }
    }
}

/// Per-(slice operand, column) analog quantities of one multiplier at one
/// operating point, precomputed through the batched model fills.
///
/// Built by [`InSramMultiplier::analog_grid`]; the operand pairs of the full
/// input space combine these `(slice_max + 1) × slice_bits` values instead of
/// re-evaluating the fitted polynomials per pair.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogOperandGrid {
    /// Slice width the grid was generated for (row stride of the flats).
    slice_bits: u8,
    /// Word-line voltage per slice operand `a`.
    word_lines: Vec<Volts>,
    /// Discharge `ΔV` per `(a, bit)`, row-major with `slice_bits` per row.
    deltas: Vec<f64>,
    /// Discharge energy per `(a, bit)` (femtojoules).
    energies: Vec<f64>,
    /// Energy of writing one full-width stored operand.
    write_energy: FemtoJoules,
}

impl AnalogOperandGrid {
    /// Discharge `ΔV` of column `bit` for slice operand `a`.
    fn delta(&self, a: u16, bit: u8) -> f64 {
        self.deltas[a as usize * self.slice_bits as usize + bit as usize]
    }

    /// Discharge energy of column `bit` for slice operand `a` (femtojoules).
    fn energy(&self, a: u16, bit: u8) -> f64 {
        self.energies[a as usize * self.slice_bits as usize + bit as usize]
    }

    /// Charge-shared combined discharge of one pass for the slice pair
    /// `(a, d)`: the same per-column values summed in the same bit-ascending
    /// order as the scalar multiply path, so the result is bit-identical to
    /// it.
    pub fn combined_discharge(&self, a: u16, d: u16) -> f64 {
        let mut total = 0.0;
        for bit in 0..self.slice_bits {
            if (d >> bit) & 1 == 1 {
                total += self.delta(a, bit);
            }
        }
        total / self.slice_bits as f64
    }

    /// Word-line voltage the DAC produced for slice operand `a`.
    pub fn word_line(&self, a: u16) -> Volts {
        self.word_lines[a as usize]
    }
}

/// A pre-computed result table of a multiplier configuration over its full
/// input space.
///
/// The DNN experiments perform millions of multiplications; looking the
/// results up in a table is the standard way to make that tractable and is
/// behaviourally identical because the multiplier is deterministic at a fixed
/// operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiplierTable {
    operand_bits: u8,
    results: Vec<u16>,
    average_multiply_energy: FemtoJoules,
    average_total_energy: FemtoJoules,
}

impl MultiplierTable {
    /// Builds the table by evaluating every operand pair at the given
    /// operating point through the batched analog grid
    /// ([`InSramMultiplier::outcome_grid`]).
    ///
    /// Bit-identical to [`MultiplierTable::from_multiplier_scalar`] — the
    /// equivalence is enforced by property tests and re-checked by the
    /// `analog_mac` bench report.
    ///
    /// # Errors
    ///
    /// Propagates multiplier errors.
    pub fn from_multiplier(
        multiplier: &InSramMultiplier,
        at: OperatingPoint,
    ) -> Result<Self, ImcError> {
        Self::from_outcomes(
            multiplier.outcome_grid(at)?,
            multiplier.array().operand_bits,
        )
    }

    /// Builds the table through the scalar per-pair multiply path — the
    /// reference implementation the batched
    /// [`MultiplierTable::from_multiplier`] is verified against.
    ///
    /// # Errors
    ///
    /// Propagates multiplier errors.
    pub fn from_multiplier_scalar(
        multiplier: &InSramMultiplier,
        at: OperatingPoint,
    ) -> Result<Self, ImcError> {
        let max = multiplier.array().operand_max();
        let mut outcomes = Vec::with_capacity(multiplier.array().input_space());
        for a in 0..=max {
            for d in 0..=max {
                outcomes.push(multiplier.multiply_at(a, d, at)?);
            }
        }
        Self::from_outcomes(outcomes, multiplier.array().operand_bits)
    }

    fn from_outcomes(outcomes: Vec<MultiplyOutcome>, operand_bits: u8) -> Result<Self, ImcError> {
        let mut results = Vec::with_capacity(outcomes.len());
        let mut energy_sum = 0.0;
        let mut total_sum = 0.0;
        for outcome in &outcomes {
            results.push(outcome.result);
            energy_sum += outcome.multiply_energy.0;
            total_sum += outcome.total_energy().0;
        }
        let count = outcomes.len() as f64;
        Ok(MultiplierTable {
            operand_bits,
            results,
            average_multiply_energy: FemtoJoules(energy_sum / count),
            average_total_energy: FemtoJoules(total_sum / count),
        })
    }

    /// An ideal (error-free) 4-bit table, used as the exact-INT4 baseline.
    pub fn exact() -> Self {
        Self::exact_for_bits(OPERAND_BITS)
    }

    /// An ideal (error-free) table over `operand_bits`-wide operands (1..=8).
    ///
    /// # Panics
    ///
    /// Panics if `operand_bits` is outside 1..=8 (products must fit `u16`).
    pub fn exact_for_bits(operand_bits: u8) -> Self {
        assert!(
            (1..=8).contains(&operand_bits),
            "exact table supports 1..=8 operand bits"
        );
        let max = (1u32 << operand_bits) as u16 - 1;
        let mut results = Vec::with_capacity((max as usize + 1) * (max as usize + 1));
        for a in 0..=max {
            for d in 0..=max {
                results.push(a * d);
            }
        }
        MultiplierTable {
            operand_bits,
            results,
            average_multiply_energy: FemtoJoules(0.0),
            average_total_energy: FemtoJoules(0.0),
        }
    }

    /// Operand width of the table's input space.
    pub fn operand_bits(&self) -> u8 {
        self.operand_bits
    }

    /// Largest operand the table covers.
    pub fn operand_max(&self) -> u16 {
        (1u32 << self.operand_bits) as u16 - 1
    }

    /// Looks up the multiplier output for `(a, d)`.
    ///
    /// # Panics
    ///
    /// Panics if either operand exceeds [`MultiplierTable::operand_max`].
    pub fn lookup(&self, a: u16, d: u16) -> u16 {
        let max = self.operand_max();
        assert!(
            a <= max && d <= max,
            "operands must be {}-bit",
            self.operand_bits
        );
        self.results[a as usize * (max as usize + 1) + d as usize]
    }

    /// Average multiplication energy over the input space.
    pub fn average_multiply_energy(&self) -> FemtoJoules {
        self.average_multiply_energy
    }

    /// Average write + multiplication energy over the input space.
    pub fn average_total_energy(&self) -> FemtoJoules {
        self.average_total_energy
    }

    /// Mean absolute error of the table against exact multiplication (LSBs).
    pub fn mean_absolute_error(&self) -> f64 {
        let max = self.operand_max();
        let mut total = 0.0;
        for a in 0..=max {
            for d in 0..=max {
                total += (self.lookup(a, d) as f64 - (a * d) as f64).abs();
            }
        }
        total / self.results.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::linear_suite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ideal_config() -> MultiplierConfig {
        // Zero code at the threshold voltage makes the overdrive proportional
        // to the DAC code, so products are exact up to quantisation.
        MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0))
    }

    fn int8_config() -> MultiplierConfig {
        ideal_config().with_array(ArrayConfig::int8())
    }

    #[test]
    fn near_ideal_multiplier_reproduces_products() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        for (a, d) in [(0, 0), (1, 1), (3, 5), (7, 9), (15, 15), (15, 1), (2, 8)] {
            let outcome = multiplier.multiply(a, d).unwrap();
            assert_eq!(outcome.expected, a * d);
            assert!(
                outcome.error_lsb().abs() <= 1.0,
                "{a} x {d}: got {} expected {}",
                outcome.result,
                outcome.expected
            );
        }
    }

    #[test]
    fn zero_operands_produce_zero() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        assert_eq!(multiplier.multiply(0, 9).unwrap().result, 0);
        assert_eq!(multiplier.multiply(9, 0).unwrap().result, 0);
    }

    #[test]
    fn operands_above_fifteen_are_rejected() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        assert!(matches!(
            multiplier.multiply(16, 3),
            Err(ImcError::OperandOutOfRange { .. })
        ));
        assert!(matches!(
            multiplier.multiply(3, 99),
            Err(ImcError::OperandOutOfRange { .. })
        ));
    }

    #[test]
    fn operand_range_follows_the_geometry() {
        let multiplier = InSramMultiplier::new(linear_suite(), int8_config()).unwrap();
        assert!(multiplier.multiply(255, 255).is_ok());
        assert!(matches!(
            multiplier.multiply(256, 1),
            Err(ImcError::OperandOutOfRange { max: 255, .. })
        ));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(InSramMultiplier::new(
            linear_suite(),
            MultiplierConfig::new(Seconds(0.0), Volts(0.3), Volts(1.0))
        )
        .is_err());
        assert!(InSramMultiplier::new(
            linear_suite(),
            MultiplierConfig::new(Seconds(0.16e-9), Volts(1.0), Volts(0.7))
        )
        .is_err());
        // Geometry validation is part of construction.
        let broken = ideal_config().with_array(ArrayConfig {
            operand_bits: 6,
            ..ArrayConfig::default()
        });
        assert!(matches!(
            InSramMultiplier::new(linear_suite(), broken),
            Err(ImcError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn energy_grows_with_stored_operand_weight() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let light = multiplier.multiply(15, 1).unwrap().multiply_energy.0;
        let heavy = multiplier.multiply(15, 15).unwrap().multiply_energy.0;
        assert!(heavy > light);
        let outcome = multiplier.multiply(15, 15).unwrap();
        assert!(outcome.write_energy.0 > 0.0);
        assert!(outcome.total_energy().0 > outcome.multiply_energy.0);
    }

    #[test]
    fn paper_corner_constructors_match_table_one() {
        let fom = MultiplierConfig::paper_fom_corner();
        assert!((fom.tau0.0 - 0.16e-9).abs() < 1e-15);
        assert_eq!(fom.vdac_zero, Volts(0.3));
        assert_eq!(fom.vdac_full_scale, Volts(1.0));
        assert!(fom.array.is_paper());
        let power = MultiplierConfig::paper_power_corner();
        assert_eq!(power.vdac_full_scale, Volts(0.7));
        let variation = MultiplierConfig::paper_variation_corner();
        assert!((variation.tau0.0 - 0.24e-9).abs() < 1e-15);
        assert_eq!(variation.vdac_zero, Volts(0.4));
        assert!((fom.longest_discharge().0 - 1.28e-9).abs() < 1e-15);
    }

    #[test]
    fn mismatch_sampling_perturbs_results_reproducibly() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let at = multiplier.nominal_operating_point();
        let mut rng_a = ChaCha8Rng::seed_from_u64(3);
        let mut rng_b = ChaCha8Rng::seed_from_u64(3);
        let a = multiplier
            .multiply_with_mismatch(&mut rng_a, 12, 13, at)
            .unwrap();
        let b = multiplier
            .multiply_with_mismatch(&mut rng_b, 12, 13, at)
            .unwrap();
        assert_eq!(a.combined_discharge, b.combined_discharge);
        // Across many samples the result must deviate from nominal sometimes.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let nominal = multiplier.multiply(12, 13).unwrap().combined_discharge.0;
        let any_different = (0..64).any(|_| {
            let sampled = multiplier
                .multiply_with_mismatch(&mut rng, 12, 13, at)
                .unwrap()
                .combined_discharge
                .0;
            (sampled - nominal).abs() > 1e-6
        });
        assert!(any_different);
    }

    #[test]
    fn analog_sigma_grows_with_operands() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let small = multiplier.analog_sigma(3, 1).unwrap().0;
        let large = multiplier.analog_sigma(15, 15).unwrap().0;
        assert!(large > small);
        assert_eq!(multiplier.analog_sigma(5, 0).unwrap().0, 0.0);
        assert!(multiplier.analog_sigma(16, 0).is_err());
    }

    #[test]
    fn table_matches_direct_multiplication() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let at = multiplier.nominal_operating_point();
        let table = MultiplierTable::from_multiplier(&multiplier, at).unwrap();
        for (a, d) in [(0, 0), (3, 4), (15, 15), (9, 2)] {
            assert_eq!(
                table.lookup(a, d),
                multiplier.multiply(a, d).unwrap().result
            );
        }
        assert!(table.average_multiply_energy().0 > 0.0);
        assert!(table.average_total_energy().0 > table.average_multiply_energy().0);
        assert!(table.mean_absolute_error() < 1.0);
    }

    #[test]
    fn batched_outcome_grid_is_bit_identical_to_scalar_multiplication() {
        for suite in [
            crate::testsupport::linear_suite(),
            crate::testsupport::pvt_sensitive_suite(),
        ] {
            let multiplier = InSramMultiplier::new(suite, ideal_config()).unwrap();
            for at in [
                multiplier.nominal_operating_point(),
                OperatingPoint {
                    vdd: Volts(0.95),
                    temperature: Celsius(60.0),
                },
            ] {
                let outcomes = multiplier.outcome_grid(at).unwrap();
                let sigmas = multiplier.analog_sigma_grid().unwrap();
                assert_eq!(outcomes.len(), 256);
                for a in 0..=OPERAND_MAX {
                    for d in 0..=OPERAND_MAX {
                        let index = (a * (OPERAND_MAX + 1) + d) as usize;
                        let scalar = multiplier.multiply_at(a, d, at).unwrap();
                        assert_eq!(outcomes[index], scalar, "a = {a}, d = {d}");
                        let scalar_sigma = multiplier.analog_sigma(a, d).unwrap();
                        assert_eq!(
                            sigmas[index].0.to_bits(),
                            scalar_sigma.0.to_bits(),
                            "sigma at a = {a}, d = {d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn int8_outcome_grid_is_bit_identical_to_scalar_composition() {
        let multiplier = InSramMultiplier::new(linear_suite(), int8_config()).unwrap();
        let at = multiplier.nominal_operating_point();
        let outcomes = multiplier.outcome_grid(at).unwrap();
        let sigmas = multiplier.analog_sigma_grid().unwrap();
        assert_eq!(outcomes.len(), 65536);
        // The full 256×256 space is slow through the live scalar path; a
        // stratified sample (all slice-boundary patterns plus a diagonal)
        // covers every composition case.
        let probes: Vec<u16> = (0..=255u16)
            .filter(|&v| v % 17 == 0 || !(18..=238).contains(&v) || v % 16 == 0)
            .collect();
        for &a in &probes {
            for &d in &probes {
                let index = a as usize * 256 + d as usize;
                let scalar = multiplier.multiply_at(a, d, at).unwrap();
                assert_eq!(outcomes[index], scalar, "a = {a}, d = {d}");
                let scalar_sigma = multiplier.analog_sigma(a, d).unwrap();
                assert_eq!(
                    sigmas[index].0.to_bits(),
                    scalar_sigma.0.to_bits(),
                    "sigma at a = {a}, d = {d}"
                );
            }
        }
    }

    #[test]
    fn int8_composition_matches_the_widened_slice_reference() {
        // The composed result must equal the digital shift-add of the four
        // 4-bit slice multiplications performed by the equivalent paper-
        // geometry multiplier: composition adds no analog behaviour of its
        // own.
        let wide = InSramMultiplier::new(linear_suite(), int8_config()).unwrap();
        let narrow = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        assert_eq!(
            wide.volts_per_lsb().0.to_bits(),
            narrow.volts_per_lsb().0.to_bits()
        );
        let at = wide.nominal_operating_point();
        for (a, d) in [
            (0u16, 0u16),
            (1, 255),
            (255, 255),
            (170, 85),
            (37, 201),
            (16, 16),
        ] {
            let composed = wide.multiply_at(a, d, at).unwrap();
            let mut reference: u32 = 0;
            for i in 0..2u16 {
                for j in 0..2u16 {
                    let a_slice = (a >> (4 * i)) & 0xF;
                    let d_slice = (d >> (4 * j)) & 0xF;
                    let code = narrow.multiply_at(a_slice, d_slice, at).unwrap().result;
                    reference += (code as u32) << (4 * (i + j));
                }
            }
            assert_eq!(
                composed.result as u32,
                reference.min(u16::MAX as u32),
                "a = {a}, d = {d}"
            );
            assert_eq!(composed.expected, a * d);
        }
    }

    #[test]
    fn batched_table_is_bit_identical_to_scalar_table() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let at = multiplier.nominal_operating_point();
        let batched = MultiplierTable::from_multiplier(&multiplier, at).unwrap();
        let scalar = MultiplierTable::from_multiplier_scalar(&multiplier, at).unwrap();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn analog_grid_exposes_per_column_quantities() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let grid = multiplier
            .analog_grid(multiplier.nominal_operating_point())
            .unwrap();
        // d = 1 uses only column 0, so the combined discharge is delta/4.
        let single = grid.combined_discharge(9, 1);
        assert!(single > 0.0);
        assert_eq!(grid.combined_discharge(9, 0), 0.0);
        // Word lines grow with the DAC code for a linear transfer.
        assert!(grid.word_line(15).0 > grid.word_line(0).0);
    }

    #[test]
    fn exact_table_has_zero_error() {
        let table = MultiplierTable::exact();
        assert_eq!(table.operand_bits(), 4);
        assert_eq!(table.lookup(7, 8), 56);
        assert_eq!(table.mean_absolute_error(), 0.0);
        assert_eq!(table.average_multiply_energy().0, 0.0);
        let wide = MultiplierTable::exact_for_bits(8);
        assert_eq!(wide.lookup(255, 255), 65025);
        assert_eq!(wide.mean_absolute_error(), 0.0);
    }

    #[test]
    #[should_panic(expected = "4-bit")]
    fn table_lookup_panics_on_out_of_range_operand() {
        let table = MultiplierTable::exact();
        let _ = table.lookup(16, 0);
    }

    #[test]
    fn supply_shift_changes_the_result() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let nominal = multiplier.multiply(10, 10).unwrap();
        let low_supply = multiplier
            .multiply_at(
                10,
                10,
                OperatingPoint {
                    vdd: Volts(0.9),
                    temperature: Celsius(25.0),
                },
            )
            .unwrap();
        // With the identity supply model the only effect is the DAC reference,
        // which lowers the word-line voltage and therefore the result.
        assert!(low_supply.result <= nominal.result);
    }

    #[test]
    fn pristine_fault_state_is_bit_identical_to_no_fault_state() {
        use crate::reliability::FaultState;
        use optima_circuit::defects::DefectMap;
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let at = multiplier.nominal_operating_point();
        let baseline = MultiplierTable::from_multiplier(&multiplier, at).unwrap();
        let array = *multiplier.array();
        let state = FaultState::unmitigated(&array, DefectMap::none(&array), 0).unwrap();
        let faulted = multiplier.with_faults(state).unwrap();
        assert!(faulted.faults().unwrap().is_pristine());
        let table = MultiplierTable::from_multiplier(&faulted, at).unwrap();
        assert_eq!(table, baseline);
        let scalar = MultiplierTable::from_multiplier_scalar(&faulted, at).unwrap();
        assert_eq!(scalar, baseline);
    }

    #[test]
    fn faulted_grid_is_bit_identical_to_faulted_scalar() {
        use crate::reliability::FaultState;
        use optima_circuit::defects::{DefectMap, DefectModel, LifetimeTrajectory};
        let array = ArrayConfig::paper().with_spares(2);
        let config = ideal_config().with_array(array);
        let map = DefectMap::sample(&array, &DefectModel::uniform(0.25, 17)).unwrap();
        let state = FaultState::unmitigated(&array, map, 0)
            .unwrap()
            .with_lifetime(&LifetimeTrajectory::nbti_like().at(3));
        let multiplier = InSramMultiplier::new(linear_suite(), config)
            .unwrap()
            .with_faults(state)
            .unwrap();
        let at = multiplier.nominal_operating_point();
        let batched = MultiplierTable::from_multiplier(&multiplier, at).unwrap();
        let scalar = MultiplierTable::from_multiplier_scalar(&multiplier, at).unwrap();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn stuck_at_zero_column_zeroes_its_bit_weight() {
        use crate::reliability::FaultState;
        use optima_circuit::defects::{CellDefect, DefectMap, DefectModel};
        let array = ArrayConfig::paper();
        // Find a map whose row 0 has a stuck-at-0 cell on a healthy bit-line
        // and nothing else wrong in the word.
        let (map, column) = (0..10_000u64)
            .find_map(|seed| {
                let map = DefectMap::sample(
                    &array,
                    &DefectModel {
                        stuck_at_zero_rate: 0.15,
                        ..DefectModel::pristine(seed)
                    },
                )
                .unwrap();
                let stuck: Vec<u16> = (0..4)
                    .filter(|&c| map.cell_unchecked(0, c) == CellDefect::StuckAtZero)
                    .collect();
                (stuck.len() == 1).then(|| (map.clone(), stuck[0]))
            })
            .expect("no single stuck-at-0 map found");
        let state = FaultState::unmitigated(&array, map, 0).unwrap();
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config())
            .unwrap()
            .with_faults(state)
            .unwrap();
        // Storing exactly the stuck bit yields zero; the other bits survive.
        let d = 1u16 << column;
        assert_eq!(multiplier.multiply(15, d).unwrap().result, 0);
        let healthy_bit = (0..4).find(|&b| b != column).unwrap();
        assert!(multiplier.multiply(15, 1 << healthy_bit).unwrap().result > 0);
    }

    #[test]
    fn shorted_bitline_inflates_results_and_energy() {
        use crate::reliability::FaultState;
        use optima_circuit::defects::{BitLineFault, DefectMap, DefectModel};
        let array = ArrayConfig::paper();
        let map = (0..10_000u64)
            .find_map(|seed| {
                let map = DefectMap::sample(
                    &array,
                    &DefectModel {
                        short_bitline_rate: 0.12,
                        ..DefectModel::pristine(seed)
                    },
                )
                .unwrap();
                (0..4)
                    .any(|c| map.bitline_unchecked(c) == BitLineFault::Shorted)
                    .then_some(map)
            })
            .expect("no shorted-bit-line map found");
        let column = (0..4)
            .find(|&c| map.bitline_unchecked(c) == BitLineFault::Shorted)
            .unwrap();
        let state = FaultState::unmitigated(&array, map, 0).unwrap();
        let pristine = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let faulted = pristine.clone().with_faults(state).unwrap();
        // A stored 0 on the shorted column still discharges the full rail:
        // the result and the energy both exceed the pristine multiplier's.
        let d_without = 0u16; // nothing stored at all
        let good = pristine.multiply(15, d_without).unwrap();
        let bad = faulted.multiply(15, d_without).unwrap();
        assert!(bad.result > good.result, "short must inflate the product");
        assert!(bad.multiply_energy.0 > good.multiply_energy.0);
        let _ = column;
    }

    #[test]
    fn vth_aging_weakens_the_discharge() {
        use crate::reliability::FaultState;
        use optima_circuit::defects::{DefectMap, LifetimeTrajectory};
        let array = ArrayConfig::paper();
        let pristine = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let aged_state = FaultState::unmitigated(&array, DefectMap::none(&array), 0)
            .unwrap()
            .with_lifetime(&LifetimeTrajectory::nbti_like().at(10));
        let aged = pristine.clone().with_faults(aged_state).unwrap();
        let fresh = pristine.multiply(15, 15).unwrap();
        let old = aged.multiply(15, 15).unwrap();
        assert!(
            old.combined_discharge.0 < fresh.combined_discharge.0,
            "V_th aging must weaken the discharge: {} vs {}",
            old.combined_discharge.0,
            fresh.combined_discharge.0
        );
        assert!(old.result <= fresh.result);
    }

    #[test]
    fn redundancy_remap_repairs_a_defective_column() {
        use crate::reliability::FaultState;
        use optima_circuit::defects::{DefectMap, DefectModel};
        let array = ArrayConfig::paper().with_spares(2);
        let config = ideal_config().with_array(array);
        // A map with at least one hard fault in row 0's word but clean spares.
        let map = (0..10_000u64)
            .find_map(|seed| {
                let map = DefectMap::sample(
                    &array,
                    &DefectModel {
                        stuck_at_zero_rate: 0.2,
                        ..DefectModel::pristine(seed)
                    },
                )
                .unwrap();
                let word_faults = (0..4).filter(|&c| map.is_hard_faulted(0, c)).count();
                let spare_faults = (4..6).filter(|&c| map.is_hard_faulted(0, c)).count();
                ((1..=2).contains(&word_faults) && spare_faults == 0).then_some(map)
            })
            .expect("no repairable map found");
        let at;
        let unmitigated = {
            let state = FaultState::unmitigated(&array, map.clone(), 0).unwrap();
            let m = InSramMultiplier::new(linear_suite(), config)
                .unwrap()
                .with_faults(state)
                .unwrap();
            at = m.nominal_operating_point();
            MultiplierTable::from_multiplier(&m, at).unwrap()
        };
        let repaired = {
            let state = FaultState::with_redundancy(&array, map, 0).unwrap();
            assert!(state.remap().remapped() >= 1);
            let m = InSramMultiplier::new(linear_suite(), config)
                .unwrap()
                .with_faults(state)
                .unwrap();
            MultiplierTable::from_multiplier(&m, at).unwrap()
        };
        assert!(
            repaired.mean_absolute_error() < unmitigated.mean_absolute_error(),
            "redundancy must reduce the table error: {} vs {}",
            repaired.mean_absolute_error(),
            unmitigated.mean_absolute_error()
        );
        // Clean spares restore the pristine table exactly.
        let pristine = InSramMultiplier::new(linear_suite(), config).unwrap();
        let baseline = MultiplierTable::from_multiplier(&pristine, at).unwrap();
        assert_eq!(
            repaired.mean_absolute_error(),
            baseline.mean_absolute_error()
        );
    }

    #[test]
    fn fault_state_geometry_must_match_the_multiplier() {
        use crate::reliability::FaultState;
        use optima_circuit::defects::DefectMap;
        let spare_array = ArrayConfig::paper().with_spares(2);
        let state =
            FaultState::unmitigated(&spare_array, DefectMap::none(&spare_array), 0).unwrap();
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let err = multiplier.with_faults(state).unwrap_err();
        assert!(matches!(err, ImcError::InvalidConfiguration { .. }));
        assert!(err.to_string().contains("+2sp"), "{err}");
    }

    #[test]
    fn column_mux_amortises_the_converter_overhead() {
        let base = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let muxed_config = ideal_config().with_array(ArrayConfig {
            columns: 8,
            column_mux: 2,
            ..ArrayConfig::default()
        });
        let muxed = InSramMultiplier::new(linear_suite(), muxed_config).unwrap();
        let e_base = base.multiply(9, 9).unwrap().multiply_energy.0;
        let e_muxed = muxed.multiply(9, 9).unwrap().multiply_energy.0;
        // Same discharges, half the fixed converter overhead.
        assert!((e_base - e_muxed - 1.0).abs() < 1e-12);
        assert_eq!(
            base.multiply(9, 9).unwrap().result,
            muxed.multiply(9, 9).unwrap().result
        );
    }
}
