//! The behavioural 4-bit discharge-based in-SRAM multiplier.
//!
//! The circuit (paper Section V, based on ref. [8]) multiplies a 4-bit
//! operand `a` applied through a word-line DAC with a 4-bit operand `d`
//! stored in an SRAM row.  Each stored bit `d_i` gates the discharge of its
//! own bit-line-bar; bit weighting is achieved by letting column `i`
//! discharge for `2^i · τ0`.  The discharges are then combined by charge
//! sharing and digitised by an ADC.

use crate::error::ImcError;
use optima_circuit::adc::Adc;
use optima_circuit::dac::{Dac, DacTransfer};
use optima_core::model::suite::ModelSuite;
use optima_math::units::{Celsius, FemtoJoules, Seconds, Volts};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of operand bits of the multiplier (fixed to 4 as in the paper).
pub const OPERAND_BITS: u8 = 4;

/// Largest operand value (`2^4 − 1`).
pub const OPERAND_MAX: u16 = (1 << OPERAND_BITS) - 1;

/// Largest exact product (`15 × 15`).
pub const PRODUCT_MAX: u16 = OPERAND_MAX * OPERAND_MAX;

/// Static configuration of one multiplier design point.
///
/// The three fields are exactly the design-space parameters explored in the
/// paper's Fig. 7 / Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiplierConfig {
    /// Discharge time of the least-significant bit-line (`τ0`).
    pub tau0: Seconds,
    /// DAC output voltage for input code 0 (`V_DAC,0`).
    pub vdac_zero: Volts,
    /// DAC full-scale output voltage (`V_DAC,FS`).
    pub vdac_full_scale: Volts,
    /// DAC transfer curve (linear in the paper; square-root pre-distortion
    /// available for the ablation study).
    pub dac_transfer: DacTransfer,
}

impl MultiplierConfig {
    /// Creates a configuration from the three design-space parameters with a
    /// linear DAC.
    pub fn new(tau0: Seconds, vdac_zero: Volts, vdac_full_scale: Volts) -> Self {
        MultiplierConfig {
            tau0,
            vdac_zero,
            vdac_full_scale,
            dac_transfer: DacTransfer::Linear,
        }
    }

    /// The paper's *fom* corner (Table I): τ0 = 0.16 ns, V_DAC,0 = 0.3 V,
    /// V_DAC,FS = 1.0 V.
    pub fn paper_fom_corner() -> Self {
        MultiplierConfig::new(Seconds(0.16e-9), Volts(0.3), Volts(1.0))
    }

    /// The paper's *power* corner (Table I): τ0 = 0.16 ns, V_DAC,0 = 0.3 V,
    /// V_DAC,FS = 0.7 V.
    pub fn paper_power_corner() -> Self {
        MultiplierConfig::new(Seconds(0.16e-9), Volts(0.3), Volts(0.7))
    }

    /// The paper's *variation* corner (Table I): τ0 = 0.24 ns, V_DAC,0 = 0.4 V,
    /// V_DAC,FS = 1.0 V.
    pub fn paper_variation_corner() -> Self {
        MultiplierConfig::new(Seconds(0.24e-9), Volts(0.4), Volts(1.0))
    }

    /// Switches the DAC transfer curve (builder style).
    pub fn with_dac_transfer(mut self, transfer: DacTransfer) -> Self {
        self.dac_transfer = transfer;
        self
    }

    /// Longest single-column discharge time (`8 · τ0`, the MSB column).
    pub fn longest_discharge(&self) -> Seconds {
        Seconds(self.tau0.0 * (1 << (OPERAND_BITS - 1)) as f64)
    }
}

/// Result of one in-SRAM multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiplyOutcome {
    /// Digitised product (in product LSBs, ideally `a · d`).
    pub result: u16,
    /// Exact product `a · d`.
    pub expected: u16,
    /// Combined analog discharge presented to the ADC.
    pub combined_discharge: Volts,
    /// Energy of the multiplication (discharges + converter overhead),
    /// excluding the operand write.
    pub multiply_energy: FemtoJoules,
    /// Energy of writing the stored operand (four cell writes).
    pub write_energy: FemtoJoules,
}

impl MultiplyOutcome {
    /// Signed error in product LSBs (`result − expected`).
    pub fn error_lsb(&self) -> f64 {
        self.result as f64 - self.expected as f64
    }

    /// Total energy of write + multiplication.
    pub fn total_energy(&self) -> FemtoJoules {
        FemtoJoules(self.multiply_energy.0 + self.write_energy.0)
    }
}

/// Operating conditions of a multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage.
    pub vdd: Volts,
    /// Junction temperature.
    pub temperature: Celsius,
}

/// The behavioural in-SRAM multiplier.
#[derive(Debug, Clone)]
pub struct InSramMultiplier {
    models: ModelSuite,
    config: MultiplierConfig,
    dac: Dac,
    adc: Adc,
    /// Volts of combined discharge per product LSB, determined by a one-time
    /// least-squares calibration over the full input space.
    volts_per_lsb: f64,
    /// Fixed converter overhead charged per multiplication.
    converter_overhead: FemtoJoules,
    nominal: OperatingPoint,
}

impl InSramMultiplier {
    /// Builds a multiplier for the given fitted models and design point.
    ///
    /// Construction performs a one-time transfer-curve calibration (the
    /// mapping from combined discharge to product LSBs) at nominal
    /// conditions, mirroring how the readout reference of the real circuit
    /// would be trimmed.
    ///
    /// # Errors
    ///
    /// * [`ImcError::InvalidConfiguration`] if the DAC voltages are
    ///   inconsistent or `τ0` is non-positive.
    /// * Propagates model-evaluation errors if the configuration drives the
    ///   models outside their calibrated domain.
    pub fn new(models: ModelSuite, config: MultiplierConfig) -> Result<Self, ImcError> {
        if config.tau0.0 <= 0.0 || !config.tau0.0.is_finite() {
            return Err(ImcError::InvalidConfiguration {
                context: format!("tau0 must be positive, got {}", config.tau0.0),
            });
        }
        let dac = Dac::new(OPERAND_BITS, config.vdac_zero, config.vdac_full_scale)
            .map_err(|err| ImcError::InvalidConfiguration {
                context: err.to_string(),
            })?
            .with_transfer(config.dac_transfer);
        // The ADC digitises the combined discharge; its range is set after the
        // transfer calibration so that one code equals one product LSB.
        let adc = Adc::new(8, Volts(1.0)).map_err(|err| ImcError::InvalidConfiguration {
            context: err.to_string(),
        })?;
        let nominal = OperatingPoint {
            vdd: models.vdd_nominal(),
            temperature: models.temperature_nominal(),
        };

        let mut multiplier = InSramMultiplier {
            models,
            config,
            dac,
            adc,
            volts_per_lsb: 1.0,
            converter_overhead: FemtoJoules(2.0),
            nominal,
        };
        multiplier.calibrate_transfer()?;
        Ok(multiplier)
    }

    /// The design-point configuration.
    pub fn config(&self) -> &MultiplierConfig {
        &self.config
    }

    /// The fitted models driving the multiplier.
    pub fn models(&self) -> &ModelSuite {
        &self.models
    }

    /// Volts of combined discharge corresponding to one product LSB.
    pub fn volts_per_lsb(&self) -> Volts {
        Volts(self.volts_per_lsb)
    }

    /// Nominal operating point used for calibration.
    pub fn nominal_operating_point(&self) -> OperatingPoint {
        self.nominal
    }

    /// Least-squares calibration of the discharge-to-LSB transfer factor over
    /// the full 16×16 input space at nominal conditions (batched: the analog
    /// grid is evaluated once, then combined per operand pair).
    fn calibrate_transfer(&mut self) -> Result<(), ImcError> {
        let grid = self.analog_grid(self.nominal)?;
        let mut numerator = 0.0;
        let mut denominator = 0.0;
        for a in 0..=OPERAND_MAX {
            for d in 0..=OPERAND_MAX {
                let discharge = grid.combined_discharge(a, d);
                let expected = (a * d) as f64;
                numerator += discharge * expected;
                denominator += expected * expected;
            }
        }
        if denominator <= 0.0 || numerator <= 0.0 {
            return Err(ImcError::InvalidConfiguration {
                context: "transfer calibration produced no usable discharge".to_string(),
            });
        }
        self.volts_per_lsb = numerator / denominator;
        Ok(())
    }

    /// Discharge duration of column `bit` (`2^bit · τ0`).
    fn column_duration(&self, bit: u8) -> Seconds {
        Seconds(self.config.tau0.0 * (1u32 << bit) as f64)
    }

    /// Precomputes every per-(DAC operand, column) analog quantity at `at`
    /// through the batched model fills.
    ///
    /// This is the batched analog hot path: 16 word-line voltages and
    /// 16 × [`OPERAND_BITS`] discharges/energies are evaluated once, and the
    /// 256 operand pairs of the input space are then combined from them —
    /// bit-identical to evaluating each pair through the scalar
    /// [`InSramMultiplier::multiply_at`] path, because a pair's discharge is
    /// the same sum of the same per-column values in the same (bit-ascending)
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates converter and model-evaluation errors, in the same
    /// operand-major order as the scalar input-space loop.
    pub fn analog_grid(&self, at: OperatingPoint) -> Result<AnalogOperandGrid, ImcError> {
        let operands = OPERAND_MAX as usize + 1;
        let bits = OPERAND_BITS as usize;
        let durations: Vec<Seconds> = (0..OPERAND_BITS).map(|b| self.column_duration(b)).collect();
        let mut word_lines = Vec::with_capacity(operands);
        let mut deltas = vec![0.0; operands * bits];
        let mut energies = vec![0.0; operands * bits];
        for a in 0..operands {
            let word_line =
                self.dac
                    .output_with_supply(a as u16, at.vdd, self.models.vdd_nominal())?;
            word_lines.push(word_line);
            let delta_row = &mut deltas[a * bits..(a + 1) * bits];
            self.models.fill_discharges(
                &durations,
                word_line,
                true,
                at.vdd,
                at.temperature,
                delta_row,
            )?;
            for (energy, &delta) in energies[a * bits..(a + 1) * bits]
                .iter_mut()
                .zip(&*delta_row)
            {
                *energy = self
                    .models
                    .discharge_energy(Volts(delta), at.vdd, at.temperature)
                    .0;
            }
        }
        Ok(AnalogOperandGrid {
            word_lines,
            deltas,
            energies,
            write_energy: FemtoJoules(
                self.models.write_energy(at.vdd, at.temperature).0 * OPERAND_BITS as f64,
            ),
        })
    }

    /// Evaluates the full 16×16 input space at `at` through the batched
    /// analog grid, returning the outcomes in operand-major order
    /// (`a` outer, `d` inner) — bit-identical to calling
    /// [`InSramMultiplier::multiply_at`] for every pair.
    ///
    /// # Errors
    ///
    /// Same as [`InSramMultiplier::analog_grid`].
    pub fn outcome_grid(&self, at: OperatingPoint) -> Result<Vec<MultiplyOutcome>, ImcError> {
        let grid = self.analog_grid(at)?;
        let mut outcomes = Vec::with_capacity(grid.word_lines.len() * grid.word_lines.len());
        for a in 0..=OPERAND_MAX {
            for d in 0..=OPERAND_MAX {
                outcomes.push(self.finish_outcome(
                    a,
                    d,
                    grid.combined_discharge(a, d),
                    |bit| grid.energy(a, bit),
                    grid.write_energy,
                ));
            }
        }
        Ok(outcomes)
    }

    /// Analog mismatch σ of every operand pair, in operand-major order —
    /// bit-identical to calling [`InSramMultiplier::analog_sigma`] for every
    /// pair, from [`OPERAND_BITS`] × 16 σ-model evaluations instead of one
    /// per set bit of every pair.
    ///
    /// # Errors
    ///
    /// Propagates converter errors.
    pub fn analog_sigma_grid(&self) -> Result<Vec<Volts>, ImcError> {
        let operands = OPERAND_MAX as usize + 1;
        let bits = OPERAND_BITS as usize;
        let mut sigmas = vec![0.0; operands * bits];
        for a in 0..operands {
            let word_line = self.dac.output(a as u16)?;
            for bit in 0..OPERAND_BITS {
                sigmas[a * bits + bit as usize] = self
                    .models
                    .mismatch_sigma(self.column_duration(bit), word_line)
                    .0;
            }
        }
        let mut grid = Vec::with_capacity(operands * operands);
        for a in 0..operands {
            for d in 0..=OPERAND_MAX {
                let mut variance = 0.0;
                for bit in 0..bits {
                    if (d >> bit) & 1 == 1 {
                        let sigma = sigmas[a * bits + bit];
                        variance += sigma * sigma;
                    }
                }
                grid.push(Volts(variance.sqrt() / OPERAND_BITS as f64));
            }
        }
        Ok(grid)
    }

    /// Combined (charge-shared) discharge for operands `a` (DAC input) and
    /// `d` (stored word), optionally with mismatch sampling.
    fn combined_discharge<R: Rng + ?Sized>(
        &self,
        a: u16,
        d: u16,
        at: OperatingPoint,
        mut rng: Option<&mut R>,
    ) -> Result<f64, ImcError> {
        let word_line = self
            .dac
            .output_with_supply(a, at.vdd, self.models.vdd_nominal())?;
        let mut total = 0.0;
        for bit in 0..OPERAND_BITS {
            let stored = (d >> bit) & 1 == 1;
            if !stored {
                continue;
            }
            let duration = Seconds(self.config.tau0.0 * (1u32 << bit) as f64);
            let delta = match rng.as_mut() {
                Some(rng) => self.models.discharge_with_mismatch(
                    &mut **rng,
                    duration,
                    word_line,
                    true,
                    at.vdd,
                    at.temperature,
                )?,
                None => self
                    .models
                    .discharge(duration, word_line, true, at.vdd, at.temperature)?,
            };
            total += delta.0;
        }
        // Charge sharing across the four sampling capacitors averages the
        // individual discharges.
        Ok(total / OPERAND_BITS as f64)
    }

    /// Analog standard deviation of the combined discharge for `(a, d)` due
    /// to transistor mismatch (root-sum-square of the per-column σ).
    ///
    /// # Errors
    ///
    /// Propagates converter errors for out-of-range operands.
    pub fn analog_sigma(&self, a: u16, d: u16) -> Result<Volts, ImcError> {
        self.check_operands(a, d)?;
        let word_line = self.dac.output(a)?;
        let mut variance = 0.0;
        for bit in 0..OPERAND_BITS {
            if (d >> bit) & 1 == 0 {
                continue;
            }
            let duration = Seconds(self.config.tau0.0 * (1u32 << bit) as f64);
            let sigma = self.models.mismatch_sigma(duration, word_line).0;
            variance += sigma * sigma;
        }
        Ok(Volts(variance.sqrt() / OPERAND_BITS as f64))
    }

    fn check_operands(&self, a: u16, d: u16) -> Result<(), ImcError> {
        if a > OPERAND_MAX {
            return Err(ImcError::OperandOutOfRange {
                value: a,
                max: OPERAND_MAX,
            });
        }
        if d > OPERAND_MAX {
            return Err(ImcError::OperandOutOfRange {
                value: d,
                max: OPERAND_MAX,
            });
        }
        Ok(())
    }

    /// Performs one multiplication at nominal conditions.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::OperandOutOfRange`] for operands above 15 and
    /// propagates model errors.
    pub fn multiply(&self, a: u16, d: u16) -> Result<MultiplyOutcome, ImcError> {
        self.multiply_at(a, d, self.nominal)
    }

    /// Performs one multiplication at an explicit operating point.
    ///
    /// # Errors
    ///
    /// Same as [`InSramMultiplier::multiply`].
    pub fn multiply_at(
        &self,
        a: u16,
        d: u16,
        at: OperatingPoint,
    ) -> Result<MultiplyOutcome, ImcError> {
        self.check_operands(a, d)?;
        let discharge = self.combined_discharge::<rand_chacha::ChaCha8Rng>(a, d, at, None)?;
        Ok(self.digitise(a, d, discharge, at))
    }

    /// Performs one multiplication with per-column mismatch sampling (one
    /// Monte Carlo instance).
    ///
    /// # Errors
    ///
    /// Same as [`InSramMultiplier::multiply`].
    pub fn multiply_with_mismatch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: u16,
        d: u16,
        at: OperatingPoint,
    ) -> Result<MultiplyOutcome, ImcError> {
        self.check_operands(a, d)?;
        let discharge = self.combined_discharge(a, d, at, Some(rng))?;
        Ok(self.digitise(a, d, discharge, at))
    }

    fn digitise(&self, a: u16, d: u16, discharge: f64, at: OperatingPoint) -> MultiplyOutcome {
        // Energy: per-column discharge energies + converter overhead.
        let word_line = self
            .dac
            .output_with_supply(a, at.vdd, self.models.vdd_nominal())
            .unwrap_or(Volts(self.config.vdac_zero.0));
        let column_energy = |bit: u8| {
            let delta = self
                .models
                .discharge(
                    self.column_duration(bit),
                    word_line,
                    true,
                    at.vdd,
                    at.temperature,
                )
                .map(|v| v.0)
                .unwrap_or(0.0);
            self.models
                .discharge_energy(Volts(delta), at.vdd, at.temperature)
                .0
        };
        let write_energy =
            FemtoJoules(self.models.write_energy(at.vdd, at.temperature).0 * OPERAND_BITS as f64);
        self.finish_outcome(a, d, discharge, column_energy, write_energy)
    }

    /// Shared readout back half of the scalar and batched multiply paths:
    /// ADC quantisation of the combined discharge plus the per-set-bit
    /// energy combination.  Only how the per-column energy is obtained
    /// differs between the callers (live model evaluation vs. precomputed
    /// grid), so any change to the readout model lands in both paths.
    fn finish_outcome(
        &self,
        a: u16,
        d: u16,
        discharge: f64,
        column_energy: impl Fn(u8) -> f64,
        write_energy: FemtoJoules,
    ) -> MultiplyOutcome {
        // Round-to-nearest quantisation in product-LSB units, clamped to the
        // ADC code range (8 bits, enough for the 0..=225 product range).
        let raw = (discharge / self.volts_per_lsb).round();
        let result = raw.clamp(0.0, self.adc.max_code() as f64) as u16;
        let mut multiply_energy = self.converter_overhead.0;
        for bit in 0..OPERAND_BITS {
            if (d >> bit) & 1 == 1 {
                multiply_energy += column_energy(bit);
            }
        }
        MultiplyOutcome {
            result,
            expected: a * d,
            combined_discharge: Volts(discharge),
            multiply_energy: FemtoJoules(multiply_energy),
            write_energy,
        }
    }
}

/// Per-(DAC operand, column) analog quantities of one multiplier at one
/// operating point, precomputed through the batched model fills.
///
/// Built by [`InSramMultiplier::analog_grid`]; the 256 operand pairs of the
/// input space combine these 16 × [`OPERAND_BITS`] values instead of
/// re-evaluating the fitted polynomials per pair.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogOperandGrid {
    /// Word-line voltage per DAC operand `a`.
    word_lines: Vec<Volts>,
    /// Discharge `ΔV` per `(a, bit)`, row-major with [`OPERAND_BITS`] per row.
    deltas: Vec<f64>,
    /// Discharge energy per `(a, bit)` (femtojoules).
    energies: Vec<f64>,
    /// Energy of writing one [`OPERAND_BITS`]-bit operand.
    write_energy: FemtoJoules,
}

impl AnalogOperandGrid {
    /// Discharge `ΔV` of column `bit` for DAC operand `a`.
    fn delta(&self, a: u16, bit: u8) -> f64 {
        self.deltas[a as usize * OPERAND_BITS as usize + bit as usize]
    }

    /// Discharge energy of column `bit` for DAC operand `a` (femtojoules).
    fn energy(&self, a: u16, bit: u8) -> f64 {
        self.energies[a as usize * OPERAND_BITS as usize + bit as usize]
    }

    /// Charge-shared combined discharge for the operand pair `(a, d)`:
    /// the same per-column values summed in the same bit-ascending order as
    /// the scalar multiply path, so the result is bit-identical to it.
    pub fn combined_discharge(&self, a: u16, d: u16) -> f64 {
        let mut total = 0.0;
        for bit in 0..OPERAND_BITS {
            if (d >> bit) & 1 == 1 {
                total += self.delta(a, bit);
            }
        }
        total / OPERAND_BITS as f64
    }

    /// Word-line voltage the DAC produced for operand `a`.
    pub fn word_line(&self, a: u16) -> Volts {
        self.word_lines[a as usize]
    }
}

/// A pre-computed 16×16 result table of a multiplier configuration.
///
/// The DNN experiments perform millions of multiplications; looking the
/// results up in a table is the standard way to make that tractable and is
/// behaviourally identical because the multiplier is deterministic at a fixed
/// operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiplierTable {
    results: Vec<u16>,
    average_multiply_energy: FemtoJoules,
    average_total_energy: FemtoJoules,
}

impl MultiplierTable {
    /// Builds the table by evaluating every operand pair at the given
    /// operating point through the batched analog grid
    /// ([`InSramMultiplier::outcome_grid`]).
    ///
    /// Bit-identical to [`MultiplierTable::from_multiplier_scalar`] — the
    /// equivalence is enforced by property tests and re-checked by the
    /// `analog_mac` bench report.
    ///
    /// # Errors
    ///
    /// Propagates multiplier errors.
    pub fn from_multiplier(
        multiplier: &InSramMultiplier,
        at: OperatingPoint,
    ) -> Result<Self, ImcError> {
        Self::from_outcomes(multiplier.outcome_grid(at)?)
    }

    /// Builds the table through the scalar per-pair multiply path — the
    /// reference implementation the batched
    /// [`MultiplierTable::from_multiplier`] is verified against.
    ///
    /// # Errors
    ///
    /// Propagates multiplier errors.
    pub fn from_multiplier_scalar(
        multiplier: &InSramMultiplier,
        at: OperatingPoint,
    ) -> Result<Self, ImcError> {
        let mut outcomes = Vec::with_capacity(256);
        for a in 0..=OPERAND_MAX {
            for d in 0..=OPERAND_MAX {
                outcomes.push(multiplier.multiply_at(a, d, at)?);
            }
        }
        Self::from_outcomes(outcomes)
    }

    fn from_outcomes(outcomes: Vec<MultiplyOutcome>) -> Result<Self, ImcError> {
        let mut results = Vec::with_capacity(256);
        let mut energy_sum = 0.0;
        let mut total_sum = 0.0;
        for outcome in &outcomes {
            results.push(outcome.result);
            energy_sum += outcome.multiply_energy.0;
            total_sum += outcome.total_energy().0;
        }
        Ok(MultiplierTable {
            results,
            average_multiply_energy: FemtoJoules(energy_sum / 256.0),
            average_total_energy: FemtoJoules(total_sum / 256.0),
        })
    }

    /// An ideal (error-free) table, used as the exact-INT4 baseline.
    pub fn exact() -> Self {
        let mut results = Vec::with_capacity(256);
        for a in 0..=OPERAND_MAX {
            for d in 0..=OPERAND_MAX {
                results.push(a * d);
            }
        }
        MultiplierTable {
            results,
            average_multiply_energy: FemtoJoules(0.0),
            average_total_energy: FemtoJoules(0.0),
        }
    }

    /// Looks up the multiplier output for `(a, d)`.
    ///
    /// # Panics
    ///
    /// Panics if either operand exceeds 15.
    pub fn lookup(&self, a: u16, d: u16) -> u16 {
        assert!(
            a <= OPERAND_MAX && d <= OPERAND_MAX,
            "operands must be 4-bit"
        );
        self.results[(a * (OPERAND_MAX + 1) + d) as usize]
    }

    /// Average multiplication energy over the input space.
    pub fn average_multiply_energy(&self) -> FemtoJoules {
        self.average_multiply_energy
    }

    /// Average write + multiplication energy over the input space.
    pub fn average_total_energy(&self) -> FemtoJoules {
        self.average_total_energy
    }

    /// Mean absolute error of the table against exact multiplication (LSBs).
    pub fn mean_absolute_error(&self) -> f64 {
        let mut total = 0.0;
        for a in 0..=OPERAND_MAX {
            for d in 0..=OPERAND_MAX {
                total += (self.lookup(a, d) as f64 - (a * d) as f64).abs();
            }
        }
        total / 256.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::linear_suite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ideal_config() -> MultiplierConfig {
        // Zero code at the threshold voltage makes the overdrive proportional
        // to the DAC code, so products are exact up to quantisation.
        MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0))
    }

    #[test]
    fn near_ideal_multiplier_reproduces_products() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        for (a, d) in [(0, 0), (1, 1), (3, 5), (7, 9), (15, 15), (15, 1), (2, 8)] {
            let outcome = multiplier.multiply(a, d).unwrap();
            assert_eq!(outcome.expected, a * d);
            assert!(
                outcome.error_lsb().abs() <= 1.0,
                "{a} x {d}: got {} expected {}",
                outcome.result,
                outcome.expected
            );
        }
    }

    #[test]
    fn zero_operands_produce_zero() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        assert_eq!(multiplier.multiply(0, 9).unwrap().result, 0);
        assert_eq!(multiplier.multiply(9, 0).unwrap().result, 0);
    }

    #[test]
    fn operands_above_fifteen_are_rejected() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        assert!(matches!(
            multiplier.multiply(16, 3),
            Err(ImcError::OperandOutOfRange { .. })
        ));
        assert!(matches!(
            multiplier.multiply(3, 99),
            Err(ImcError::OperandOutOfRange { .. })
        ));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(InSramMultiplier::new(
            linear_suite(),
            MultiplierConfig::new(Seconds(0.0), Volts(0.3), Volts(1.0))
        )
        .is_err());
        assert!(InSramMultiplier::new(
            linear_suite(),
            MultiplierConfig::new(Seconds(0.16e-9), Volts(1.0), Volts(0.7))
        )
        .is_err());
    }

    #[test]
    fn energy_grows_with_stored_operand_weight() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let light = multiplier.multiply(15, 1).unwrap().multiply_energy.0;
        let heavy = multiplier.multiply(15, 15).unwrap().multiply_energy.0;
        assert!(heavy > light);
        let outcome = multiplier.multiply(15, 15).unwrap();
        assert!(outcome.write_energy.0 > 0.0);
        assert!(outcome.total_energy().0 > outcome.multiply_energy.0);
    }

    #[test]
    fn paper_corner_constructors_match_table_one() {
        let fom = MultiplierConfig::paper_fom_corner();
        assert!((fom.tau0.0 - 0.16e-9).abs() < 1e-15);
        assert_eq!(fom.vdac_zero, Volts(0.3));
        assert_eq!(fom.vdac_full_scale, Volts(1.0));
        let power = MultiplierConfig::paper_power_corner();
        assert_eq!(power.vdac_full_scale, Volts(0.7));
        let variation = MultiplierConfig::paper_variation_corner();
        assert!((variation.tau0.0 - 0.24e-9).abs() < 1e-15);
        assert_eq!(variation.vdac_zero, Volts(0.4));
        assert!((fom.longest_discharge().0 - 1.28e-9).abs() < 1e-15);
    }

    #[test]
    fn mismatch_sampling_perturbs_results_reproducibly() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let at = multiplier.nominal_operating_point();
        let mut rng_a = ChaCha8Rng::seed_from_u64(3);
        let mut rng_b = ChaCha8Rng::seed_from_u64(3);
        let a = multiplier
            .multiply_with_mismatch(&mut rng_a, 12, 13, at)
            .unwrap();
        let b = multiplier
            .multiply_with_mismatch(&mut rng_b, 12, 13, at)
            .unwrap();
        assert_eq!(a.combined_discharge, b.combined_discharge);
        // Across many samples the result must deviate from nominal sometimes.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let nominal = multiplier.multiply(12, 13).unwrap().combined_discharge.0;
        let any_different = (0..64).any(|_| {
            let sampled = multiplier
                .multiply_with_mismatch(&mut rng, 12, 13, at)
                .unwrap()
                .combined_discharge
                .0;
            (sampled - nominal).abs() > 1e-6
        });
        assert!(any_different);
    }

    #[test]
    fn analog_sigma_grows_with_operands() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let small = multiplier.analog_sigma(3, 1).unwrap().0;
        let large = multiplier.analog_sigma(15, 15).unwrap().0;
        assert!(large > small);
        assert_eq!(multiplier.analog_sigma(5, 0).unwrap().0, 0.0);
        assert!(multiplier.analog_sigma(16, 0).is_err());
    }

    #[test]
    fn table_matches_direct_multiplication() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let at = multiplier.nominal_operating_point();
        let table = MultiplierTable::from_multiplier(&multiplier, at).unwrap();
        for (a, d) in [(0, 0), (3, 4), (15, 15), (9, 2)] {
            assert_eq!(
                table.lookup(a, d),
                multiplier.multiply(a, d).unwrap().result
            );
        }
        assert!(table.average_multiply_energy().0 > 0.0);
        assert!(table.average_total_energy().0 > table.average_multiply_energy().0);
        assert!(table.mean_absolute_error() < 1.0);
    }

    #[test]
    fn batched_outcome_grid_is_bit_identical_to_scalar_multiplication() {
        for suite in [
            crate::testsupport::linear_suite(),
            crate::testsupport::pvt_sensitive_suite(),
        ] {
            let multiplier = InSramMultiplier::new(suite, ideal_config()).unwrap();
            for at in [
                multiplier.nominal_operating_point(),
                OperatingPoint {
                    vdd: Volts(0.95),
                    temperature: Celsius(60.0),
                },
            ] {
                let outcomes = multiplier.outcome_grid(at).unwrap();
                let sigmas = multiplier.analog_sigma_grid().unwrap();
                assert_eq!(outcomes.len(), 256);
                for a in 0..=OPERAND_MAX {
                    for d in 0..=OPERAND_MAX {
                        let index = (a * (OPERAND_MAX + 1) + d) as usize;
                        let scalar = multiplier.multiply_at(a, d, at).unwrap();
                        assert_eq!(outcomes[index], scalar, "a = {a}, d = {d}");
                        let scalar_sigma = multiplier.analog_sigma(a, d).unwrap();
                        assert_eq!(
                            sigmas[index].0.to_bits(),
                            scalar_sigma.0.to_bits(),
                            "sigma at a = {a}, d = {d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_table_is_bit_identical_to_scalar_table() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let at = multiplier.nominal_operating_point();
        let batched = MultiplierTable::from_multiplier(&multiplier, at).unwrap();
        let scalar = MultiplierTable::from_multiplier_scalar(&multiplier, at).unwrap();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn analog_grid_exposes_per_column_quantities() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let grid = multiplier
            .analog_grid(multiplier.nominal_operating_point())
            .unwrap();
        // d = 1 uses only column 0, so the combined discharge is delta/4.
        let single = grid.combined_discharge(9, 1);
        assert!(single > 0.0);
        assert_eq!(grid.combined_discharge(9, 0), 0.0);
        // Word lines grow with the DAC code for a linear transfer.
        assert!(grid.word_line(15).0 > grid.word_line(0).0);
    }

    #[test]
    fn exact_table_has_zero_error() {
        let table = MultiplierTable::exact();
        assert_eq!(table.lookup(7, 8), 56);
        assert_eq!(table.mean_absolute_error(), 0.0);
        assert_eq!(table.average_multiply_energy().0, 0.0);
    }

    #[test]
    #[should_panic(expected = "4-bit")]
    fn table_lookup_panics_on_out_of_range_operand() {
        let table = MultiplierTable::exact();
        let _ = table.lookup(16, 0);
    }

    #[test]
    fn supply_shift_changes_the_result() {
        let multiplier = InSramMultiplier::new(linear_suite(), ideal_config()).unwrap();
        let nominal = multiplier.multiply(10, 10).unwrap();
        let low_supply = multiplier
            .multiply_at(
                10,
                10,
                OperatingPoint {
                    vdd: Volts(0.9),
                    temperature: Celsius(25.0),
                },
            )
            .unwrap();
        // With the identity supply model the only effect is the DAC reference,
        // which lowers the word-line voltage and therefore the result.
        assert!(low_supply.result <= nominal.result);
    }
}
