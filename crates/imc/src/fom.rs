//! Figure-of-merit computation and corner selection (paper Eq. 9 / Table I).
//!
//! Out of the explored design corners the paper selects three:
//!
//! * **fom** — maximises `FOM = 1 / (ϵ_mul · E_mul)` (Eq. 9),
//! * **power** — minimum energy per multiplication,
//! * **variation** — smallest analog standard deviation at the maximum
//!   discharge (least impacted by process variation).

use crate::dse::DesignPointResult;
use crate::error::ImcError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the paper's named corners a selection refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CornerKind {
    /// The figure-of-merit optimum.
    Fom,
    /// The minimum-energy corner.
    Power,
    /// The mismatch-robust corner.
    Variation,
}

impl fmt::Display for CornerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CornerKind::Fom => "fom",
            CornerKind::Power => "power",
            CornerKind::Variation => "variation",
        };
        write!(f, "{name}")
    }
}

/// The three selected corners of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectedCorners {
    /// Corner maximising the figure of merit.
    pub fom: DesignPointResult,
    /// Corner with the lowest energy per multiplication.
    pub power: DesignPointResult,
    /// Corner with the smallest σ at maximum discharge.
    pub variation: DesignPointResult,
}

impl SelectedCorners {
    /// Returns the corner of the given kind.
    pub fn corner(&self, kind: CornerKind) -> &DesignPointResult {
        match kind {
            CornerKind::Fom => &self.fom,
            CornerKind::Power => &self.power,
            CornerKind::Variation => &self.variation,
        }
    }
}

/// Selects the *fom*, *power* and *variation* corners from exploration results.
///
/// # Errors
///
/// Returns [`ImcError::EmptyDesignSpace`] when `results` is empty.
pub fn select_corners(results: &[DesignPointResult]) -> Result<SelectedCorners, ImcError> {
    if results.is_empty() {
        return Err(ImcError::EmptyDesignSpace);
    }

    // `total_cmp` keeps the selection deterministic even if a metric is NaN
    // (partial_cmp's Equal fallback made the winner depend on input order).
    let fom = results
        .iter()
        .max_by(|a, b| {
            a.metrics
                .figure_of_merit()
                .total_cmp(&b.metrics.figure_of_merit())
        })
        .copied()
        // optima-lint: allow(R3) -- max_by on a slice guarded non-empty above
        .expect("non-empty results");

    let power = results
        .iter()
        .min_by(|a, b| {
            a.metrics
                .energy_per_multiply
                .0
                .total_cmp(&b.metrics.energy_per_multiply.0)
        })
        .copied()
        // optima-lint: allow(R3) -- min_by on a slice guarded non-empty above
        .expect("non-empty results");

    let variation = results
        .iter()
        .min_by(|a, b| {
            a.metrics
                .sigma_at_max_discharge
                .0
                .total_cmp(&b.metrics.sigma_at_max_discharge.0)
        })
        .copied()
        // optima-lint: allow(R3) -- min_by on a slice guarded non-empty above
        .expect("non-empty results");

    Ok(SelectedCorners {
        fom,
        power,
        variation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::{DesignPoint, DesignSpace, DesignSpaceExplorer};
    use crate::metrics::MultiplierMetrics;
    use crate::testsupport::linear_suite;
    use optima_math::units::{FemtoJoules, Seconds, Volts};

    fn synthetic_result(epsilon: f64, energy: f64, sigma_max: f64, tau0: f64) -> DesignPointResult {
        DesignPointResult {
            point: DesignPoint {
                tau0: Seconds(tau0),
                vdac_zero: Volts(0.3),
                vdac_full_scale: Volts(1.0),
                array: optima_circuit::array::ArrayConfig::default(),
            },
            metrics: MultiplierMetrics {
                epsilon_mul: epsilon,
                rms_error_lsb: epsilon * 1.2,
                max_error_lsb: epsilon * 3.0,
                energy_per_multiply: FemtoJoules(energy),
                energy_per_operation: FemtoJoules(energy + 40.0),
                sigma_at_max_discharge: Volts(sigma_max),
                worst_case_sigma: Volts(sigma_max * 1.1),
            },
        }
    }

    #[test]
    fn selection_picks_the_expected_corners() {
        let results = vec![
            synthetic_result(5.0, 40.0, 0.005, 0.16e-9), // best FOM (1/200)
            synthetic_result(15.0, 30.0, 0.006, 0.18e-9), // lowest energy
            synthetic_result(10.0, 70.0, 0.003, 0.24e-9), // lowest sigma
        ];
        let selected = select_corners(&results).unwrap();
        assert_eq!(selected.fom.point.tau0, Seconds(0.16e-9));
        assert_eq!(selected.power.point.tau0, Seconds(0.18e-9));
        assert_eq!(selected.variation.point.tau0, Seconds(0.24e-9));
        assert_eq!(selected.corner(CornerKind::Fom), &selected.fom);
        assert_eq!(selected.corner(CornerKind::Power), &selected.power);
        assert_eq!(selected.corner(CornerKind::Variation), &selected.variation);
    }

    #[test]
    fn empty_results_are_rejected() {
        assert!(matches!(
            select_corners(&[]),
            Err(ImcError::EmptyDesignSpace)
        ));
    }

    #[test]
    fn selection_from_a_real_exploration_is_consistent() {
        let explorer = DesignSpaceExplorer::new(linear_suite());
        let results = explorer.explore(&DesignSpace::small()).unwrap();
        let selected = select_corners(&results).unwrap();
        // The power corner can never cost more than the fom corner.
        assert!(
            selected.power.metrics.energy_per_multiply.0
                <= selected.fom.metrics.energy_per_multiply.0 + 1e-12
        );
        // The variation corner has the smallest sigma at max discharge.
        for result in &results {
            assert!(
                selected.variation.metrics.sigma_at_max_discharge.0
                    <= result.metrics.sigma_at_max_discharge.0 + 1e-15
            );
        }
    }

    #[test]
    fn corner_kind_display() {
        assert_eq!(CornerKind::Fom.to_string(), "fom");
        assert_eq!(CornerKind::Power.to_string(), "power");
        assert_eq!(CornerKind::Variation.to_string(), "variation");
    }
}
