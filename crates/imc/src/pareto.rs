//! Pareto-front extraction over the (energy, error) plane.
//!
//! The paper argues that the design trade-offs "have to be investigated
//! thoroughly with design-space exploration to find (Pareto-)optimal
//! configurations"; this module provides that extraction for the explored
//! corners.

use crate::dse::DesignPointResult;

/// Returns the subset of `results` that is Pareto-optimal when *minimising*
/// both energy per multiplication and ϵ_mul.
///
/// A corner is kept if no other corner is at least as good in both metrics
/// and strictly better in one.  The returned front is sorted by increasing
/// energy.
pub fn pareto_front(results: &[DesignPointResult]) -> Vec<DesignPointResult> {
    let mut front: Vec<DesignPointResult> = results
        .iter()
        .filter(|candidate| {
            !results.iter().any(|other| {
                let better_or_equal_energy =
                    other.metrics.energy_per_multiply.0 <= candidate.metrics.energy_per_multiply.0;
                let better_or_equal_error =
                    other.metrics.epsilon_mul <= candidate.metrics.epsilon_mul;
                let strictly_better = other.metrics.energy_per_multiply.0
                    < candidate.metrics.energy_per_multiply.0
                    || other.metrics.epsilon_mul < candidate.metrics.epsilon_mul;
                better_or_equal_energy && better_or_equal_error && strictly_better
            })
        })
        .copied()
        .collect();
    front.sort_by(|a, b| {
        a.metrics
            .energy_per_multiply
            .0
            .partial_cmp(&b.metrics.energy_per_multiply.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::DesignPoint;
    use crate::metrics::MultiplierMetrics;
    use optima_math::units::{FemtoJoules, Seconds, Volts};

    fn result(energy: f64, epsilon: f64) -> DesignPointResult {
        DesignPointResult {
            point: DesignPoint {
                tau0: Seconds(0.16e-9),
                vdac_zero: Volts(0.3),
                vdac_full_scale: Volts(1.0),
            },
            metrics: MultiplierMetrics {
                epsilon_mul: epsilon,
                rms_error_lsb: epsilon,
                max_error_lsb: epsilon,
                energy_per_multiply: FemtoJoules(energy),
                energy_per_operation: FemtoJoules(energy),
                sigma_at_max_discharge: Volts(0.005),
                worst_case_sigma: Volts(0.006),
            },
        }
    }

    #[test]
    fn dominated_points_are_removed() {
        let results = vec![
            result(30.0, 10.0),
            result(40.0, 5.0),
            result(50.0, 2.0),
            result(45.0, 12.0), // dominated by (40, 5) and (30, 10)
            result(60.0, 2.5),  // dominated by (50, 2)
        ];
        let front = pareto_front(&results);
        assert_eq!(front.len(), 3);
        assert!((front[0].metrics.energy_per_multiply.0 - 30.0).abs() < 1e-12);
        assert!((front[2].metrics.energy_per_multiply.0 - 50.0).abs() < 1e-12);
    }

    #[test]
    fn front_is_sorted_by_energy_and_monotone_in_error() {
        let results = vec![result(50.0, 2.0), result(30.0, 10.0), result(40.0, 5.0)];
        let front = pareto_front(&results);
        for pair in front.windows(2) {
            assert!(pair[0].metrics.energy_per_multiply.0 <= pair[1].metrics.energy_per_multiply.0);
            assert!(pair[0].metrics.epsilon_mul >= pair[1].metrics.epsilon_mul);
        }
    }

    #[test]
    fn single_and_empty_inputs() {
        assert!(pareto_front(&[]).is_empty());
        let single = vec![result(10.0, 1.0)];
        assert_eq!(pareto_front(&single).len(), 1);
    }

    #[test]
    fn duplicate_points_all_survive() {
        let results = vec![result(10.0, 1.0), result(10.0, 1.0)];
        assert_eq!(pareto_front(&results).len(), 2);
    }
}
