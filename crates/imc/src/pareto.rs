//! Pareto-front extraction over the (energy, error) plane.
//!
//! The paper argues that the design trade-offs "have to be investigated
//! thoroughly with design-space exploration to find (Pareto-)optimal
//! configurations"; this module provides that extraction for the explored
//! corners.

use crate::dse::DesignPointResult;

/// Returns the subset of `results` that is Pareto-optimal when *minimising*
/// both energy per multiplication and ϵ_mul.
///
/// A corner is kept if no other corner is at least as good in both metrics
/// and strictly better in one; exact metric duplicates therefore all
/// survive.  The returned front is sorted by increasing energy.
///
/// The extraction is a sort-then-scan in `O(n log n)`: after sorting by
/// (energy, ϵ_mul) with [`f64::total_cmp`] — so NaN metrics sort
/// deterministically last instead of scrambling the order — every dominator
/// of a point precedes it, and a single pass tracking the lowest ϵ_mul of
/// the cheaper energy groups decides survival.  Points with a NaN metric can
/// neither dominate nor be dominated (IEEE comparisons are false), so they
/// always survive and are appended after the finite front.
pub fn pareto_front(results: &[DesignPointResult]) -> Vec<DesignPointResult> {
    // `+ 0.0` maps -0.0 to +0.0 (and leaves every other value, including
    // NaN, unchanged), so the total_cmp sort order agrees with the IEEE `==`
    // used for group detection: a -0.0/+0.0 energy pair is one group and
    // stays sorted by ϵ_mul within it.
    let metric_key = |r: &DesignPointResult| {
        (
            r.metrics.energy_per_multiply.0 + 0.0,
            r.metrics.epsilon_mul + 0.0,
        )
    };
    let (mut finite, mut with_nan): (Vec<DesignPointResult>, Vec<DesignPointResult>) =
        results.iter().partition(|r| {
            let (energy, epsilon) = metric_key(r);
            !energy.is_nan() && !epsilon.is_nan()
        });
    finite.sort_by(|a, b| {
        let (ea, xa) = metric_key(a);
        let (eb, xb) = metric_key(b);
        ea.total_cmp(&eb).then(xa.total_cmp(&xb))
    });

    let mut front = Vec::new();
    // Lowest ϵ_mul among all strictly-cheaper energy groups: a point with an
    // equal-or-higher ϵ_mul than that is dominated.
    let mut best_prior_epsilon = f64::INFINITY;
    let mut index = 0;
    while index < finite.len() {
        let energy = finite[index].metrics.energy_per_multiply.0;
        // Within an equal-energy group only the lowest-ϵ_mul points survive
        // (an equal-energy, lower-ϵ_mul point strictly dominates); exact
        // duplicates of that minimum all survive.
        let group_epsilon = finite[index].metrics.epsilon_mul;
        let mut end = index;
        while end < finite.len() && finite[end].metrics.energy_per_multiply.0 == energy {
            end += 1;
        }
        // The first group has no cheaper competitor, so it survives even
        // with an infinite ϵ_mul.
        if group_epsilon < best_prior_epsilon || front.is_empty() {
            front.extend(
                finite[index..end]
                    .iter()
                    .take_while(|r| r.metrics.epsilon_mul == group_epsilon)
                    .copied(),
            );
            best_prior_epsilon = group_epsilon;
        }
        index = end;
    }

    with_nan.sort_by(|a, b| {
        let (ea, xa) = metric_key(a);
        let (eb, xb) = metric_key(b);
        ea.total_cmp(&eb).then(xa.total_cmp(&xb))
    });
    front.append(&mut with_nan);
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::DesignPoint;
    use crate::metrics::MultiplierMetrics;
    use optima_math::units::{FemtoJoules, Seconds, Volts};

    fn result(energy: f64, epsilon: f64) -> DesignPointResult {
        DesignPointResult {
            point: DesignPoint {
                tau0: Seconds(0.16e-9),
                vdac_zero: Volts(0.3),
                vdac_full_scale: Volts(1.0),
                array: optima_circuit::array::ArrayConfig::default(),
            },
            metrics: MultiplierMetrics {
                epsilon_mul: epsilon,
                rms_error_lsb: epsilon,
                max_error_lsb: epsilon,
                energy_per_multiply: FemtoJoules(energy),
                energy_per_operation: FemtoJoules(energy),
                sigma_at_max_discharge: Volts(0.005),
                worst_case_sigma: Volts(0.006),
            },
        }
    }

    #[test]
    fn dominated_points_are_removed() {
        let results = vec![
            result(30.0, 10.0),
            result(40.0, 5.0),
            result(50.0, 2.0),
            result(45.0, 12.0), // dominated by (40, 5) and (30, 10)
            result(60.0, 2.5),  // dominated by (50, 2)
        ];
        let front = pareto_front(&results);
        assert_eq!(front.len(), 3);
        assert!((front[0].metrics.energy_per_multiply.0 - 30.0).abs() < 1e-12);
        assert!((front[2].metrics.energy_per_multiply.0 - 50.0).abs() < 1e-12);
    }

    #[test]
    fn front_is_sorted_by_energy_and_monotone_in_error() {
        let results = vec![result(50.0, 2.0), result(30.0, 10.0), result(40.0, 5.0)];
        let front = pareto_front(&results);
        for pair in front.windows(2) {
            assert!(pair[0].metrics.energy_per_multiply.0 <= pair[1].metrics.energy_per_multiply.0);
            assert!(pair[0].metrics.epsilon_mul >= pair[1].metrics.epsilon_mul);
        }
    }

    #[test]
    fn single_and_empty_inputs() {
        assert!(pareto_front(&[]).is_empty());
        let single = vec![result(10.0, 1.0)];
        assert_eq!(pareto_front(&single).len(), 1);
    }

    #[test]
    fn duplicate_points_all_survive() {
        let results = vec![result(10.0, 1.0), result(10.0, 1.0)];
        assert_eq!(pareto_front(&results).len(), 2);
    }

    #[test]
    fn equal_energy_groups_keep_only_their_best_error() {
        let results = vec![
            result(10.0, 2.0),
            result(10.0, 1.0), // dominates (10, 2) via equal energy, lower error
            result(10.0, 1.0), // duplicate of the group minimum — survives
            result(20.0, 1.0), // dominated by (10, 1): cheaper, equal error
        ];
        let front = pareto_front(&results);
        assert_eq!(front.len(), 2);
        for point in &front {
            assert!((point.metrics.energy_per_multiply.0 - 10.0).abs() < 1e-12);
            assert!((point.metrics.epsilon_mul - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nan_metrics_do_not_scramble_the_front() {
        // NaN points can neither dominate nor be dominated: the finite front
        // must be exactly what it would be without them, with the NaN points
        // appended deterministically at the end.
        let results = vec![
            result(30.0, f64::NAN),
            result(50.0, 2.0),
            result(30.0, 10.0),
            result(f64::NAN, 1.0),
            result(40.0, 5.0),
            result(45.0, 12.0), // dominated by (30, 10) and (40, 5)
        ];
        let front = pareto_front(&results);
        assert_eq!(front.len(), 5);
        let finite: Vec<f64> = front
            .iter()
            .filter(|r| {
                !r.metrics.epsilon_mul.is_nan() && !r.metrics.energy_per_multiply.0.is_nan()
            })
            .map(|r| r.metrics.energy_per_multiply.0)
            .collect();
        assert_eq!(finite, vec![30.0, 40.0, 50.0]);
        assert!(front[3].metrics.epsilon_mul.is_nan());
        assert!(front[4].metrics.energy_per_multiply.0.is_nan());
    }

    #[test]
    fn negative_zero_energy_joins_the_positive_zero_group() {
        // IEEE == treats -0.0 and +0.0 as equal energy, so they form one
        // group and only the lower-ϵ_mul point survives.
        let results = vec![result(-0.0, 5.0), result(0.0, 1.0)];
        let front = pareto_front(&results);
        assert_eq!(front.len(), 1);
        assert!((front[0].metrics.epsilon_mul - 1.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_error_survives_only_in_the_cheapest_group() {
        let results = vec![
            result(20.0, f64::INFINITY), // dominated by the cheaper infinite point
            result(10.0, f64::INFINITY),
        ];
        let front = pareto_front(&results);
        assert_eq!(front.len(), 1);
        assert!((front[0].metrics.energy_per_multiply.0 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn large_front_matches_quadratic_reference() {
        // Deterministic pseudo-random inputs; compare the O(n log n) scan
        // against the textbook all-pairs dominance definition.
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let results: Vec<DesignPointResult> = (0..300)
            .map(|_| result((next() * 50.0).round(), (next() * 20.0).round()))
            .collect();
        let front = pareto_front(&results);
        let reference: Vec<&DesignPointResult> = results
            .iter()
            .filter(|candidate| {
                !results.iter().any(|other| {
                    let boe = other.metrics.energy_per_multiply.0
                        <= candidate.metrics.energy_per_multiply.0;
                    let bee = other.metrics.epsilon_mul <= candidate.metrics.epsilon_mul;
                    let strict = other.metrics.energy_per_multiply.0
                        < candidate.metrics.energy_per_multiply.0
                        || other.metrics.epsilon_mul < candidate.metrics.epsilon_mul;
                    boe && bee && strict
                })
            })
            .collect();
        assert_eq!(front.len(), reference.len());
        for point in &reference {
            assert!(front.contains(point));
        }
    }
}
