//! Design-space exploration of the 4-bit in-SRAM multiplier (paper Fig. 7).
//!
//! The design space is spanned by three circuit parameters:
//!
//! * `τ0` — discharge time of the least-significant bit-line,
//! * `V_DAC,0` — DAC output voltage for input code 0,
//! * `V_DAC,FS` — DAC full-scale output voltage.
//!
//! The paper selects 48 design corners and simulates them with OPTIMA; this
//! module reproduces that sweep (and supports arbitrary grids).  Exploration
//! is embarrassingly parallel across corners, so the explorer fans the work
//! out over the error-strict sweep engine of [`optima_core::sweep`]: a
//! failing corner aborts the exploration with [`ImcError::CornerFailed`]
//! naming that corner (corners are never silently dropped), and results come
//! back in corner order — bit-identical for any thread count.

use crate::error::ImcError;
use crate::metrics::{evaluate_multiplier, MultiplierMetrics};
use crate::multiplier::{InSramMultiplier, MultiplierConfig};
use optima_circuit::array::ArrayConfig;
use optima_core::model::suite::ModelSuite;
use optima_core::sweep::par_map_sweep;
use optima_math::units::{Seconds, Volts};
use serde::{Deserialize, Serialize};

/// One corner of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Discharge time of the least-significant bit-line.
    pub tau0: Seconds,
    /// DAC zero-code output voltage.
    pub vdac_zero: Volts,
    /// DAC full-scale output voltage.
    pub vdac_full_scale: Volts,
    /// Array geometry of the corner.
    pub array: ArrayConfig,
}

impl DesignPoint {
    /// Converts the point into a multiplier configuration (linear DAC).
    pub fn to_config(self) -> MultiplierConfig {
        MultiplierConfig::new(self.tau0, self.vdac_zero, self.vdac_full_scale)
            .with_array(self.array)
    }
}

/// One evaluated corner: the point plus its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPointResult {
    /// The evaluated design point.
    pub point: DesignPoint,
    /// Its input-space metrics.
    pub metrics: MultiplierMetrics,
}

/// A rectangular design-space grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// τ0 grid values (seconds).
    pub tau0_values: Vec<f64>,
    /// V_DAC,0 grid values (volts).
    pub vdac_zero_values: Vec<f64>,
    /// V_DAC,FS grid values (volts).
    pub vdac_full_scale_values: Vec<f64>,
    /// Array geometries to co-explore (outermost grid axis).
    pub array_configs: Vec<ArrayConfig>,
}

impl DesignSpace {
    /// The paper's 48-corner grid: τ0 ∈ {0.16, 0.20, 0.24} ns,
    /// V_DAC,0 ∈ {0.3, 0.4, 0.5} V, V_DAC,FS ∈ {0.7, 0.8, 0.9, 1.0} V
    /// (3 × 4 × 4 = 48 corners, counting V_DAC,0 < V_DAC,FS combinations of
    /// the extended zero grid {0.3, 0.4, 0.5, 0.6} used in Fig. 7 left).
    pub fn paper_sweep() -> Self {
        DesignSpace {
            tau0_values: vec![0.16e-9, 0.20e-9, 0.24e-9],
            vdac_zero_values: vec![0.3, 0.4, 0.5, 0.6],
            vdac_full_scale_values: vec![0.7, 0.8, 0.9, 1.0],
            array_configs: vec![ArrayConfig::default()],
        }
    }

    /// A minimal grid for tests and examples (8 corners).
    pub fn small() -> Self {
        DesignSpace {
            tau0_values: vec![0.16e-9, 0.24e-9],
            vdac_zero_values: vec![0.3, 0.45],
            vdac_full_scale_values: vec![0.8, 1.0],
            array_configs: vec![ArrayConfig::default()],
        }
    }

    /// Replaces the geometry axis (builder style), so a sweep can co-explore
    /// array geometries with the electrical parameters.
    pub fn with_arrays(mut self, arrays: Vec<ArrayConfig>) -> Self {
        self.array_configs = arrays;
        self
    }

    /// All corners with `V_DAC,0 < V_DAC,FS` (invalid combinations are
    /// skipped), iterated in grid order: geometry outermost, then `τ0`, then
    /// `V_DAC,0`, then `V_DAC,FS` — with the default single-geometry axis
    /// this is exactly the paper's corner order.
    pub fn corners(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        self.array_configs.iter().flat_map(move |&array| {
            self.tau0_values.iter().flat_map(move |&tau0| {
                self.vdac_zero_values.iter().flat_map(move |&zero| {
                    self.vdac_full_scale_values
                        .iter()
                        .filter(move |&&full_scale| zero < full_scale)
                        .map(move |&full_scale| DesignPoint {
                            tau0: Seconds(tau0),
                            vdac_zero: Volts(zero),
                            vdac_full_scale: Volts(full_scale),
                            array,
                        })
                })
            })
        })
    }

    /// Number of valid corners, computed without materialising them.
    pub fn len(&self) -> usize {
        let valid_dac_pairs: usize = self
            .vdac_zero_values
            .iter()
            .map(|&zero| {
                self.vdac_full_scale_values
                    .iter()
                    .filter(|&&full_scale| zero < full_scale)
                    .count()
            })
            .sum();
        self.array_configs.len() * self.tau0_values.len() * valid_dac_pairs
    }

    /// Returns `true` when the grid produces no valid corners.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Runs the design-space exploration with the OPTIMA models.
#[derive(Debug, Clone)]
pub struct DesignSpaceExplorer {
    models: ModelSuite,
    threads: usize,
}

impl DesignSpaceExplorer {
    /// Creates an explorer using the given fitted models and the automatic
    /// thread count (see [`optima_core::sweep::default_threads`]).
    pub fn new(models: ModelSuite) -> Self {
        DesignSpaceExplorer { models, threads: 0 }
    }

    /// Sets the number of worker threads (builder style, `0` = automatic).
    /// The exploration result is bit-identical for any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Evaluates a single design point.
    ///
    /// # Errors
    ///
    /// Propagates multiplier construction and evaluation errors.
    pub fn evaluate_point(&self, point: DesignPoint) -> Result<DesignPointResult, ImcError> {
        let multiplier = InSramMultiplier::new(self.models.clone(), point.to_config())?;
        let metrics = evaluate_multiplier(&multiplier)?;
        Ok(DesignPointResult { point, metrics })
    }

    /// Explores every corner of the design space, in parallel.
    ///
    /// The sweep is **error-strict**: if any corner fails to evaluate, the
    /// exploration fails with [`ImcError::CornerFailed`] naming the first
    /// (lowest-index) failing corner — corners are never silently dropped,
    /// so the result always covers the complete design space.  Results come
    /// back in [`DesignSpace::corners`] order via index-ordered reassembly
    /// and are bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// * [`ImcError::EmptyDesignSpace`] if the grid has no valid corner.
    /// * [`ImcError::CornerFailed`] if a corner fails to evaluate.
    pub fn explore(&self, space: &DesignSpace) -> Result<Vec<DesignPointResult>, ImcError> {
        let corners: Vec<DesignPoint> = space.corners().collect();
        if corners.is_empty() {
            return Err(ImcError::EmptyDesignSpace);
        }

        par_map_sweep(&corners, self.threads, |_, &point| {
            self.evaluate_point(point)
        })
        .map_err(|err| {
            let point = corners[err.index];
            ImcError::from_sweep(
                err,
                format!(
                    "tau0 = {} ns, V_DAC,0 = {} V, V_DAC,FS = {} V, array {}",
                    point.tau0.0 * 1e9,
                    point.vdac_zero.0,
                    point.vdac_full_scale.0,
                    point.array.describe()
                ),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::linear_suite;

    #[test]
    fn paper_sweep_has_48_corners() {
        // 3 τ0 × (4 V_DAC,0 × 4 V_DAC,FS, all valid because 0.6 < 0.7) = 48.
        assert_eq!(DesignSpace::paper_sweep().len(), 48);
        assert!(!DesignSpace::paper_sweep().is_empty());
    }

    #[test]
    fn invalid_corner_combinations_are_skipped() {
        let space = DesignSpace {
            tau0_values: vec![0.2e-9],
            vdac_zero_values: vec![0.5, 0.9],
            vdac_full_scale_values: vec![0.7, 1.0],
            array_configs: vec![ArrayConfig::default()],
        };
        // (0.5, 0.7), (0.5, 1.0), (0.9, 1.0) are valid; (0.9, 0.7) is not.
        assert_eq!(space.len(), 3);
    }

    #[test]
    fn exploration_returns_metrics_for_every_valid_corner() {
        let explorer = DesignSpaceExplorer::new(linear_suite()).with_threads(2);
        let space = DesignSpace::small();
        let results = explorer.explore(&space).unwrap();
        assert_eq!(results.len(), space.len());
        for result in &results {
            assert!(result.metrics.energy_per_multiply.0 > 0.0);
            assert!(result.metrics.epsilon_mul.is_finite());
        }
    }

    #[test]
    fn exploration_results_are_bit_identical_at_any_thread_count() {
        let space = DesignSpace::small();
        let serial = DesignSpaceExplorer::new(linear_suite())
            .with_threads(1)
            .explore(&space)
            .unwrap();
        for threads in [2, 3, 8] {
            let parallel = DesignSpaceExplorer::new(linear_suite())
                .with_threads(threads)
                .explore(&space)
                .unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // Results follow the corners() grid order.
        let order: Vec<DesignPoint> = space.corners().collect();
        let got: Vec<DesignPoint> = serial.iter().map(|r| r.point).collect();
        assert_eq!(order, got);
    }

    #[test]
    fn corners_iterator_matches_len() {
        for space in [
            DesignSpace::paper_sweep(),
            DesignSpace::small(),
            DesignSpace {
                tau0_values: vec![0.2e-9],
                vdac_zero_values: vec![0.5, 0.9],
                vdac_full_scale_values: vec![0.7, 1.0],
                array_configs: vec![ArrayConfig::default()],
            },
        ] {
            assert_eq!(space.corners().count(), space.len());
        }
    }

    #[test]
    fn failing_corner_is_reported_not_dropped() {
        // τ0 = 0.5 ns makes the MSB column discharge for 4 ns, beyond the
        // 3 ns calibrated time range of the test suite — that corner cannot
        // be evaluated.  The old explorer silently dropped such corners and
        // returned a subset; the sweep must instead fail naming the corner.
        let space = DesignSpace {
            tau0_values: vec![0.16e-9, 0.5e-9],
            vdac_zero_values: vec![0.45],
            vdac_full_scale_values: vec![1.0],
            array_configs: vec![ArrayConfig::default()],
        };
        let first_bad_index = 1; // corners are ordered by tau0, then DAC values
        for threads in [1, 8] {
            let explorer = DesignSpaceExplorer::new(linear_suite()).with_threads(threads);
            match explorer.explore(&space) {
                Err(ImcError::CornerFailed {
                    index,
                    corner,
                    source,
                }) => {
                    assert_eq!(index, first_bad_index, "threads = {threads}");
                    assert!(corner.contains("0.5"), "corner description: {corner}");
                    assert!(matches!(*source, ImcError::Model(_)));
                }
                other => panic!("expected CornerFailed, got {other:?}"),
            }
        }
    }

    #[test]
    fn higher_full_scale_voltage_costs_more_energy() {
        // Fig. 7: a higher V_DAC,FS results in an increase in energy consumption.
        let explorer = DesignSpaceExplorer::new(linear_suite());
        let low = explorer
            .evaluate_point(DesignPoint {
                tau0: Seconds(0.16e-9),
                vdac_zero: Volts(0.45),
                vdac_full_scale: Volts(0.7),
                array: ArrayConfig::default(),
            })
            .unwrap();
        let high = explorer
            .evaluate_point(DesignPoint {
                tau0: Seconds(0.16e-9),
                vdac_zero: Volts(0.45),
                vdac_full_scale: Volts(1.0),
                array: ArrayConfig::default(),
            })
            .unwrap();
        assert!(high.metrics.energy_per_multiply.0 > low.metrics.energy_per_multiply.0);
    }

    #[test]
    fn longer_tau0_costs_more_energy() {
        // Fig. 7: increasing τ0 also leads to higher energy consumption.
        let explorer = DesignSpaceExplorer::new(linear_suite());
        let short = explorer
            .evaluate_point(DesignPoint {
                tau0: Seconds(0.16e-9),
                vdac_zero: Volts(0.45),
                vdac_full_scale: Volts(1.0),
                array: ArrayConfig::default(),
            })
            .unwrap();
        let long = explorer
            .evaluate_point(DesignPoint {
                tau0: Seconds(0.24e-9),
                vdac_zero: Volts(0.45),
                vdac_full_scale: Volts(1.0),
                array: ArrayConfig::default(),
            })
            .unwrap();
        assert!(long.metrics.energy_per_multiply.0 > short.metrics.energy_per_multiply.0);
    }

    #[test]
    fn geometry_axis_multiplies_the_corner_count() {
        let space =
            DesignSpace::small().with_arrays(vec![ArrayConfig::default(), ArrayConfig::int8()]);
        assert_eq!(space.len(), 2 * DesignSpace::small().len());
        assert_eq!(space.corners().count(), space.len());
        // First half explores the paper geometry, second half INT8.
        let corners: Vec<DesignPoint> = space.corners().collect();
        assert!(corners[..corners.len() / 2]
            .iter()
            .all(|c| c.array.is_paper()));
        assert!(corners[corners.len() / 2..]
            .iter()
            .all(|c| c.array == ArrayConfig::int8()));
    }

    #[test]
    fn co_explored_geometries_produce_distinct_metrics() {
        let explorer = DesignSpaceExplorer::new(linear_suite()).with_threads(2);
        let space = DesignSpace {
            tau0_values: vec![0.16e-9],
            vdac_zero_values: vec![0.45],
            vdac_full_scale_values: vec![1.0],
            array_configs: vec![ArrayConfig::default(), ArrayConfig::int8()],
        };
        let results = explorer.explore(&space).unwrap();
        assert_eq!(results.len(), 2);
        // The INT8 corner runs four analog passes per product, so it costs
        // more energy per multiplication than the single-pass INT4 corner.
        assert!(
            results[1].metrics.energy_per_multiply.0 > results[0].metrics.energy_per_multiply.0
        );
        assert!(results[1].metrics.epsilon_mul.is_finite());
    }

    #[test]
    fn empty_design_space_is_an_error() {
        let explorer = DesignSpaceExplorer::new(linear_suite());
        let space = DesignSpace {
            tau0_values: vec![0.2e-9],
            vdac_zero_values: vec![0.9],
            vdac_full_scale_values: vec![0.7],
            array_configs: vec![ArrayConfig::default()],
        };
        assert!(matches!(
            explorer.explore(&space),
            Err(ImcError::EmptyDesignSpace)
        ));
    }
}
