//! Targeted coverage for the numeric foundations the calibration pipeline
//! rests on: `polynomial`, `lsq::polynomial_fit`, `interp` and `stats`.
//!
//! These exercise the modules through the same shapes the OPTIMA calibration
//! uses them in — polynomial fits over voltage/time grids, interpolation of
//! sampled waveforms, RMS-style error metrics — but in isolation, so a
//! regression here points at the foundation rather than the pipeline.

use optima_math::interp;
use optima_math::lsq::{fit_quality, polynomial_fit, weighted_polynomial_fit};
use optima_math::stats;
use optima_math::Polynomial;

// ---------------------------------------------------------------------------
// polynomial

#[test]
fn horner_evaluation_matches_naive_power_expansion() {
    let poly = Polynomial::new(vec![1.5, -2.0, 0.75, 0.1]);
    for i in 0..50 {
        let x = -2.0 + i as f64 * 0.08;
        let naive: f64 = poly
            .coeffs()
            .iter()
            .enumerate()
            .map(|(k, c)| c * x.powi(k as i32))
            .sum();
        assert!((poly.eval(x) - naive).abs() < 1e-12);
    }
}

#[test]
fn derivative_and_antiderivative_are_inverse_up_to_constant() {
    let poly = Polynomial::new(vec![3.0, -1.0, 2.0, 0.5]);
    let roundtrip = poly.derivative().antiderivative();
    // The constant term is lost by differentiation; all other coefficients
    // must survive the round trip.
    assert!((roundtrip.coeffs()[0]).abs() < 1e-12);
    for (a, b) in roundtrip
        .coeffs()
        .iter()
        .skip(1)
        .zip(poly.coeffs().iter().skip(1))
    {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn definite_integral_matches_analytic_value() {
    // ∫₀² (1 + 2x + 3x²) dx = 2 + 4 + 8 = 14.
    let poly = Polynomial::new(vec![1.0, 2.0, 3.0]);
    assert!((poly.integrate(0.0, 2.0) - 14.0).abs() < 1e-12);
    // Swapped bounds flip the sign.
    assert!((poly.integrate(2.0, 0.0) + 14.0).abs() < 1e-12);
}

#[test]
fn compose_linear_shifts_and_scales_the_argument() {
    let poly = Polynomial::new(vec![0.0, 0.0, 1.0]); // x²
    let composed = poly.compose_linear(2.0, -1.0); // (2x - 1)²
    for i in 0..20 {
        let x = -1.0 + i as f64 * 0.1;
        assert!((composed.eval(x) - (2.0 * x - 1.0).powi(2)).abs() < 1e-10);
    }
}

#[test]
fn find_root_locates_discharge_style_crossing() {
    // Shape of a discharge-time lookup: monotone decreasing on the bracket.
    let poly = Polynomial::new(vec![1.0, -0.5]); // 1 - 0.5 x, root at x = 2
    let root = poly.find_root(0.0, 4.0, 1e-12).unwrap();
    assert!((root - 2.0).abs() < 1e-9);
    // Same-sign brackets and inverted/NaN brackets are rejected.
    assert!(poly.find_root(3.0, 4.0, 1e-12).is_err());
    assert!(poly.find_root(4.0, 0.0, 1e-12).is_err());
    assert!(poly.find_root(f64::NAN, 1.0, 1e-12).is_err());
}

// ---------------------------------------------------------------------------
// lsq::polynomial_fit

#[test]
fn quadratic_fit_recovers_exact_coefficients() {
    let truth = Polynomial::new(vec![0.3, -1.2, 0.8]);
    let xs: Vec<f64> = (0..25).map(|i| i as f64 * 0.05).collect();
    let ys = truth.eval_many(&xs);
    let fitted = polynomial_fit(&xs, &ys, 2).unwrap();
    for (a, b) in fitted.coeffs().iter().zip(truth.coeffs()) {
        assert!((a - b).abs() < 1e-9, "fitted {a} vs truth {b}");
    }
}

#[test]
fn noisy_overdetermined_fit_stays_close_to_truth() {
    // Pseudo-noise from a fixed irrational stride keeps the test hermetic.
    let truth = Polynomial::new(vec![1.0, 2.0, -0.5]);
    let xs: Vec<f64> = (0..200).map(|i| i as f64 * 0.01).collect();
    let ys: Vec<f64> = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| truth.eval(x) + 1e-3 * ((i as f64 * 0.754_877).sin()))
        .collect();
    let fitted = polynomial_fit(&xs, &ys, 2).unwrap();
    for i in 0..20 {
        let x = i as f64 * 0.1;
        assert!((fitted.eval(x) - truth.eval(x)).abs() < 5e-3);
    }
}

#[test]
fn fit_rejects_degenerate_inputs() {
    // Fewer samples than coefficients cannot determine the polynomial.
    assert!(polynomial_fit(&[0.0, 1.0], &[1.0, 2.0], 3).is_err());
    // Mismatched lengths are an error, not a panic.
    assert!(polynomial_fit(&[0.0, 1.0, 2.0], &[1.0, 2.0], 1).is_err());
}

#[test]
fn weighted_fit_follows_the_heavily_weighted_samples() {
    // Two clusters of contradictory samples; the weights pick the winner.
    let xs = [0.0, 1.0, 2.0, 0.0, 1.0, 2.0];
    let ys = [0.0, 1.0, 2.0, 1.0, 2.0, 3.0]; // y = x   vs   y = x + 1
    let weights = [100.0, 100.0, 100.0, 0.01, 0.01, 0.01];
    let fitted = weighted_polynomial_fit(&xs, &ys, &weights, 1).unwrap();
    assert!((fitted.eval(1.5) - 1.5).abs() < 0.05, "should track y = x");
}

#[test]
fn fit_quality_reports_perfect_fit_as_zero_error() {
    let reference = [1.0, 2.0, 3.0, 4.0];
    let quality = fit_quality(&reference, &reference).unwrap();
    assert!(quality.rmse.abs() < 1e-12);
    assert!(fit_quality(&reference, &reference[..2]).is_err());
}

// ---------------------------------------------------------------------------
// interp

#[test]
fn linear_interpolation_is_exact_on_linear_data() {
    let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
    for i in 0..89 {
        let x = i as f64 * 0.1;
        let y = interp::linear(&xs, &ys, x).unwrap();
        assert!((y - (3.0 * x - 1.0)).abs() < 1e-12);
    }
}

#[test]
fn linear_interpolation_hits_knots_exactly() {
    let xs = [0.0, 0.4, 1.0, 2.5];
    let ys = [1.0, -2.0, 0.5, 4.0];
    for (x, y) in xs.iter().zip(ys.iter()) {
        assert!((interp::linear(&xs, &ys, *x).unwrap() - y).abs() < 1e-12);
    }
}

#[test]
fn bilinear_interpolation_is_exact_on_bilinear_surfaces() {
    // f(x, y) = 2 + x + 3y + 0.5·x·y is reproduced exactly by bilinear
    // interpolation on any rectangular grid.
    let xs: Vec<f64> = vec![0.0, 1.0, 2.0];
    let ys: Vec<f64> = vec![0.0, 0.5, 1.0, 2.0];
    let f = |x: f64, y: f64| 2.0 + x + 3.0 * y + 0.5 * x * y;
    let values: Vec<Vec<f64>> = xs
        .iter()
        .map(|&x| ys.iter().map(|&y| f(x, y)).collect())
        .collect();
    for i in 0..20 {
        for j in 0..20 {
            let x = i as f64 * 0.1;
            let y = j as f64 * 0.1;
            let z = interp::bilinear(&xs, &ys, &values, x, y).unwrap();
            assert!((z - f(x, y)).abs() < 1e-10, "at ({x}, {y})");
        }
    }
}

// ---------------------------------------------------------------------------
// stats

#[test]
fn moments_match_hand_computed_values() {
    let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
    assert!((stats::mean(&data) - 5.0).abs() < 1e-12);
    assert!((stats::variance(&data) - 4.0).abs() < 1e-12);
    assert!((stats::std_dev(&data) - 2.0).abs() < 1e-12);
    // Sample (n-1) variance of the same data: 32 / 7.
    assert!((stats::sample_variance(&data) - 32.0 / 7.0).abs() < 1e-12);
}

#[test]
fn rms_and_rmse_agree_on_shifted_data() {
    let reference = [1.0, 2.0, 3.0];
    let predicted = [1.5, 2.5, 3.5];
    // Constant 0.5 offset -> RMSE exactly 0.5.
    assert!((stats::rmse(&reference, &predicted) - 0.5).abs() < 1e-12);
    assert!((stats::mae(&reference, &predicted) - 0.5).abs() < 1e-12);
    // RMS of the residual vector equals the RMSE.
    let residuals: Vec<f64> = reference
        .iter()
        .zip(predicted.iter())
        .map(|(a, b)| a - b)
        .collect();
    assert!((stats::rms(&residuals) - stats::rmse(&reference, &predicted)).abs() < 1e-12);
}

#[test]
fn percentiles_and_median_are_order_statistics() {
    let data = [9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0, 5.0];
    assert!((stats::median(&data) - 5.0).abs() < 1e-12);
    assert!((stats::percentile(&data, 0.0) - 1.0).abs() < 1e-12);
    assert!((stats::percentile(&data, 100.0) - 9.0).abs() < 1e-12);
    assert!(stats::min(&data) <= stats::median(&data));
    assert!(stats::median(&data) <= stats::max(&data));
}

#[test]
fn correlation_detects_perfect_linear_relationships() {
    let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
    let pos: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
    let neg: Vec<f64> = xs.iter().map(|x| -0.5 * x + 3.0).collect();
    assert!((stats::correlation(&xs, &pos) - 1.0).abs() < 1e-12);
    assert!((stats::correlation(&xs, &neg) + 1.0).abs() < 1e-12);
}

#[test]
fn histogram_bins_partition_the_range() {
    let mut histogram = stats::Histogram::new(0.0, 1.0, 4);
    histogram.extend([0.1, 0.3, 0.6, 0.9, -0.5, 1.5]);
    assert_eq!(histogram.counts().iter().sum::<u64>(), 4);
    assert_eq!(histogram.underflow(), 1);
    assert_eq!(histogram.overflow(), 1);
    assert_eq!(histogram.total_count(), 6);
}
