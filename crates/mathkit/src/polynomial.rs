//! Dense univariate polynomials.
//!
//! The OPTIMA discharge and energy models (paper Eqs. 3–8) are built from
//! low-degree polynomials `p_n(X)`; this module provides the polynomial type
//! those models store and evaluate.

use crate::error::MathError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense univariate polynomial with `f64` coefficients.
///
/// Coefficients are stored in ascending-power order:
/// `coeffs[k]` multiplies `x^k`.
///
/// # Example
///
/// ```rust
/// use optima_math::Polynomial;
///
/// // 1 + 2x + 3x^2
/// let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
/// assert_eq!(p.eval(2.0), 17.0);
/// assert_eq!(p.degree(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients in ascending-power order.
    ///
    /// An empty coefficient list produces the zero polynomial.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut poly = Polynomial { coeffs };
        poly.trim();
        poly
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: vec![0.0] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Polynomial { coeffs: vec![c] }
    }

    /// The identity polynomial `x`.
    pub fn identity() -> Self {
        Polynomial {
            coeffs: vec![0.0, 1.0],
        }
    }

    /// Builds the monomial `c * x^power`.
    pub fn monomial(c: f64, power: usize) -> Self {
        let mut coeffs = vec![0.0; power + 1];
        coeffs[power] = c;
        Polynomial::new(coeffs)
    }

    /// Returns the coefficients in ascending-power order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree of the polynomial (the zero polynomial has degree 0).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Returns `true` if every coefficient is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0.0)
    }

    /// Evaluates the polynomial at `x` using Horner's scheme.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs
            .iter()
            .rev()
            .fold(0.0, |acc, &c| acc.mul_add(x, c))
    }

    /// Evaluates the polynomial at every point of `xs`.
    ///
    /// Bit-identical to calling [`Polynomial::eval`] per point (see
    /// [`Polynomial::eval_many_into`]).
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; xs.len()];
        self.eval_many_into(xs, &mut out);
        out
    }

    /// Evaluates the polynomial at every point of `xs` into `out`.
    ///
    /// This is the batched Horner kernel of the analog hot path: points are
    /// processed in blocks of [`Polynomial::EVAL_LANES`] with the coefficient
    /// loop outermost, so the per-point accumulator updates vectorise across
    /// the block.  Every point still performs exactly the same `mul_add`
    /// sequence as [`Polynomial::eval`] (same order, same seed value), so the
    /// results are bit-identical to the scalar path for all inputs,
    /// including NaN and infinities.
    ///
    /// # Panics
    ///
    /// Panics when `xs` and `out` have different lengths.
    // The batched Horner kernels evaluate millions of points per DSE sweep;
    // R4 forbids allocation in this region.
    // optima-lint: hot
    pub fn eval_many_into(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(
            xs.len(),
            out.len(),
            "eval_many_into needs one output slot per point"
        );
        let mut chunks = xs.chunks_exact(Self::EVAL_LANES);
        let mut out_chunks = out.chunks_exact_mut(Self::EVAL_LANES);
        for (chunk, out_chunk) in (&mut chunks).zip(&mut out_chunks) {
            let mut acc = [0.0_f64; Self::EVAL_LANES];
            for &c in self.coeffs.iter().rev() {
                for (a, &x) in acc.iter_mut().zip(chunk) {
                    *a = a.mul_add(x, c);
                }
            }
            out_chunk.copy_from_slice(&acc);
        }
        for (o, &x) in out_chunks
            .into_remainder()
            .iter_mut()
            .zip(chunks.remainder())
        {
            *o = self.eval(x);
        }
    }

    /// Evaluates the polynomial at every point of `xs`, overwriting each
    /// point with its value (the allocation-free variant used by the batched
    /// model fills).  Bit-identical to the scalar path, like
    /// [`Polynomial::eval_many_into`].
    pub fn eval_many_in_place(&self, xs: &mut [f64]) {
        let mut chunks = xs.chunks_exact_mut(Self::EVAL_LANES);
        for chunk in &mut chunks {
            let mut acc = [0.0_f64; Self::EVAL_LANES];
            for &c in self.coeffs.iter().rev() {
                for (a, &x) in acc.iter_mut().zip(chunk.iter()) {
                    *a = a.mul_add(x, c);
                }
            }
            chunk.copy_from_slice(&acc);
        }
        for x in chunks.into_remainder() {
            *x = self.eval(*x);
        }
    }
    // optima-lint: end-hot

    /// Block width of the batched Horner evaluation.
    pub const EVAL_LANES: usize = 8;

    /// Returns the first derivative as a new polynomial.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &c)| c * k as f64)
            .collect();
        Polynomial::new(coeffs)
    }

    /// Returns the antiderivative with integration constant zero.
    pub fn antiderivative(&self) -> Polynomial {
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + 1);
        coeffs.push(0.0);
        for (k, &c) in self.coeffs.iter().enumerate() {
            coeffs.push(c / (k as f64 + 1.0));
        }
        Polynomial::new(coeffs)
    }

    /// Definite integral over `[a, b]`.
    pub fn integrate(&self, a: f64, b: f64) -> f64 {
        let anti = self.antiderivative();
        anti.eval(b) - anti.eval(a)
    }

    /// Scales every coefficient by `factor`.
    pub fn scale(&self, factor: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&c| c * factor).collect())
    }

    /// Composes `self` with a linear change of variable, returning `p(a*x + b)`.
    pub fn compose_linear(&self, a: f64, b: f64) -> Polynomial {
        // Horner over polynomials: result = c_n; result = result*(a x + b) + c_{n-1}; ...
        let inner = Polynomial::new(vec![b, a]);
        let mut result = Polynomial::zero();
        for &c in self.coeffs.iter().rev() {
            result = &(&result * &inner) + &Polynomial::constant(c);
        }
        result
    }

    /// Finds a root of the polynomial in `[lo, hi]` by bisection, if the sign changes.
    ///
    /// Used e.g. to invert monotone discharge curves (find the time at which a
    /// bit-line crosses a threshold voltage).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] when `lo >= hi` or the
    /// polynomial has the same sign at both interval ends.
    pub fn find_root(&self, lo: f64, hi: f64, tolerance: f64) -> Result<f64, MathError> {
        // `partial_cmp` keeps the NaN-rejecting behaviour of `!(lo < hi)`.
        // optima-lint: allow(R1) -- a NaN bracket must fail, so None counts as invalid here
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
            return Err(MathError::InvalidArgument {
                context: format!("invalid bracket [{lo}, {hi}]"),
            });
        }
        let mut a = lo;
        let mut b = hi;
        let mut fa = self.eval(a);
        let fb = self.eval(b);
        if fa == 0.0 {
            return Ok(a);
        }
        if fb == 0.0 {
            return Ok(b);
        }
        if fa.signum() == fb.signum() {
            return Err(MathError::InvalidArgument {
                context: "polynomial does not change sign over the bracket".to_string(),
            });
        }
        for _ in 0..200 {
            let mid = 0.5 * (a + b);
            let fm = self.eval(mid);
            if fm.abs() < tolerance || (b - a) < tolerance {
                return Ok(mid);
            }
            if fa.signum() == fm.signum() {
                a = mid;
                fa = fm;
            } else {
                b = mid;
            }
        }
        Ok(0.5 * (a + b))
    }

    fn trim(&mut self) {
        while self.coeffs.len() > 1 && self.coeffs.last() == Some(&0.0) {
            self.coeffs.pop();
        }
        if self.coeffs.is_empty() {
            self.coeffs.push(0.0);
        }
    }
}

impl Default for Polynomial {
    fn default() -> Self {
        Polynomial::zero()
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 && self.coeffs.len() > 1 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            match k {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}*x")?,
                _ => write!(f, "{c}*x^{k}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;

    fn add(self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (k, slot) in coeffs.iter_mut().enumerate() {
            *slot = self.coeffs.get(k).copied().unwrap_or(0.0)
                + rhs.coeffs.get(k).copied().unwrap_or(0.0);
        }
        Polynomial::new(coeffs)
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;

    fn sub(self, rhs: &Polynomial) -> Polynomial {
        self + &(-rhs.clone())
    }
}

impl Neg for Polynomial {
    type Output = Polynomial;

    fn neg(self) -> Polynomial {
        Polynomial::new(self.coeffs.into_iter().map(|c| -c).collect())
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;

    fn mul(self, rhs: &Polynomial) -> Polynomial {
        if self.is_zero() || rhs.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horner_matches_naive_evaluation() {
        let p = Polynomial::new(vec![1.0, -2.0, 0.5, 3.0]);
        for x in [-2.0, -0.5, 0.0, 0.3, 1.7] {
            let naive = 1.0 - 2.0 * x + 0.5 * x * x + 3.0 * x * x * x;
            assert!((p.eval(x) - naive).abs() < 1e-12);
        }
    }

    #[test]
    fn trailing_zero_coefficients_are_trimmed() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn derivative_and_antiderivative_are_inverse() {
        let p = Polynomial::new(vec![4.0, 3.0, 2.0, 1.0]);
        let back = p.antiderivative().derivative();
        assert_eq!(back, p);
    }

    #[test]
    fn definite_integral_of_quadratic() {
        // integral of x^2 over [0, 3] = 9
        let p = Polynomial::monomial(1.0, 2);
        assert!((p.integrate(0.0, 3.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn addition_and_multiplication() {
        let a = Polynomial::new(vec![1.0, 1.0]); // 1 + x
        let b = Polynomial::new(vec![-1.0, 1.0]); // -1 + x
        let sum = &a + &b;
        assert_eq!(sum.coeffs(), &[0.0, 2.0]);
        let prod = &a * &b; // x^2 - 1
        assert_eq!(prod.coeffs(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn compose_linear_shifts_argument() {
        // p(x) = x^2, p(2x + 1) = 4x^2 + 4x + 1
        let p = Polynomial::monomial(1.0, 2);
        let q = p.compose_linear(2.0, 1.0);
        assert_eq!(q.coeffs(), &[1.0, 4.0, 4.0]);
    }

    #[test]
    fn root_finding_by_bisection() {
        // x^2 - 2 has a root at sqrt(2)
        let p = Polynomial::new(vec![-2.0, 0.0, 1.0]);
        let root = p.find_root(0.0, 2.0, 1e-10).expect("root exists");
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-8);
    }

    #[test]
    fn root_finding_rejects_bad_bracket() {
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]); // x^2 + 1 > 0
        assert!(p.find_root(-1.0, 1.0, 1e-10).is_err());
        assert!(p.find_root(1.0, 1.0, 1e-10).is_err());
    }

    #[test]
    fn display_formats_nonzero_terms() {
        let p = Polynomial::new(vec![1.0, 0.0, 2.0]);
        assert_eq!(p.to_string(), "1 + 2*x^2");
        assert_eq!(Polynomial::zero().to_string(), "0");
    }

    #[test]
    fn zero_polynomial_properties() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(123.0), 0.0);
        assert_eq!(z.derivative(), Polynomial::zero());
    }

    #[test]
    fn eval_many_matches_eval() {
        let p = Polynomial::new(vec![0.5, 1.5]);
        let xs = [0.0, 1.0, 2.0];
        assert_eq!(p.eval_many(&xs), vec![0.5, 2.0, 3.5]);
    }

    #[test]
    fn batched_eval_is_bit_identical_to_scalar_eval() {
        // Lengths around the block width exercise both the blocked kernel
        // and the remainder loop.
        let p = Polynomial::new(vec![0.17, -2.3, 0.031, 1.9, -0.44]);
        for len in [0, 1, 7, 8, 9, 16, 33] {
            let xs: Vec<f64> = (0..len).map(|i| -1.3 + 0.37 * i as f64).collect();
            let expected: Vec<f64> = xs.iter().map(|&x| p.eval(x)).collect();
            let batched = p.eval_many(&xs);
            assert_eq!(
                expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                batched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len = {len}"
            );
            let mut in_place = xs.clone();
            p.eval_many_in_place(&mut in_place);
            assert_eq!(batched, in_place, "len = {len}");
        }
    }

    #[test]
    fn batched_eval_propagates_non_finite_inputs_like_scalar_eval() {
        let constant = Polynomial::constant(2.5);
        let xs = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1.0];
        let batched = constant.eval_many(&xs);
        for (&x, &v) in xs.iter().zip(&batched) {
            let scalar = constant.eval(x);
            assert_eq!(scalar.to_bits(), v.to_bits(), "x = {x}");
        }
    }

    #[test]
    #[should_panic(expected = "one output slot per point")]
    fn eval_many_into_rejects_mismatched_lengths() {
        let p = Polynomial::identity();
        let mut out = [0.0; 2];
        p.eval_many_into(&[1.0, 2.0, 3.0], &mut out);
    }
}
