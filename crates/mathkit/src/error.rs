//! Error type shared by all numeric routines in this crate.

use std::fmt;

/// Error returned by the numeric routines of `optima-math`.
///
/// # Example
///
/// ```rust
/// use optima_math::lsq::polynomial_fit;
/// use optima_math::MathError;
///
/// // Fitting a degree-3 polynomial to two samples is under-determined.
/// let err = polynomial_fit(&[0.0, 1.0], &[0.0, 1.0], 3).unwrap_err();
/// assert!(matches!(err, MathError::InsufficientData { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MathError {
    /// Two inputs that must share a length (e.g. `xs` and `ys` of a fit) do not.
    DimensionMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// A matrix operation received a shape it cannot operate on.
    ShapeMismatch {
        /// Human-readable description of the offending shapes.
        context: String,
    },
    /// The linear system is singular (or numerically so) and cannot be solved.
    SingularMatrix,
    /// A fit was requested with fewer samples than free coefficients.
    InsufficientData {
        /// Number of samples provided.
        samples: usize,
        /// Number of coefficients that would have to be determined.
        coefficients: usize,
    },
    /// An argument was outside its valid domain (negative degree, empty slice, NaN, …).
    InvalidArgument {
        /// Human-readable description of the violated requirement.
        context: String,
    },
    /// An adaptive ODE integration could not reach the requested tolerance.
    OdeStepFailure {
        /// Time at which step-size control gave up.
        time: f64,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            MathError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            MathError::SingularMatrix => write!(f, "matrix is singular to working precision"),
            MathError::InsufficientData {
                samples,
                coefficients,
            } => write!(
                f,
                "insufficient data: {samples} samples for {coefficients} coefficients"
            ),
            MathError::InvalidArgument { context } => write!(f, "invalid argument: {context}"),
            MathError::OdeStepFailure { time } => {
                write!(f, "ode step size underflow at t = {time}")
            }
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = MathError::DimensionMismatch { left: 3, right: 4 };
        let text = err.to_string();
        assert!(text.contains('3') && text.contains('4'));
        assert!(text.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }

    #[test]
    fn singular_matrix_display() {
        assert_eq!(
            MathError::SingularMatrix.to_string(),
            "matrix is singular to working precision"
        );
    }
}
