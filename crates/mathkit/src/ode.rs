//! Ordinary-differential-equation integrators.
//!
//! The golden-reference circuit simulator in `optima-circuit` integrates the
//! bit-line node equation `C · dV/dt = −I(V, t)` over time.  The paper's whole
//! point is that this (slow but accurate) integration can be replaced by
//! cheap polynomial models; we therefore need a solid reference integrator to
//! (a) produce calibration data and (b) measure the speed-up against.

use crate::error::MathError;
use serde::{Deserialize, Serialize};

/// A single `(time, state)` sample of an ODE solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OdeSample {
    /// Time of the sample.
    pub time: f64,
    /// State vector at that time.
    pub state: Vec<f64>,
}

/// Full trajectory produced by an integrator.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OdeSolution {
    /// Chronologically ordered samples, the first being the initial condition.
    pub samples: Vec<OdeSample>,
    /// Number of derivative evaluations performed (a proxy for simulation cost).
    pub derivative_evaluations: usize,
}

impl OdeSolution {
    /// Times of all samples.
    pub fn times(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.time).collect()
    }

    /// The `i`-th state component over time.
    ///
    /// # Panics
    ///
    /// Panics if any sample has fewer than `i + 1` components.
    pub fn component(&self, i: usize) -> Vec<f64> {
        self.samples.iter().map(|s| s.state[i]).collect()
    }

    /// The final state, if any integration step was produced.
    pub fn final_state(&self) -> Option<&[f64]> {
        self.samples.last().map(|s| s.state.as_slice())
    }
}

/// Integrates `dy/dt = f(t, y)` with the classic fixed-step fourth-order
/// Runge–Kutta method.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] if `t_end <= t_start`, `steps == 0`
/// or the initial state is empty.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), optima_math::MathError> {
/// use optima_math::ode::rk4;
///
/// // dy/dt = -y, y(0) = 1  =>  y(1) = e^-1
/// let sol = rk4(|_t, y, dy| dy[0] = -y[0], &[1.0], 0.0, 1.0, 100)?;
/// let y_end = sol.final_state().expect("solution exists")[0];
/// assert!((y_end - (-1.0f64).exp()).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn rk4<F>(
    mut f: F,
    y0: &[f64],
    t_start: f64,
    t_end: f64,
    steps: usize,
) -> Result<OdeSolution, MathError>
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    if t_end <= t_start {
        return Err(MathError::InvalidArgument {
            context: format!("integration interval [{t_start}, {t_end}] is empty"),
        });
    }
    if steps == 0 {
        return Err(MathError::InvalidArgument {
            context: "rk4 requires at least one step".to_string(),
        });
    }
    if y0.is_empty() {
        return Err(MathError::InvalidArgument {
            context: "initial state must not be empty".to_string(),
        });
    }

    let n = y0.len();
    let h = (t_end - t_start) / steps as f64;
    let mut y = y0.to_vec();
    let mut t = t_start;
    let mut evals = 0usize;

    let mut samples = Vec::with_capacity(steps + 1);
    samples.push(OdeSample {
        time: t,
        state: y.clone(),
    });

    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut scratch = vec![0.0; n];

    for _ in 0..steps {
        f(t, &y, &mut k1);
        for i in 0..n {
            scratch[i] = y[i] + 0.5 * h * k1[i];
        }
        f(t + 0.5 * h, &scratch, &mut k2);
        for i in 0..n {
            scratch[i] = y[i] + 0.5 * h * k2[i];
        }
        f(t + 0.5 * h, &scratch, &mut k3);
        for i in 0..n {
            scratch[i] = y[i] + h * k3[i];
        }
        f(t + h, &scratch, &mut k4);
        evals += 4;

        for i in 0..n {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h;
        samples.push(OdeSample {
            time: t,
            state: y.clone(),
        });
    }

    Ok(OdeSolution {
        samples,
        derivative_evaluations: evals,
    })
}

/// Integrates `dy/dt = f(t, y)` with an adaptive Runge–Kutta–Fehlberg (RK45)
/// scheme, adjusting the step size to keep the local error below
/// `tolerance`.
///
/// # Errors
///
/// * [`MathError::InvalidArgument`] for an empty interval, empty state or
///   non-positive tolerance.
/// * [`MathError::OdeStepFailure`] if the step size underflows before reaching
///   `t_end` (stiff or discontinuous right-hand side).
pub fn rk45<F>(
    mut f: F,
    y0: &[f64],
    t_start: f64,
    t_end: f64,
    tolerance: f64,
) -> Result<OdeSolution, MathError>
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    if t_end <= t_start {
        return Err(MathError::InvalidArgument {
            context: format!("integration interval [{t_start}, {t_end}] is empty"),
        });
    }
    if y0.is_empty() {
        return Err(MathError::InvalidArgument {
            context: "initial state must not be empty".to_string(),
        });
    }
    if tolerance <= 0.0 || !tolerance.is_finite() {
        return Err(MathError::InvalidArgument {
            context: "tolerance must be positive and finite".to_string(),
        });
    }

    let n = y0.len();
    let mut t = t_start;
    let mut y = y0.to_vec();
    let mut h = (t_end - t_start) / 100.0;
    let h_min = (t_end - t_start) * 1e-12;
    let mut evals = 0usize;

    let mut samples = vec![OdeSample {
        time: t,
        state: y.clone(),
    }];

    let mut k = vec![vec![0.0; n]; 6];
    let mut scratch = vec![0.0; n];

    // Fehlberg coefficients.
    const A: [f64; 6] = [0.0, 0.25, 3.0 / 8.0, 12.0 / 13.0, 1.0, 0.5];
    const B: [[f64; 5]; 6] = [
        [0.0, 0.0, 0.0, 0.0, 0.0],
        [0.25, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
        [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
        [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
        [
            -8.0 / 27.0,
            2.0,
            -3544.0 / 2565.0,
            1859.0 / 4104.0,
            -11.0 / 40.0,
        ],
    ];
    const C4: [f64; 6] = [
        25.0 / 216.0,
        0.0,
        1408.0 / 2565.0,
        2197.0 / 4104.0,
        -0.2,
        0.0,
    ];
    const C5: [f64; 6] = [
        16.0 / 135.0,
        0.0,
        6656.0 / 12825.0,
        28561.0 / 56430.0,
        -9.0 / 50.0,
        2.0 / 55.0,
    ];

    while t < t_end {
        if h < h_min {
            return Err(MathError::OdeStepFailure { time: t });
        }
        if t + h > t_end {
            h = t_end - t;
        }

        for stage in 0..6 {
            for i in 0..n {
                let mut acc = y[i];
                for (prev, b) in B[stage].iter().enumerate().take(stage) {
                    acc += h * b * k[prev][i];
                }
                scratch[i] = acc;
            }
            // Split borrow: the closure writes to k[stage] only.
            let (_, rest) = k.split_at_mut(stage);
            f(t + A[stage] * h, &scratch, &mut rest[0]);
            evals += 1;
        }

        // 4th- and 5th-order estimates and their difference (local error).
        let mut error: f64 = 0.0;
        let mut y5 = vec![0.0; n];
        for i in 0..n {
            let mut acc4 = y[i];
            let mut acc5 = y[i];
            for stage in 0..6 {
                acc4 += h * C4[stage] * k[stage][i];
                acc5 += h * C5[stage] * k[stage][i];
            }
            y5[i] = acc5;
            error = error.max((acc5 - acc4).abs());
        }

        if error <= tolerance || h <= h_min * 2.0 {
            t += h;
            y = y5;
            samples.push(OdeSample {
                time: t,
                state: y.clone(),
            });
        }

        // Step-size controller (with safety factor and growth clamps).
        let scale = if error == 0.0 {
            2.0
        } else {
            (0.9 * (tolerance / error).powf(0.2)).clamp(0.2, 2.0)
        };
        h *= scale;
    }

    Ok(OdeSolution {
        samples,
        derivative_evaluations: evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk4_solves_exponential_decay() {
        let sol = rk4(|_t, y, dy| dy[0] = -2.0 * y[0], &[1.0], 0.0, 1.0, 200).unwrap();
        let y_end = sol.final_state().unwrap()[0];
        assert!((y_end - (-2.0f64).exp()).abs() < 1e-9);
        assert_eq!(sol.samples.len(), 201);
        assert_eq!(sol.derivative_evaluations, 800);
    }

    #[test]
    fn rk4_solves_harmonic_oscillator() {
        // y'' = -y as a 2-state system; after 2π the state returns to the start.
        let two_pi = 2.0 * std::f64::consts::PI;
        let sol = rk4(
            |_t, y, dy| {
                dy[0] = y[1];
                dy[1] = -y[0];
            },
            &[1.0, 0.0],
            0.0,
            two_pi,
            2000,
        )
        .unwrap();
        let end = sol.final_state().unwrap();
        assert!((end[0] - 1.0).abs() < 1e-6);
        assert!(end[1].abs() < 1e-6);
    }

    #[test]
    fn rk4_validates_arguments() {
        assert!(rk4(|_t, _y, _dy| {}, &[1.0], 1.0, 0.0, 10).is_err());
        assert!(rk4(|_t, _y, _dy| {}, &[1.0], 0.0, 1.0, 0).is_err());
        assert!(rk4(|_t, _y, _dy| {}, &[], 0.0, 1.0, 10).is_err());
    }

    #[test]
    fn rk45_matches_analytic_solution() {
        let sol = rk45(|t, _y, dy| dy[0] = t.cos(), &[0.0], 0.0, 3.0, 1e-9).unwrap();
        let y_end = sol.final_state().unwrap()[0];
        assert!((y_end - 3.0f64.sin()).abs() < 1e-6);
        // Adaptive integration should need far fewer evaluations than a fine fixed grid.
        assert!(sol.derivative_evaluations < 4000);
    }

    #[test]
    fn rk45_reaches_exact_end_time() {
        let sol = rk45(|_t, y, dy| dy[0] = -y[0], &[1.0], 0.0, 2.5, 1e-8).unwrap();
        let last_t = sol.samples.last().unwrap().time;
        assert!((last_t - 2.5).abs() < 1e-12);
    }

    #[test]
    fn rk45_validates_arguments() {
        assert!(rk45(|_t, _y, _dy| {}, &[1.0], 0.0, 1.0, 0.0).is_err());
        assert!(rk45(|_t, _y, _dy| {}, &[1.0], 0.0, 1.0, -1.0).is_err());
        assert!(rk45(|_t, _y, _dy| {}, &[], 0.0, 1.0, 1e-6).is_err());
        assert!(rk45(|_t, _y, _dy| {}, &[1.0], 1.0, 1.0, 1e-6).is_err());
    }

    #[test]
    fn solution_accessors() {
        let sol = rk4(|_t, y, dy| dy[0] = -y[0], &[1.0], 0.0, 1.0, 4).unwrap();
        assert_eq!(sol.times().len(), 5);
        assert_eq!(sol.component(0).len(), 5);
        assert!(sol.component(0)[4] < 1.0);
    }
}
