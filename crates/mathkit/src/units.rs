//! SI-unit newtypes used throughout the OPTIMA workspace.
//!
//! Analog circuit code juggles many `f64` quantities (volts, seconds,
//! femtojoules, degrees Celsius, farads).  Mixing them up is a classic source
//! of silent bugs, so the workspace passes them around as newtypes and only
//! unwraps to raw `f64` at computation boundaries.
//!
//! ```rust
//! use optima_math::units::{Volts, MilliVolts};
//!
//! let swing = Volts(0.12);
//! let in_mv: MilliVolts = swing.to_millivolts();
//! assert!((in_mv.0 - 120.0).abs() < 1e-9);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the numeric plumbing shared by all unit newtypes.
macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw `f64` value.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value with the same unit.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` (mirrors [`f64::clamp`]).
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` when the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit_newtype!(
    /// Electric potential in volts.
    Volts,
    "V"
);
unit_newtype!(
    /// Electric potential in millivolts.
    MilliVolts,
    "mV"
);
unit_newtype!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit_newtype!(
    /// Time in nanoseconds.
    NanoSeconds,
    "ns"
);
unit_newtype!(
    /// Temperature in degrees Celsius.
    Celsius,
    "degC"
);
unit_newtype!(
    /// Energy in joules.
    Joules,
    "J"
);
unit_newtype!(
    /// Energy in femtojoules.
    FemtoJoules,
    "fJ"
);
unit_newtype!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit_newtype!(
    /// Electric current in amperes.
    Amperes,
    "A"
);

impl Volts {
    /// Converts to millivolts.
    pub fn to_millivolts(self) -> MilliVolts {
        MilliVolts(self.0 * 1e3)
    }
}

impl MilliVolts {
    /// Converts to volts.
    pub fn to_volts(self) -> Volts {
        Volts(self.0 * 1e-3)
    }
}

impl Seconds {
    /// Converts to nanoseconds.
    pub fn to_nanoseconds(self) -> NanoSeconds {
        NanoSeconds(self.0 * 1e9)
    }
}

impl NanoSeconds {
    /// Converts to seconds.
    pub fn to_seconds(self) -> Seconds {
        Seconds(self.0 * 1e-9)
    }
}

impl Joules {
    /// Converts to femtojoules.
    pub fn to_femtojoules(self) -> FemtoJoules {
        FemtoJoules(self.0 * 1e15)
    }

    /// Converts to picojoules (returned as a raw `f64`).
    pub fn to_picojoules(self) -> f64 {
        self.0 * 1e12
    }
}

impl FemtoJoules {
    /// Converts to joules.
    pub fn to_joules(self) -> Joules {
        Joules(self.0 * 1e-15)
    }

    /// Converts to picojoules (returned as a raw `f64`).
    pub fn to_picojoules(self) -> f64 {
        self.0 * 1e-3
    }
}

impl Celsius {
    /// Converts to kelvin (returned as raw `f64` since no Kelvin newtype is needed downstream).
    pub fn to_kelvin(self) -> f64 {
        self.0 + 273.15
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let v = Volts(0.735);
        assert!((v.to_millivolts().to_volts().0 - 0.735).abs() < 1e-12);
        let t = Seconds(1.6e-10);
        assert!((t.to_nanoseconds().to_seconds().0 - 1.6e-10).abs() < 1e-22);
        let e = Joules(1.05e-12);
        assert!((e.to_femtojoules().to_joules().0 - 1.05e-12).abs() < 1e-24);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Volts(1.0);
        let b = Volts(0.4);
        assert_eq!((a - b).0, 0.6);
        assert_eq!((a + b).0, 1.4);
        assert_eq!((a * 2.0).0, 2.0);
        assert_eq!(a / b, 2.5);
        assert_eq!((-b).0, -0.4);
    }

    #[test]
    fn sum_of_energies() {
        let total: FemtoJoules = vec![FemtoJoules(10.0), FemtoJoules(20.0), FemtoJoules(14.0)]
            .into_iter()
            .sum();
        assert!((total.0 - 44.0).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit_suffix() {
        assert_eq!(Volts(1.0).to_string(), "1 V");
        assert_eq!(Celsius(27.0).to_string(), "27 degC");
    }

    #[test]
    fn celsius_to_kelvin() {
        assert!((Celsius(26.85).to_kelvin() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn picojoule_conversions_agree() {
        let e = Joules(1.05e-12);
        assert!((e.to_picojoules() - 1.05).abs() < 1e-12);
        assert!((e.to_femtojoules().to_picojoules() - 1.05).abs() < 1e-12);
    }

    #[test]
    fn clamp_and_min_max() {
        let v = Volts(1.3);
        assert_eq!(v.clamp(Volts(0.0), Volts(1.0)), Volts(1.0));
        assert_eq!(v.min(Volts(1.0)), Volts(1.0));
        assert_eq!(v.max(Volts(2.0)), Volts(2.0));
    }
}
