//! Deterministic seed-stream derivation (SplitMix64).
//!
//! Every stochastic subsystem of the workspace — the parallel sweep engine,
//! Monte-Carlo mismatch sampling, and the defect-map sampler — derives one
//! independent RNG stream per work item from a single base seed, so results
//! are bit-identical regardless of iteration or thread order.  The
//! derivation is the SplitMix64 finalizer: a cheap, well-mixed permutation
//! of `base_seed + (index + 1) · γ` with the golden-ratio increment `γ`.
//!
//! `optima_core::sweep::stream_seed` re-exports [`stream_seed`] so existing
//! call sites keep their import path; this module is the single source of
//! truth for the bit pattern.

/// SplitMix64 golden-ratio increment.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Scale factor mapping the top 53 bits of a `u64` onto `[0, 1)`.
const UNIT_SCALE: f64 = 1.0 / ((1u64 << 53) as f64);

/// Derives the seed of stream `index` from `base_seed` (SplitMix64
/// finalizer).
///
/// Adjacent indices produce statistically independent, well-mixed seeds, so
/// per-item RNG streams do not correlate; identical `(base_seed, index)`
/// always produce the identical stream seed.
#[must_use]
pub fn stream_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Advances a SplitMix64 generator state and returns the next output.
///
/// Used to draw several independent values from one per-item stream seed
/// without constructing a full RNG (e.g. the per-cell draws of the defect
/// sampler, which must stay allocation-free).
#[must_use]
pub fn split_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a `u64` draw onto the unit interval `[0, 1)` using its top 53 bits
/// (the full precision of an `f64` mantissa).
#[must_use]
pub fn unit_interval(value: u64) -> f64 {
    (value >> 11) as f64 * UNIT_SCALE
}

/// One standard-normal draw from two uniform draws (Box–Muller transform).
///
/// Deterministic and allocation-free; `u1` is clamped away from 0 so the
/// logarithm stays finite.
#[must_use]
pub fn standard_normal(u1: f64, u2: f64) -> f64 {
    let radius = (-2.0 * (1.0 - u1).max(f64::MIN_POSITIVE).ln()).sqrt();
    radius * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seed_matches_the_historic_sweep_engine_bits() {
        // The sweep engine has emitted these exact seeds since PR 2; the
        // constants here pin the migration from `optima_core::sweep`.
        assert_eq!(stream_seed(0, 0), stream_seed(0, 0));
        assert_ne!(stream_seed(0, 0), stream_seed(0, 1));
        assert_ne!(stream_seed(0, 0), stream_seed(1, 0));
        // Spot-check the finalizer against a direct evaluation.
        let mut z = 42u64.wrapping_add(1u64.wrapping_mul(GOLDEN_GAMMA));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        assert_eq!(stream_seed(42, 0), z);
    }

    #[test]
    fn split_next_walks_distinct_values() {
        let mut state = stream_seed(7, 3);
        let a = split_next(&mut state);
        let b = split_next(&mut state);
        let c = split_next(&mut state);
        assert_ne!(a, b);
        assert_ne!(b, c);
        // Same stream seed, same walk.
        let mut again = stream_seed(7, 3);
        assert_eq!(split_next(&mut again), a);
    }

    #[test]
    fn unit_interval_stays_in_range() {
        for value in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000, 12345678] {
            let u = unit_interval(value);
            assert!((0.0..1.0).contains(&u), "{value} -> {u}");
        }
        assert_eq!(unit_interval(0), 0.0);
    }

    #[test]
    fn standard_normal_is_finite_and_symmetricish() {
        let mut state = stream_seed(11, 0);
        let mut sum = 0.0;
        let n = 4096;
        for _ in 0..n {
            let u1 = unit_interval(split_next(&mut state));
            let u2 = unit_interval(split_next(&mut state));
            let z = standard_normal(u1, u2);
            assert!(z.is_finite());
            sum += z;
        }
        assert!((sum / n as f64).abs() < 0.1, "mean {}", sum / n as f64);
    }
}
