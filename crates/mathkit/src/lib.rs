//! Numeric foundations for the OPTIMA reproduction.
//!
//! The OPTIMA modeling framework ([`optima-core`]) fits low-degree polynomial
//! models to circuit-simulation data and evaluates them inside a fast
//! discrete-time simulator.  This crate provides all numeric machinery those
//! steps need, implemented from scratch so the workspace stays within the
//! small set of approved dependencies:
//!
//! * [`polynomial`] — dense univariate polynomials with Horner evaluation,
//!   arithmetic, differentiation and integration.
//! * [`gemm`] — cache-blocked `f32` GEMM/GEMV kernels backing the DNN
//!   inference hot path in `optima_dnn`.
//! * [`linalg`] — small dense matrices/vectors, LU and Householder-QR
//!   factorisations, linear solvers.
//! * [`lsq`] — linear least-squares fitting, univariate polynomial fits and
//!   separable two-variable (tensor-product) polynomial surface fits, exactly
//!   the shapes required by the paper's Eqs. 3–8.
//! * [`stats`] — descriptive statistics, RMS/RMSE, histograms, correlation.
//! * [`distributions`] — Gaussian sampling helpers used for transistor
//!   mismatch Monte Carlo.
//! * [`seed`] — SplitMix64 seed-stream derivation shared by the sweep
//!   engine, Monte-Carlo sampling and the defect-map sampler.
//! * [`interp`] — linear and bilinear interpolation over waveforms/grids.
//! * [`ode`] — fixed-step RK4 and adaptive RK45 integrators used by the
//!   golden-reference circuit simulator.
//! * [`units`] — `Volts`, `Seconds`, `Celsius`, … newtypes that keep the
//!   analog quantities in the rest of the workspace type-safe.
//!
//! # Example
//!
//! Fit a quadratic to noisy samples and evaluate it:
//!
//! ```rust
//! # fn main() -> Result<(), optima_math::MathError> {
//! use optima_math::lsq::polynomial_fit;
//!
//! let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x - 0.5 * x * x).collect();
//! let poly = polynomial_fit(&xs, &ys, 2)?;
//! assert!((poly.eval(1.0) - 2.5).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distributions;
pub mod error;
pub mod gemm;
pub mod interp;
pub mod linalg;
pub mod lsq;
pub mod ode;
pub mod polynomial;
pub mod seed;
pub mod stats;
pub mod units;

pub use error::MathError;
pub use linalg::{Matrix, Vector};
pub use polynomial::Polynomial;
