//! Random-number helpers for Monte Carlo analyses.
//!
//! Transistor mismatch is modeled in the paper as Gaussian variation of the
//! bit-line voltage (Eq. 6) and of the device parameters in the
//! golden-reference simulator.  All sampling goes through [`rand`] so that the
//! caller controls seeding (deterministic, reproducible experiments).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A normal (Gaussian) distribution parameterised by mean and standard deviation.
///
/// Sampling uses the Box–Muller transform, so it only requires a uniform
/// random source and no external distribution crates.
///
/// # Example
///
/// ```rust
/// use optima_math::distributions::Gaussian;
/// use rand::SeedableRng;
///
/// let dist = Gaussian::new(0.0, 1.0);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let sample = dist.sample(&mut rng);
/// assert!(sample.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
}

impl Gaussian {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite(),
            "standard deviation must be finite and non-negative"
        );
        Gaussian { mean, std_dev }
    }

    /// The standard normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Gaussian::new(0.0, 1.0)
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Draws one sample truncated to `[lo, hi]` by rejection (falls back to
    /// clamping after 64 rejected draws, which only happens for extreme bounds).
    pub fn sample_truncated<R: Rng + ?Sized>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        for _ in 0..64 {
            let s = self.sample(rng);
            if s >= lo && s <= hi {
                return s;
            }
        }
        self.sample(rng).clamp(lo, hi)
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x == self.mean { f64::INFINITY } else { 0.0 };
        }
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function at `x` (via an `erf` approximation,
    /// accurate to about `1.5e-7`).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }
}

/// Draws a standard-normal sample using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against u1 == 0 which would give ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, |error| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Draws a uniform sample from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi, "uniform range must be non-empty");
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sample_statistics_match_parameters() {
        let dist = Gaussian::new(2.0, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let samples = dist.sample_n(&mut rng, 20_000);
        assert!((stats::mean(&samples) - 2.0).abs() < 0.02);
        assert!((stats::std_dev(&samples) - 0.5).abs() < 0.02);
    }

    #[test]
    fn zero_std_dev_is_deterministic() {
        let dist = Gaussian::new(1.5, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(dist.sample(&mut rng), 1.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_dev_panics() {
        let _ = Gaussian::new(0.0, -1.0);
    }

    #[test]
    fn truncated_samples_respect_bounds() {
        let dist = Gaussian::new(0.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let s = dist.sample_truncated(&mut rng, -0.5, 0.5);
            assert!((-0.5..=0.5).contains(&s));
        }
    }

    #[test]
    fn pdf_is_symmetric_and_peaks_at_mean() {
        let dist = Gaussian::new(1.0, 2.0);
        assert!((dist.pdf(0.0) - dist.pdf(2.0)).abs() < 1e-12);
        assert!(dist.pdf(1.0) > dist.pdf(0.0));
    }

    #[test]
    fn cdf_matches_known_values() {
        let std = Gaussian::standard();
        assert!((std.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std.cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std.cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427).abs() < 1e-4);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-4);
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let dist = Gaussian::standard();
        let mut rng_a = ChaCha8Rng::seed_from_u64(99);
        let mut rng_b = ChaCha8Rng::seed_from_u64(99);
        assert_eq!(dist.sample_n(&mut rng_a, 10), dist.sample_n(&mut rng_b, 10));
    }

    #[test]
    fn uniform_respects_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let v = uniform(&mut rng, 0.3, 0.7);
            assert!((0.3..0.7).contains(&v));
        }
    }
}
