//! Least-squares fitting of polynomial models.
//!
//! The OPTIMA models of paper Eqs. 3–8 are all of one of two shapes:
//!
//! 1. a univariate polynomial `p_n(x)` (write energy, supply-voltage factor,
//!    temperature coefficient), fitted with [`polynomial_fit`], or
//! 2. a *separable* product of two univariate polynomials
//!    `p_a(x) · p_b(y)` (discharge `p4(Vod)·p2(t)`, mismatch `p3(t)·p3(VWL)`),
//!    fitted with [`SeparableFit`], or a full tensor-product surface fitted
//!    with [`surface_fit`].

use crate::error::MathError;
use crate::linalg::Matrix;
use crate::polynomial::Polynomial;
use crate::stats;
use serde::{Deserialize, Serialize};

/// Fits a univariate polynomial of the given degree to `(xs, ys)` samples.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] if `xs.len() != ys.len()`.
/// * [`MathError::InsufficientData`] if fewer than `degree + 1` samples are given.
/// * [`MathError::SingularMatrix`] if the sample abscissae are degenerate.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), optima_math::MathError> {
/// use optima_math::lsq::polynomial_fit;
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [1.0, 3.0, 5.0, 7.0];
/// let line = polynomial_fit(&xs, &ys, 1)?;
/// assert!((line.eval(10.0) - 21.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn polynomial_fit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Polynomial, MathError> {
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    let coeff_count = degree + 1;
    if xs.len() < coeff_count {
        return Err(MathError::InsufficientData {
            samples: xs.len(),
            coefficients: coeff_count,
        });
    }
    let design = Matrix::from_fn(xs.len(), coeff_count, |i, j| xs[i].powi(j as i32));
    let coeffs = design.solve_least_squares(ys)?;
    Ok(Polynomial::new(coeffs))
}

/// Weighted variant of [`polynomial_fit`]: each sample contributes with
/// weight `w_i` (implemented by scaling rows of the design matrix by `sqrt(w_i)`).
///
/// # Errors
///
/// Same as [`polynomial_fit`], plus [`MathError::InvalidArgument`] for
/// negative weights or a weight-vector length mismatch.
pub fn weighted_polynomial_fit(
    xs: &[f64],
    ys: &[f64],
    weights: &[f64],
    degree: usize,
) -> Result<Polynomial, MathError> {
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if weights.len() != xs.len() {
        return Err(MathError::InvalidArgument {
            context: format!(
                "weight vector length {} does not match sample count {}",
                weights.len(),
                xs.len()
            ),
        });
    }
    if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
        return Err(MathError::InvalidArgument {
            context: "weights must be finite and non-negative".to_string(),
        });
    }
    let coeff_count = degree + 1;
    if xs.len() < coeff_count {
        return Err(MathError::InsufficientData {
            samples: xs.len(),
            coefficients: coeff_count,
        });
    }
    let design = Matrix::from_fn(xs.len(), coeff_count, |i, j| {
        weights[i].sqrt() * xs[i].powi(j as i32)
    });
    let rhs: Vec<f64> = ys
        .iter()
        .zip(weights.iter())
        .map(|(y, w)| y * w.sqrt())
        .collect();
    let coeffs = design.solve_least_squares(&rhs)?;
    Ok(Polynomial::new(coeffs))
}

/// Result of fitting a full tensor-product polynomial surface
/// `f(x, y) = Σ_{i,j} c_{ij} x^i y^j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceFit {
    degree_x: usize,
    degree_y: usize,
    /// Coefficients in row-major `(i, j)` order, `i` indexing powers of `x`.
    coeffs: Vec<f64>,
}

impl SurfaceFit {
    /// Degree in the first variable.
    pub fn degree_x(&self) -> usize {
        self.degree_x
    }

    /// Degree in the second variable.
    pub fn degree_y(&self) -> usize {
        self.degree_y
    }

    /// Raw coefficient access (`(degree_x + 1) * (degree_y + 1)` entries).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluates the surface at `(x, y)`.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let ny = self.degree_y + 1;
        let mut acc = 0.0;
        let mut xp = 1.0;
        for i in 0..=self.degree_x {
            let mut yp = 1.0;
            for j in 0..=self.degree_y {
                acc += self.coeffs[i * ny + j] * xp * yp;
                yp *= y;
            }
            xp *= x;
        }
        acc
    }

    /// Extracts the univariate polynomial in `y` obtained by fixing `x`.
    pub fn slice_at_x(&self, x: f64) -> Polynomial {
        let ny = self.degree_y + 1;
        let mut coeffs = vec![0.0; ny];
        let mut xp = 1.0;
        for i in 0..=self.degree_x {
            for (j, slot) in coeffs.iter_mut().enumerate() {
                *slot += self.coeffs[i * ny + j] * xp;
            }
            xp *= x;
        }
        Polynomial::new(coeffs)
    }
}

/// Fits a tensor-product polynomial surface to scattered `(x, y, z)` samples.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] when sample vectors have differing lengths.
/// * [`MathError::InsufficientData`] when there are fewer samples than coefficients.
/// * [`MathError::SingularMatrix`] when the samples do not span the basis.
pub fn surface_fit(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    degree_x: usize,
    degree_y: usize,
) -> Result<SurfaceFit, MathError> {
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() != zs.len() {
        return Err(MathError::DimensionMismatch {
            left: xs.len(),
            right: zs.len(),
        });
    }
    let nx = degree_x + 1;
    let ny = degree_y + 1;
    let coeff_count = nx * ny;
    if xs.len() < coeff_count {
        return Err(MathError::InsufficientData {
            samples: xs.len(),
            coefficients: coeff_count,
        });
    }
    let design = Matrix::from_fn(xs.len(), coeff_count, |row, col| {
        let i = col / ny;
        let j = col % ny;
        xs[row].powi(i as i32) * ys[row].powi(j as i32)
    });
    let coeffs = design.solve_least_squares(zs)?;
    Ok(SurfaceFit {
        degree_x,
        degree_y,
        coeffs,
    })
}

/// A separable two-factor fit `f(x, y) ≈ p_a(x) · p_b(y)`, obtained by
/// alternating least squares.
///
/// The paper's Eq. 3 (`p4(Vod) · p2(t)`) and Eq. 6 (`p3(t) · p3(VWL)`) have
/// exactly this shape.  Because the product of the two factors is only
/// determined up to a scalar, the second factor is normalised so that its
/// largest-magnitude coefficient is `1.0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeparableFit {
    factor_x: Polynomial,
    factor_y: Polynomial,
    iterations: usize,
    residual_rms: f64,
}

impl SeparableFit {
    /// Fits `z ≈ p_a(x) · p_b(y)` with the given factor degrees.
    ///
    /// # Errors
    ///
    /// Propagates fit errors from the inner least-squares solves and rejects
    /// sample vectors of differing lengths.
    pub fn fit(
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        degree_x: usize,
        degree_y: usize,
        iterations: usize,
    ) -> Result<Self, MathError> {
        if xs.len() != ys.len() || xs.len() != zs.len() {
            return Err(MathError::DimensionMismatch {
                left: xs.len(),
                right: ys.len().min(zs.len()),
            });
        }
        if xs.is_empty() {
            return Err(MathError::InsufficientData {
                samples: 0,
                coefficients: degree_x + degree_y + 2,
            });
        }

        // Initialise the y-factor to the constant 1 and alternate:
        //   fix p_b, fit p_a by weighted LSQ; fix p_a, fit p_b; repeat.
        let mut factor_y = Polynomial::constant(1.0);
        let mut factor_x = Polynomial::constant(1.0);
        let mut performed = 0;
        for _ in 0..iterations.max(1) {
            factor_x = fit_factor(xs, ys, zs, &factor_y, degree_x)?;
            factor_y = fit_factor(ys, xs, zs, &factor_x, degree_y)?;
            performed += 1;
        }
        // Normalise: push the scale into factor_x.
        let scale = factor_y.coeffs().iter().cloned().fold(0.0_f64, |acc, c| {
            if c.abs() > acc.abs() {
                c
            } else {
                acc
            }
        });
        if scale.abs() > 1e-300 {
            factor_y = factor_y.scale(1.0 / scale);
            factor_x = factor_x.scale(scale);
        }

        let residuals: Vec<f64> = xs
            .iter()
            .zip(ys.iter())
            .zip(zs.iter())
            .map(|((&x, &y), &z)| z - factor_x.eval(x) * factor_y.eval(y))
            .collect();
        Ok(SeparableFit {
            factor_x,
            factor_y,
            iterations: performed,
            residual_rms: stats::rms(&residuals),
        })
    }

    /// The factor polynomial in the first variable.
    pub fn factor_x(&self) -> &Polynomial {
        &self.factor_x
    }

    /// The factor polynomial in the second variable.
    pub fn factor_y(&self) -> &Polynomial {
        &self.factor_y
    }

    /// Number of alternating-least-squares iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// RMS of the training residuals.
    pub fn residual_rms(&self) -> f64 {
        self.residual_rms
    }

    /// Evaluates the separable model at `(x, y)`.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        self.factor_x.eval(x) * self.factor_y.eval(y)
    }
}

/// Fits the polynomial `p` in `primary` such that `p(primary) * other_poly(secondary) ≈ z`.
fn fit_factor(
    primary: &[f64],
    secondary: &[f64],
    zs: &[f64],
    other_poly: &Polynomial,
    degree: usize,
) -> Result<Polynomial, MathError> {
    let coeff_count = degree + 1;
    if primary.len() < coeff_count {
        return Err(MathError::InsufficientData {
            samples: primary.len(),
            coefficients: coeff_count,
        });
    }
    let design = Matrix::from_fn(primary.len(), coeff_count, |i, j| {
        other_poly.eval(secondary[i]) * primary[i].powi(j as i32)
    });
    let coeffs = design.solve_least_squares(zs)?;
    Ok(Polynomial::new(coeffs))
}

/// Goodness-of-fit summary for a fitted model against reference data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitQuality {
    /// Root-mean-square error of the residuals.
    pub rmse: f64,
    /// Maximum absolute residual.
    pub max_abs_error: f64,
    /// Coefficient of determination (1 − SS_res / SS_tot).
    pub r_squared: f64,
}

/// Computes RMSE, maximum error and R² of `predicted` against `reference`.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] when the slices differ in length
/// and [`MathError::InvalidArgument`] when they are empty.
pub fn fit_quality(reference: &[f64], predicted: &[f64]) -> Result<FitQuality, MathError> {
    if reference.len() != predicted.len() {
        return Err(MathError::DimensionMismatch {
            left: reference.len(),
            right: predicted.len(),
        });
    }
    if reference.is_empty() {
        return Err(MathError::InvalidArgument {
            context: "cannot compute fit quality of empty data".to_string(),
        });
    }
    let residuals: Vec<f64> = reference
        .iter()
        .zip(predicted.iter())
        .map(|(r, p)| r - p)
        .collect();
    let rmse = stats::rms(&residuals);
    let max_abs_error = residuals.iter().fold(0.0_f64, |acc, r| acc.max(r.abs()));
    let mean_ref = stats::mean(reference);
    let ss_tot: f64 = reference.iter().map(|r| (r - mean_ref).powi(2)).sum();
    let ss_res: f64 = residuals.iter().map(|r| r * r).sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Ok(FitQuality {
        rmse,
        max_abs_error,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_slope_and_intercept() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -0.3 + 1.7 * x).collect();
        let p = polynomial_fit(&xs, &ys, 1).unwrap();
        assert!((p.coeffs()[0] + 0.3).abs() < 1e-10);
        assert!((p.coeffs()[1] - 1.7).abs() < 1e-10);
    }

    #[test]
    fn quartic_fit_is_exact_on_quartic_data() {
        let truth = Polynomial::new(vec![0.2, -1.0, 0.5, 0.1, -0.02]);
        let xs: Vec<f64> = (0..40).map(|i| -2.0 + i as f64 * 0.1).collect();
        let ys = truth.eval_many(&xs);
        let p = polynomial_fit(&xs, &ys, 4).unwrap();
        for (a, b) in p.coeffs().iter().zip(truth.coeffs()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn fit_rejects_insufficient_samples() {
        assert!(matches!(
            polynomial_fit(&[1.0, 2.0], &[1.0, 2.0], 2).unwrap_err(),
            MathError::InsufficientData { .. }
        ));
    }

    #[test]
    fn fit_rejects_mismatched_lengths() {
        assert!(matches!(
            polynomial_fit(&[1.0, 2.0, 3.0], &[1.0, 2.0], 1).unwrap_err(),
            MathError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn weighted_fit_prefers_heavily_weighted_samples() {
        // Two clusters of constant data; weights pull the fit towards 10.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 0.0, 10.0, 10.0];
        let w_equal = [1.0, 1.0, 1.0, 1.0];
        let w_biased = [0.01, 0.01, 100.0, 100.0];
        let flat_equal = weighted_polynomial_fit(&xs, &ys, &w_equal, 0).unwrap();
        let flat_biased = weighted_polynomial_fit(&xs, &ys, &w_biased, 0).unwrap();
        assert!((flat_equal.coeffs()[0] - 5.0).abs() < 1e-9);
        assert!(flat_biased.coeffs()[0] > 9.0);
    }

    #[test]
    fn weighted_fit_validates_weights() {
        assert!(weighted_polynomial_fit(&[0.0, 1.0], &[0.0, 1.0], &[1.0, -1.0], 1).is_err());
        assert!(weighted_polynomial_fit(&[0.0, 1.0], &[0.0, 1.0], &[1.0], 1).is_err());
    }

    #[test]
    fn surface_fit_reproduces_tensor_product() {
        // z = (1 + 2x)(3 - y) expanded = 3 - y + 6x - 2xy
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let x = i as f64 * 0.2;
                let y = j as f64 * 0.3;
                xs.push(x);
                ys.push(y);
                zs.push((1.0 + 2.0 * x) * (3.0 - y));
            }
        }
        let fit = surface_fit(&xs, &ys, &zs, 1, 1).unwrap();
        assert!((fit.eval(0.5, 1.0) - (1.0 + 1.0) * 2.0).abs() < 1e-8);
        let slice = fit.slice_at_x(0.5);
        assert!((slice.eval(1.0) - 4.0).abs() < 1e-8);
    }

    #[test]
    fn separable_fit_recovers_product_structure() {
        // z = (0.5 + x^2) * (2 - y)
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        for i in 0..15 {
            for j in 0..15 {
                let x = -1.0 + i as f64 * 0.15;
                let y = j as f64 * 0.1;
                xs.push(x);
                ys.push(y);
                zs.push((0.5 + x * x) * (2.0 - y));
            }
        }
        let fit = SeparableFit::fit(&xs, &ys, &zs, 2, 1, 8).unwrap();
        assert!(fit.residual_rms() < 1e-8, "rms = {}", fit.residual_rms());
        assert!((fit.eval(0.3, 0.7) - (0.5 + 0.09) * 1.3).abs() < 1e-6);
        assert!(fit.iterations() >= 1);
    }

    #[test]
    fn separable_fit_rejects_empty_and_mismatched_input() {
        assert!(SeparableFit::fit(&[], &[], &[], 1, 1, 3).is_err());
        assert!(SeparableFit::fit(&[1.0], &[1.0, 2.0], &[1.0], 1, 1, 3).is_err());
    }

    #[test]
    fn fit_quality_reports_perfect_fit() {
        let data = [1.0, 2.0, 3.0];
        let q = fit_quality(&data, &data).unwrap();
        assert_eq!(q.rmse, 0.0);
        assert_eq!(q.max_abs_error, 0.0);
        assert!((q.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_quality_detects_bias() {
        let reference = [1.0, 2.0, 3.0, 4.0];
        let predicted = [1.5, 2.5, 3.5, 4.5];
        let q = fit_quality(&reference, &predicted).unwrap();
        assert!((q.rmse - 0.5).abs() < 1e-12);
        assert!((q.max_abs_error - 0.5).abs() < 1e-12);
        assert!(q.r_squared < 1.0);
    }

    #[test]
    fn fit_quality_rejects_bad_input() {
        assert!(fit_quality(&[], &[]).is_err());
        assert!(fit_quality(&[1.0], &[1.0, 2.0]).is_err());
    }
}
