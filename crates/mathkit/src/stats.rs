//! Descriptive statistics used by calibration, Monte Carlo analysis and the
//! experiment harnesses (RMS modeling errors, error histograms, accuracy
//! summaries).

use serde::{Deserialize, Serialize};

/// Arithmetic mean of a slice; returns `0.0` for empty input.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance; returns `0.0` for slices shorter than 2.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64
}

/// Sample (Bessel-corrected) variance; returns `0.0` for slices shorter than 2.
pub fn sample_variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Sample standard deviation.
pub fn sample_std_dev(data: &[f64]) -> f64 {
    sample_variance(data).sqrt()
}

/// Root mean square of the values themselves (not residuals).
pub fn rms(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    (data.iter().map(|x| x * x).sum::<f64>() / data.len() as f64).sqrt()
}

/// Root-mean-square error between two equal-length series.
///
/// # Panics
///
/// Panics if the slices have different lengths; callers that cannot guarantee
/// this should use [`crate::lsq::fit_quality`] which returns a `Result`.
pub fn rmse(reference: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        predicted.len(),
        "rmse requires equal-length slices"
    );
    let residuals: Vec<f64> = reference
        .iter()
        .zip(predicted.iter())
        .map(|(a, b)| a - b)
        .collect();
    rms(&residuals)
}

/// Mean absolute error between two equal-length series.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mae(reference: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        predicted.len(),
        "mae requires equal-length slices"
    );
    if reference.is_empty() {
        return 0.0;
    }
    reference
        .iter()
        .zip(predicted.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / reference.len() as f64
}

/// Minimum of a slice; returns `f64::INFINITY` for empty input.
pub fn min(data: &[f64]) -> f64 {
    data.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice; returns `f64::NEG_INFINITY` for empty input.
pub fn max(data: &[f64]) -> f64 {
    data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Linear-interpolation percentile (`q` in `[0, 1]`); returns `0.0` for empty input.
pub fn percentile(data: &[f64], q: f64) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted = data.to_vec();
    // Total order so that NaN samples land in a deterministic position
    // (after +inf) instead of making the result depend on the input order.
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(data: &[f64]) -> f64 {
    percentile(data, 0.5)
}

/// Pearson correlation coefficient; returns `0.0` when either series is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(
        xs.len(),
        ys.len(),
        "correlation requires equal-length slices"
    );
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut num = 0.0;
    let mut dx2 = 0.0;
    let mut dy2 = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        num += dx * dy;
        dx2 += dx * dx;
        dy2 += dy * dy;
    }
    if dx2 == 0.0 || dy2 == 0.0 {
        return 0.0;
    }
    num / (dx2.sqrt() * dy2.sqrt())
}

/// A fixed-bin histogram over a closed interval.
///
/// # Example
///
/// ```rust
/// use optima_math::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for v in [1.0, 2.0, 3.0, 7.0, 11.0] {
///     h.add(v);
/// }
/// assert_eq!(h.total_count(), 5);
/// assert_eq!(h.counts()[0], 1); // only 1.0 falls into the bin [0, 2)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram interval must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds a sample; values outside `[lo, hi)` go to the under/overflow counters.
    pub fn add(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
            return;
        }
        if value >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((value - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds every sample of the iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of samples at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of samples added, including under/overflow.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Centre of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        assert!(i < self.counts.len(), "bin index out of range");
        self.lo + width * (i as f64 + 0.5)
    }
}

/// Running mean / variance accumulator (Welford's algorithm).
///
/// Used by Monte Carlo loops that would otherwise have to keep every sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the pushed samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the pushed samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation of the pushed samples.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest pushed sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest pushed sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data) - 5.0).abs() < 1e-12);
        assert!((variance(&data) - 4.0).abs() < 1e-12);
        assert!((std_dev(&data) - 2.0).abs() < 1e-12);
        assert!(sample_variance(&data) > variance(&data));
    }

    #[test]
    fn empty_and_singleton_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn rms_and_rmse() {
        assert!((rms(&[3.0, 4.0]) - (12.5_f64).sqrt()).abs() < 1e-12);
        assert!((rmse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0])).abs() < 1e-12);
        assert!((rmse(&[0.0, 0.0], &[1.0, -1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_and_median() {
        let data = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert!((median(&data) - 3.0).abs() < 1e-12);
        assert!((percentile(&data, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&data, 1.0) - 5.0).abs() < 1e-12);
        assert!((percentile(&data, 0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_with_nan_is_input_order_invariant() {
        // NaN sorts after +inf under the total order, so finite percentiles
        // are identical no matter where the NaN sat in the input.
        let a = [f64::NAN, 5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [5.0, 1.0, 3.0, f64::NAN, 2.0, 4.0];
        let c = [4.0, 2.0, 3.0, 1.0, 5.0, f64::NAN];
        for q in [0.0, 0.1, 0.25, 0.5, 0.75] {
            let pa = percentile(&a, q);
            assert_eq!(pa.to_bits(), percentile(&b, q).to_bits(), "q = {q}");
            assert_eq!(pa.to_bits(), percentile(&c, q).to_bits(), "q = {q}");
            assert!(pa.is_finite(), "q = {q} leaked NaN into the finite range");
        }
        // The top of the distribution is the NaN itself — still deterministic.
        assert!(percentile(&a, 1.0).is_nan());
        assert!(percentile(&b, 1.0).is_nan());
    }

    #[test]
    fn correlation_of_linear_relation_is_one() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let ys_neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((correlation(&xs, &ys_neg) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&xs, &[1.0; 20]), 0.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([0.1, 0.3, 0.6, 0.9, 1.5, -0.2]);
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total_count(), 6);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn running_stats_matches_batch_stats() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let mut rs = RunningStats::new();
        rs.extend(data.iter().copied());
        assert_eq!(rs.count(), 7);
        assert!((rs.mean() - mean(&data)).abs() < 1e-12);
        assert!((rs.variance() - variance(&data)).abs() < 1e-12);
        assert_eq!(rs.min(), 1.0);
        assert_eq!(rs.max(), 7.0);
    }

    #[test]
    fn running_stats_empty_defaults() {
        let rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.count(), 0);
    }
}
