//! Small dense linear algebra: matrices, vectors, LU and QR factorisations.
//!
//! The least-squares fits used by OPTIMA involve design matrices with at most
//! a few thousand rows and a handful of columns, so a straightforward dense
//! implementation is more than adequate and keeps the dependency set minimal.

use crate::error::MathError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense column vector of `f64`.
pub type Vector = Vec<f64>;

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), optima_math::MathError> {
/// use optima_math::Matrix;
///
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]])?;
/// let x = a.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] when the rows have differing
    /// lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MathError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(MathError::ShapeMismatch {
                context: "matrix must have at least one row and one column".to_string(),
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(MathError::ShapeMismatch {
                    context: format!("row length {} differs from {}", row.len(), cols),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a closure evaluated at every `(row, col)` index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != rhs.rows {
            return Err(MathError::ShapeMismatch {
                context: format!(
                    "cannot multiply {}x{} by {}x{}",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vector, MathError> {
        if v.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                left: self.cols,
                right: v.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, out_value) in out.iter_mut().enumerate() {
            *out_value = self
                .row(i)
                .iter()
                .zip(v.iter())
                .map(|(a, b)| a * b)
                .sum::<f64>();
        }
        Ok(out)
    }

    /// Solves `A x = b` for square `A` using LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`MathError::ShapeMismatch`] if the matrix is not square.
    /// * [`MathError::DimensionMismatch`] if `b.len() != self.rows()`.
    /// * [`MathError::SingularMatrix`] if a zero pivot is encountered.
    pub fn solve(&self, b: &[f64]) -> Result<Vector, MathError> {
        if self.rows != self.cols {
            return Err(MathError::ShapeMismatch {
                context: format!(
                    "solve requires a square matrix, got {}x{}",
                    self.rows, self.cols
                ),
            });
        }
        if b.len() != self.rows {
            return Err(MathError::DimensionMismatch {
                left: self.rows,
                right: b.len(),
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivoting: find the largest magnitude entry in this column.
            let mut pivot_row = col;
            let mut pivot_val = lu[perm[col] * n + col].abs();
            for row in (col + 1)..n {
                let candidate = lu[perm[row] * n + col].abs();
                if candidate > pivot_val {
                    pivot_val = candidate;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-300 {
                return Err(MathError::SingularMatrix);
            }
            perm.swap(col, pivot_row);

            let pivot = lu[perm[col] * n + col];
            for row in (col + 1)..n {
                let factor = lu[perm[row] * n + col] / pivot;
                lu[perm[row] * n + col] = factor;
                for k in (col + 1)..n {
                    lu[perm[row] * n + k] -= factor * lu[perm[col] * n + k];
                }
            }
        }

        // Forward substitution (L y = P b).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = x[perm[i]];
            for k in 0..i {
                sum -= lu[perm[i] * n + k] * y[k];
            }
            y[i] = sum;
        }
        // Back substitution (U x = y).
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= lu[perm[i] * n + k] * x[k];
            }
            let diag = lu[perm[i] * n + i];
            if diag.abs() < 1e-300 {
                return Err(MathError::SingularMatrix);
            }
            x[i] = sum / diag;
        }
        Ok(x)
    }

    /// Solves the least-squares problem `min ||A x - b||` via Householder QR.
    ///
    /// Works for over-determined systems (`rows >= cols`), which is the shape
    /// of every fit performed by the OPTIMA calibration pipeline.
    ///
    /// # Errors
    ///
    /// * [`MathError::InsufficientData`] if `rows < cols`.
    /// * [`MathError::DimensionMismatch`] if `b.len() != rows`.
    /// * [`MathError::SingularMatrix`] if the columns are linearly dependent.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vector, MathError> {
        if self.rows < self.cols {
            return Err(MathError::InsufficientData {
                samples: self.rows,
                coefficients: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(MathError::DimensionMismatch {
                left: self.rows,
                right: b.len(),
            });
        }
        let m = self.rows;
        let n = self.cols;
        let mut r = self.data.clone();
        let mut rhs = b.to_vec();

        // Householder QR: transform A -> R in place, applying the same
        // reflections to the right-hand side.
        for col in 0..n {
            let mut norm = 0.0;
            for row in col..m {
                norm += r[row * n + col] * r[row * n + col];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                return Err(MathError::SingularMatrix);
            }
            let alpha = if r[col * n + col] > 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m];
            v[col] = r[col * n + col] - alpha;
            for row in (col + 1)..m {
                v[row] = r[row * n + col];
            }
            let vtv: f64 = v[col..].iter().map(|x| x * x).sum();
            if vtv < 1e-300 {
                continue;
            }

            // Apply H = I - 2 v v^T / (v^T v) to the remaining columns of R.
            for j in col..n {
                let dot: f64 = (col..m).map(|row| v[row] * r[row * n + j]).sum();
                let scale = 2.0 * dot / vtv;
                for row in col..m {
                    r[row * n + j] -= scale * v[row];
                }
            }
            // And to the right-hand side.
            let dot: f64 = (col..m).map(|row| v[row] * rhs[row]).sum();
            let scale = 2.0 * dot / vtv;
            for row in col..m {
                rhs[row] -= scale * v[row];
            }
        }

        // Back substitution on the upper-triangular system R x = Q^T b.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = rhs[i];
            for k in (i + 1)..n {
                sum -= r[i * n + k] * x[k];
            }
            let diag = r[i * n + i];
            if diag.abs() < 1e-12 {
                return Err(MathError::SingularMatrix);
            }
            x[i] = sum / diag;
        }
        Ok(x)
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64, MathError> {
    if a.len() != b.len() {
        return Err(MathError::DimensionMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter().zip(b.iter()).map(|(x, y)| x * y).sum())
}

/// Euclidean norm of a slice.
pub fn norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn lu_solve_matches_known_solution() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 2.0],
            vec![1.0, 5.0, 1.0],
            vec![2.0, 1.0, 6.0],
        ])
        .unwrap();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]).unwrap_err(), MathError::SingularMatrix);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_recovers_exact_solution_when_consistent() {
        // Overdetermined but consistent: y = 1 + 2x sampled at 5 points.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { xs[i] });
        let b: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x).collect();
        let sol = a.solve_least_squares(&b).unwrap();
        assert!((sol[0] - 1.0).abs() < 1e-10);
        assert!((sol[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimises_residual() {
        // Inconsistent system: best fit of a constant to [0, 1, 2] is 1.
        let a = Matrix::from_fn(3, 1, |_, _| 1.0);
        let sol = a.solve_least_squares(&[0.0, 1.0, 2.0]).unwrap();
        assert!((sol[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_rejects_underdetermined() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.solve_least_squares(&[0.0, 0.0]).unwrap_err(),
            MathError::InsufficientData { .. }
        ));
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let at = a.transpose();
        let prod = a.matmul(&at).unwrap();
        assert_eq!(prod[(0, 0)], 5.0);
        assert_eq!(prod[(0, 1)], 11.0);
        assert_eq!(prod[(1, 1)], 25.0);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap(), 32.0);
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(9).frobenius_norm() - 3.0).abs() < 1e-12);
    }
}
