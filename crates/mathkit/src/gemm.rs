//! Cache-blocked `f32` matrix kernels for the DNN inference hot path.
//!
//! The `optima_dnn` crate lowers its convolution (via im2col) and dense
//! layers onto the small set of BLAS-like primitives in this module:
//!
//! * [`gemm`] — `C += A·B`   (the workhorse behind im2col convolution),
//! * [`gemm_nt`] — `C += A·Bᵀ` (weight gradients),
//! * [`gemm_tn`] — `C += Aᵀ·B` (input gradients),
//! * [`gemv`] / [`gemv_t`] — matrix-vector products (dense layers),
//! * [`ger`] — rank-1 update `A += x·yᵀ` (dense weight gradients).
//!
//! All matrices are dense, row-major `f32` slices.  The kernels are written
//! so that every inner loop runs over *contiguous* sub-slices with the
//! bounds checks hoisted out (one slice split per row, not one per element),
//! which lets the compiler keep the loops branch-free and auto-vectorized.
//! [`gemm`] and [`gemm_tn`] additionally block over the reduction dimension
//! so that the active panel of `B` stays cache-resident; [`gemm_nt`]
//! computes dot products of contiguous rows with a four-way unrolled
//! accumulator.
//!
//! The kernels accumulate into `C`/`y` (callers zero- or bias-initialise the
//! output first), which is exactly the shape the layer code needs and avoids
//! a separate clearing pass.
//!
//! # Example
//!
//! ```rust
//! use optima_math::gemm::gemm;
//!
//! // [1 2] [5 6]   [19 22]
//! // [3 4]·[7 8] = [43 50]
//! let a = [1.0, 2.0, 3.0, 4.0];
//! let b = [5.0, 6.0, 7.0, 8.0];
//! let mut c = [0.0f32; 4];
//! gemm(2, 2, 2, &a, &b, &mut c);
//! assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
//! ```

/// Rows of `A` processed per outer block; keeps the written `C` panel small.
const BLOCK_M: usize = 64;
/// Reduction-depth slice per block; keeps the active `B` panel in L1/L2.
const BLOCK_K: usize = 256;

#[inline]
fn check_dims(what: &str, rows: usize, cols: usize, len: usize) {
    assert_eq!(
        len,
        rows * cols,
        "{what} buffer holds {len} elements, expected {rows}x{cols}"
    );
}

// Everything from here to `end-hot` runs per-element inside DNN inference;
// R4 forbids allocation in this region.
// optima-lint: hot

/// `y += alpha * x` over equal-length slices (the vectorized inner loop of
/// the `NN`/`TN` kernels).
#[inline]
fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Dot product with four independent accumulators (the inner loop of the
/// `NT` kernel); the unroll breaks the serial dependency chain so the
/// compiler can keep several FMAs in flight.
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = [0.0f32; 4];
    let mut chunks_x = x.chunks_exact(4);
    let mut chunks_y = y.chunks_exact(4);
    for (cx, cy) in chunks_x.by_ref().zip(chunks_y.by_ref()) {
        acc[0] += cx[0] * cy[0];
        acc[1] += cx[1] * cy[1];
        acc[2] += cx[2] * cy[2];
        acc[3] += cx[3] * cy[3];
    }
    let mut tail = 0.0f32;
    for (xi, yi) in chunks_x.remainder().iter().zip(chunks_y.remainder()) {
        tail += xi * yi;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `C += A·B` for row-major `A [m×k]`, `B [k×n]`, `C [m×n]`.
///
/// Blocked over `m` and `k`; the inner loop is an [`axpy`] over contiguous
/// rows of `B` and `C`, so no per-element bounds checks survive.
///
/// # Panics
///
/// Panics when a slice length does not match its `rows × cols` dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims("A", m, k, a.len());
    check_dims("B", k, n, b.len());
    check_dims("C", m, n, c.len());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    for i0 in (0..m).step_by(BLOCK_M) {
        let i1 = (i0 + BLOCK_M).min(m);
        for k0 in (0..k).step_by(BLOCK_K) {
            let k1 = (k0 + BLOCK_K).min(k);
            for i in i0..i1 {
                let a_row = &a[i * k..i * k + k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    axpy(a_row[kk], &b[kk * n..kk * n + n], c_row);
                }
            }
        }
    }
}

/// `C += A·Bᵀ` for row-major `A [m×k]`, `B [n×k]`, `C [m×n]`.
///
/// Both operands are traversed along their contiguous rows; each output
/// element is one unrolled [`dot`] product.
///
/// # Panics
///
/// Panics when a slice length does not match its `rows × cols` dimensions.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims("A", m, k, a.len());
    check_dims("B", n, k, b.len());
    check_dims("C", m, n, c.len());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    for i in 0..m {
        let a_row = &a[i * k..i * k + k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, c_ij) in c_row.iter_mut().enumerate() {
            *c_ij += dot(a_row, &b[j * k..j * k + k]);
        }
    }
}

/// `C += Aᵀ·B` for row-major `A [k×m]`, `B [k×n]`, `C [m×n]`.
///
/// Iterates the reduction dimension outermost so `A` and `B` are both read
/// along contiguous rows; the inner loop is an [`axpy`] into rows of `C`.
///
/// # Panics
///
/// Panics when a slice length does not match its `rows × cols` dimensions.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims("A", k, m, a.len());
    check_dims("B", k, n, b.len());
    check_dims("C", m, n, c.len());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    for i0 in (0..m).step_by(BLOCK_M) {
        let i1 = (i0 + BLOCK_M).min(m);
        for kk in 0..k {
            let a_row = &a[kk * m..kk * m + m];
            let b_row = &b[kk * n..kk * n + n];
            for i in i0..i1 {
                axpy(a_row[i], b_row, &mut c[i * n..(i + 1) * n]);
            }
        }
    }
}

/// `y += A·x` for row-major `A [m×k]`, `x [k]`, `y [m]`.
///
/// One unrolled [`dot`] product per output element.
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn gemv(m: usize, k: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    check_dims("A", m, k, a.len());
    assert_eq!(x.len(), k, "x length {} != {k}", x.len());
    assert_eq!(y.len(), m, "y length {} != {m}", y.len());
    for (i, y_i) in y.iter_mut().enumerate() {
        *y_i += dot(&a[i * k..i * k + k], x);
    }
}

/// `y += Aᵀ·x` for row-major `A [m×k]`, `x [m]`, `y [k]`.
///
/// Traverses `A` along its contiguous rows, accumulating [`axpy`] updates.
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn gemv_t(m: usize, k: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    check_dims("A", m, k, a.len());
    assert_eq!(x.len(), m, "x length {} != {m}", x.len());
    assert_eq!(y.len(), k, "y length {} != {k}", y.len());
    for (i, &x_i) in x.iter().enumerate() {
        axpy(x_i, &a[i * k..i * k + k], y);
    }
}

/// Rank-1 update `A += x·yᵀ` for row-major `A [m×n]`, `x [m]`, `y [n]`.
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn ger(m: usize, n: usize, x: &[f32], y: &[f32], a: &mut [f32]) {
    check_dims("A", m, n, a.len());
    assert_eq!(x.len(), m, "x length {} != {m}", x.len());
    assert_eq!(y.len(), n, "y length {} != {n}", y.len());
    for (i, &x_i) in x.iter().enumerate() {
        axpy(x_i, y, &mut a[i * n..(i + 1) * n]);
    }
}

// optima-lint: end-hot

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc += a[i * k + kk] as f64 * b[kk * n + j] as f64;
                }
                c[i * n + j] = acc as f32;
            }
        }
        c
    }

    /// Deterministic pseudo-random fill (SplitMix64-based, no rand dep).
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z as f32 / u64::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn assert_close(actual: &[f32], expected: &[f32], tolerance: f32) {
        assert_eq!(actual.len(), expected.len());
        for (i, (&a, &e)) in actual.iter().zip(expected.iter()).enumerate() {
            assert!(
                (a - e).abs() <= tolerance * e.abs().max(1.0),
                "element {i}: {a} vs {e}"
            );
        }
    }

    #[test]
    fn gemm_matches_naive_over_random_shapes() {
        for (case, &(m, k, n)) in [
            (1, 1, 1),
            (2, 3, 4),
            (5, 1, 7),
            (17, 33, 9),
            (64, 65, 66),
            (70, 300, 31),
        ]
        .iter()
        .enumerate()
        {
            let a = fill(case as u64 + 1, m * k);
            let b = fill(case as u64 + 100, k * n);
            let mut c = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            assert_close(&c, &naive_gemm(m, k, n, &a, &b), 1e-4);
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let mut c = [10.0, 10.0, 10.0, 10.0];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn transposed_variants_match_explicit_transposes() {
        let (m, k, n) = (13, 29, 11);
        let a = fill(7, m * k);
        let b = fill(8, k * n);
        let expected = naive_gemm(m, k, n, &a, &b);

        // A·Bᵀ with B stored transposed [n×k].
        let mut b_t = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                b_t[j * k + kk] = b[kk * n + j];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm_nt(m, k, n, &a, &b_t, &mut c);
        assert_close(&c, &expected, 1e-4);

        // Aᵀ·B with A stored transposed [k×m].
        let mut a_t = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                a_t[kk * m + i] = a[i * k + kk];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm_tn(m, k, n, &a_t, &b, &mut c);
        assert_close(&c, &expected, 1e-4);
    }

    #[test]
    fn gemv_variants_match_gemm_with_one_column() {
        let (m, k) = (23, 57);
        let a = fill(3, m * k);
        let x = fill(4, k);
        let expected = naive_gemm(m, k, 1, &a, &x);
        let mut y = vec![0.0f32; m];
        gemv(m, k, &a, &x, &mut y);
        assert_close(&y, &expected, 1e-4);

        let x_m = fill(5, m);
        let mut a_t = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                a_t[kk * m + i] = a[i * k + kk];
            }
        }
        let expected_t = naive_gemm(k, m, 1, &a_t, &x_m);
        let mut y_t = vec![0.0f32; k];
        gemv_t(m, k, &a, &x_m, &mut y_t);
        assert_close(&y_t, &expected_t, 1e-4);
    }

    #[test]
    fn ger_is_an_outer_product_update() {
        let x = [1.0, 2.0];
        let y = [3.0, 4.0, 5.0];
        let mut a = vec![1.0f32; 6];
        ger(2, 3, &x, &y, &mut a);
        assert_eq!(a, vec![4.0, 5.0, 6.0, 7.0, 9.0, 11.0]);
    }

    #[test]
    fn empty_dimensions_are_no_ops() {
        let mut c: Vec<f32> = Vec::new();
        gemm(0, 5, 0, &[], &fill(1, 0), &mut c);
        let mut c = vec![3.0f32; 4];
        gemm(2, 0, 2, &[], &[], &mut c);
        assert_eq!(c, vec![3.0; 4]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn dimension_mismatch_panics() {
        let mut c = vec![0.0f32; 4];
        gemm(2, 2, 2, &[1.0, 2.0, 3.0], &[0.0; 4], &mut c);
    }
}
