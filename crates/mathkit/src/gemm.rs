//! Cache-blocked `f32` matrix kernels for the DNN inference hot path.
//!
//! The `optima_dnn` crate lowers its convolution (via im2col) and dense
//! layers onto the small set of BLAS-like primitives in this module:
//!
//! * [`gemm`] — `C += A·B`   (the workhorse behind im2col convolution),
//! * [`gemm_nt`] — `C += A·Bᵀ` (weight gradients),
//! * [`gemm_tn`] — `C += Aᵀ·B` (input gradients),
//! * [`gemv`] / [`gemv_t`] — matrix-vector products (dense layers),
//! * [`ger`] — rank-1 update `A += x·yᵀ` (dense weight gradients).
//!
//! All matrices are dense, row-major `f32` slices.  The kernels are written
//! so that every inner loop runs over *contiguous* sub-slices with the
//! bounds checks hoisted out (one slice split per row, not one per element),
//! which lets the compiler keep the loops branch-free and auto-vectorized.
//! [`gemm`] and [`gemm_tn`] additionally block over the reduction dimension
//! so that the active panel of `B` stays cache-resident; [`gemm_nt`]
//! computes dot products of contiguous rows with a four-way unrolled
//! accumulator.
//!
//! # Packed-panel GEMM
//!
//! On top of the streaming kernels, [`PackedGemm`] provides the
//! pack-once/run-many plan used by the inference hot path: the weight matrix
//! `A` is repacked **once per layer** into 8-row panels (`[kk][r]` order, so
//! the micro-kernel reads 8 weights per cycle from one contiguous word), and
//! each call packs `B` into 8-column panels inside a caller-owned
//! [`GemmScratch`] arena that is reused across the whole batch.  The
//! micro-kernel is an 8×8 register tile in the same portable lane-array
//! style as `Polynomial::eval_many_into`: `[[f32; 8]; 8]` accumulators that
//! the compiler keeps in vector registers.
//!
//! Because the register tile accumulates each output element privately
//! (initialised to zero, `k` traversed in ascending order, added to `C` once
//! at writeback), the result is **exactly** — bit for bit — the
//! "lane-ordered scalar model" implemented by [`packed_gemm_model`]; the
//! property tests pin that equivalence over shapes that are not multiples of
//! the lane width.  Tails in `m`/`n` are handled by zero-padding the packed
//! panels (every micro-tile is full) and masking the writeback, so the tail
//! elements go through the same instruction sequence as the bulk.
//!
//! The kernels accumulate into `C`/`y` (callers zero- or bias-initialise the
//! output first), which is exactly the shape the layer code needs and avoids
//! a separate clearing pass.
//!
//! # Example
//!
//! ```rust
//! use optima_math::gemm::gemm;
//!
//! // [1 2] [5 6]   [19 22]
//! // [3 4]·[7 8] = [43 50]
//! let a = [1.0, 2.0, 3.0, 4.0];
//! let b = [5.0, 6.0, 7.0, 8.0];
//! let mut c = [0.0f32; 4];
//! gemm(2, 2, 2, &a, &b, &mut c);
//! assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
//! ```

/// Rows of `A` processed per outer block; keeps the written `C` panel small.
const BLOCK_M: usize = 64;
/// Reduction-depth slice per block; keeps the active `B` panel in L1/L2.
const BLOCK_K: usize = 256;
/// Lane width of the packed micro-kernel: 8 `f32` lanes fill one AVX2
/// register, and narrower targets split the lane array without changing the
/// arithmetic order.
pub const LANES: usize = 8;
/// Rows per packed-`A` panel (the register-tile height).
const MR: usize = 8;

#[inline]
fn check_dims(what: &str, rows: usize, cols: usize, len: usize) {
    assert_eq!(
        len,
        rows * cols,
        "{what} buffer holds {len} elements, expected {rows}x{cols}"
    );
}

// Everything from here to `end-hot` runs per-element inside DNN inference;
// R4 forbids allocation in this region.
// optima-lint: hot

/// `y += alpha * x` over equal-length slices (the vectorized inner loop of
/// the `NN`/`TN` kernels).
#[inline]
fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Dot product with four independent accumulators (the inner loop of the
/// `NT` kernel); the unroll breaks the serial dependency chain so the
/// compiler can keep several FMAs in flight.
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = [0.0f32; 4];
    let mut chunks_x = x.chunks_exact(4);
    let mut chunks_y = y.chunks_exact(4);
    for (cx, cy) in chunks_x.by_ref().zip(chunks_y.by_ref()) {
        acc[0] += cx[0] * cy[0];
        acc[1] += cx[1] * cy[1];
        acc[2] += cx[2] * cy[2];
        acc[3] += cx[3] * cy[3];
    }
    let mut tail = 0.0f32;
    for (xi, yi) in chunks_x.remainder().iter().zip(chunks_y.remainder()) {
        tail += xi * yi;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `C += A·B` for row-major `A [m×k]`, `B [k×n]`, `C [m×n]`.
///
/// Blocked over `m` and `k`; the inner loop is an [`axpy`] over contiguous
/// rows of `B` and `C`, so no per-element bounds checks survive.
///
/// # Panics
///
/// Panics when a slice length does not match its `rows × cols` dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims("A", m, k, a.len());
    check_dims("B", k, n, b.len());
    check_dims("C", m, n, c.len());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    for i0 in (0..m).step_by(BLOCK_M) {
        let i1 = (i0 + BLOCK_M).min(m);
        for k0 in (0..k).step_by(BLOCK_K) {
            let k1 = (k0 + BLOCK_K).min(k);
            for i in i0..i1 {
                let a_row = &a[i * k..i * k + k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    axpy(a_row[kk], &b[kk * n..kk * n + n], c_row);
                }
            }
        }
    }
}

/// `C += A·Bᵀ` for row-major `A [m×k]`, `B [n×k]`, `C [m×n]`.
///
/// Both operands are traversed along their contiguous rows; each output
/// element is one unrolled [`dot`] product.
///
/// # Panics
///
/// Panics when a slice length does not match its `rows × cols` dimensions.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims("A", m, k, a.len());
    check_dims("B", n, k, b.len());
    check_dims("C", m, n, c.len());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    for i in 0..m {
        let a_row = &a[i * k..i * k + k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, c_ij) in c_row.iter_mut().enumerate() {
            *c_ij += dot(a_row, &b[j * k..j * k + k]);
        }
    }
}

/// `C += Aᵀ·B` for row-major `A [k×m]`, `B [k×n]`, `C [m×n]`.
///
/// Iterates the reduction dimension outermost so `A` and `B` are both read
/// along contiguous rows; the inner loop is an [`axpy`] into rows of `C`.
///
/// # Panics
///
/// Panics when a slice length does not match its `rows × cols` dimensions.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims("A", k, m, a.len());
    check_dims("B", k, n, b.len());
    check_dims("C", m, n, c.len());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    for i0 in (0..m).step_by(BLOCK_M) {
        let i1 = (i0 + BLOCK_M).min(m);
        for kk in 0..k {
            let a_row = &a[kk * m..kk * m + m];
            let b_row = &b[kk * n..kk * n + n];
            for i in i0..i1 {
                axpy(a_row[i], b_row, &mut c[i * n..(i + 1) * n]);
            }
        }
    }
}

/// `y += A·x` for row-major `A [m×k]`, `x [k]`, `y [m]`.
///
/// One unrolled [`dot`] product per output element.
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn gemv(m: usize, k: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    check_dims("A", m, k, a.len());
    assert_eq!(x.len(), k, "x length {} != {k}", x.len());
    assert_eq!(y.len(), m, "y length {} != {m}", y.len());
    for (i, y_i) in y.iter_mut().enumerate() {
        *y_i += dot(&a[i * k..i * k + k], x);
    }
}

/// `y += Aᵀ·x` for row-major `A [m×k]`, `x [m]`, `y [k]`.
///
/// Traverses `A` along its contiguous rows, accumulating [`axpy`] updates.
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn gemv_t(m: usize, k: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    check_dims("A", m, k, a.len());
    assert_eq!(x.len(), m, "x length {} != {m}", x.len());
    assert_eq!(y.len(), k, "y length {} != {k}", y.len());
    for (i, &x_i) in x.iter().enumerate() {
        axpy(x_i, &a[i * k..i * k + k], y);
    }
}

/// Rank-1 update `A += x·yᵀ` for row-major `A [m×n]`, `x [m]`, `y [n]`.
///
/// # Panics
///
/// Panics when the slice lengths do not match the dimensions.
pub fn ger(m: usize, n: usize, x: &[f32], y: &[f32], a: &mut [f32]) {
    check_dims("A", m, n, a.len());
    assert_eq!(x.len(), m, "x length {} != {m}", x.len());
    assert_eq!(y.len(), n, "y length {} != {n}", y.len());
    for (i, &x_i) in x.iter().enumerate() {
        axpy(x_i, y, &mut a[i * n..(i + 1) * n]);
    }
}

// optima-lint: end-hot

/// Reusable packing arena for [`PackedGemm`]: holds the packed `B` panels
/// between calls so the steady state performs no heap allocation.
///
/// One scratch per worker; it grows to the largest `k × n` seen and then
/// stays at that capacity.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    /// `B` packed into [`LANES`]-column panels, `[panel][kk][lane]` order.
    packed_b: Vec<f32>,
}

impl GemmScratch {
    /// Creates an empty scratch arena (no allocation until first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A pack-once matrix-product plan: `A` repacked into [`MR`]-row panels for
/// the 8-wide register-tile micro-kernel.
///
/// Build one per weight matrix with [`PackedGemm::pack`], then run
/// [`PackedGemm::gemm_into`] / [`PackedGemm::gemv_into`] for every image in
/// the batch.  The packed layout stores, panel by panel, the `MR` row values
/// for each reduction index `kk` contiguously (`[panel][kk][r]`), with tail
/// rows zero-padded so the micro-kernel never branches on the row count.
///
/// Both kernels accumulate into the output and are bit-identical to the
/// lane-ordered scalar models [`packed_gemm_model`] / [`packed_gemv_model`].
#[derive(Debug, Clone)]
pub struct PackedGemm {
    m: usize,
    k: usize,
    /// `ceil(m / MR)` panels of `k × MR` floats, `[panel][kk][r]` order.
    panels: Vec<f32>,
}

impl PackedGemm {
    /// Packs row-major `A [m×k]` into the panel layout.
    ///
    /// # Panics
    ///
    /// Panics when `a.len() != m * k`.
    pub fn pack(m: usize, k: usize, a: &[f32]) -> Self {
        check_dims("A", m, k, a.len());
        if m == 0 || k == 0 {
            return PackedGemm {
                m,
                k,
                panels: Vec::new(),
            };
        }
        let panel_count = m.div_ceil(MR);
        let mut panels = vec![0.0f32; panel_count * k * MR];
        for (p, panel) in panels.chunks_exact_mut(k * MR).enumerate() {
            let row0 = p * MR;
            let rows = MR.min(m - row0);
            for r in 0..rows {
                let a_row = &a[(row0 + r) * k..(row0 + r) * k + k];
                for (kk, &value) in a_row.iter().enumerate() {
                    panel[kk * MR + r] = value;
                }
            }
        }
        PackedGemm { m, k, panels }
    }

    /// Number of rows in the packed matrix.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Reduction depth (columns of the packed matrix).
    pub fn depth(&self) -> usize {
        self.k
    }

    // The packing loop and the two micro-kernels below run per image inside
    // DNN inference; R4 forbids allocation in this region (the scratch arena
    // may `resize`, which reuses its capacity in the steady state).
    // optima-lint: hot

    /// `C += A·B` for the packed `A [m×k]`, row-major `B [k×n]`, `C [m×n]`.
    ///
    /// Packs `B` into `scratch` (reusing its capacity), then runs the 8×8
    /// register-tile micro-kernel over full panels; partial edge tiles are
    /// computed on zero padding and masked at writeback.  Exactly equivalent
    /// to [`packed_gemm_model`].
    ///
    /// # Panics
    ///
    /// Panics when a slice length does not match its dimensions.
    pub fn gemm_into(&self, n: usize, b: &[f32], c: &mut [f32], scratch: &mut GemmScratch) {
        let (m, k) = (self.m, self.k);
        check_dims("B", k, n, b.len());
        check_dims("C", m, n, c.len());
        if m == 0 || k == 0 || n == 0 {
            return;
        }

        // Pack B into LANES-column panels (inside the dispatched kernel so
        // the copies vectorize with the same feature set), zero-padding the
        // column tail.
        let col_panels = n.div_ceil(LANES);
        let packed_b = &mut scratch.packed_b;
        packed_b.clear();
        packed_b.resize(col_panels * k * LANES, 0.0);
        gemm_panels(m, k, n, &self.panels, b, packed_b, c);
    }

    /// `y += A·x` for the packed `A [m×k]`, `x [k]`, `y [m]`.
    ///
    /// The lane array runs *across the 8 panel rows* (the packed layout makes
    /// them contiguous per `kk`), so the kernel is the `n = 1` column of
    /// [`PackedGemm::gemm_into`] — and bit-identical to
    /// [`packed_gemv_model`].
    ///
    /// # Panics
    ///
    /// Panics when a slice length does not match its dimensions.
    pub fn gemv_into(&self, x: &[f32], y: &mut [f32]) {
        let (m, k) = (self.m, self.k);
        assert_eq!(x.len(), k, "x length {} != {k}", x.len());
        assert_eq!(y.len(), m, "y length {} != {m}", y.len());
        if m == 0 || k == 0 {
            return;
        }
        gemv_panels(m, k, &self.panels, x, y);
    }

    // optima-lint: end-hot
}

// The two panel kernels below exist in two compilations: the portable body
// and an AVX2 clone selected by a cached runtime feature check.  With AVX
// every `[f32; 8]` lane row is a single ymm register (the 8×8 tile is eight
// accumulator registers); the baseline build splits each row across two SSE
// registers and spills.  Both clones run the identical instruction *order*
// — plain multiply and add, no FMA contraction — so their results are
// bit-identical to each other and to the lane-ordered scalar models.
// optima-lint: hot

/// The 8×8 register-tile micro-kernel over full packed panels, with masked
/// writeback for the `m`/`n` tails.  Packs `B` into `packed_b` first (the
/// buffer arrives zeroed and sized by the caller); full-width panels take a
/// constant-length copy so the pack loop vectorizes.
#[inline(always)]
fn gemm_panels_body(
    m: usize,
    k: usize,
    n: usize,
    a_panels: &[f32],
    b: &[f32],
    packed_b: &mut [f32],
    c: &mut [f32],
) {
    for (jp, panel) in packed_b.chunks_exact_mut(k * LANES).enumerate() {
        let col0 = jp * LANES;
        if col0 + LANES <= n {
            for (kk, dst) in panel.chunks_exact_mut(LANES).enumerate() {
                dst.copy_from_slice(&b[kk * n + col0..kk * n + col0 + LANES]);
            }
        } else {
            let lanes = n - col0;
            for (kk, dst) in panel.chunks_exact_mut(LANES).enumerate() {
                dst[..lanes].copy_from_slice(&b[kk * n + col0..kk * n + col0 + lanes]);
            }
        }
    }
    for (jp, b_panel) in packed_b.chunks_exact(k * LANES).enumerate() {
        for (ip, a_panel) in a_panels.chunks_exact(k * MR).enumerate() {
            let mut acc = [[0.0f32; LANES]; MR];
            let a_steps = a_panel.chunks_exact(MR);
            let b_steps = b_panel.chunks_exact(LANES);
            for (a_step, b_step) in a_steps.zip(b_steps) {
                for (acc_row, &a_val) in acc.iter_mut().zip(a_step.iter()) {
                    for (lane, &b_val) in acc_row.iter_mut().zip(b_step.iter()) {
                        *lane += a_val * b_val;
                    }
                }
            }
            // Masked writeback: only rows < m and columns < n land in C.
            let row0 = ip * MR;
            let rows = MR.min(m - row0);
            let col0 = jp * LANES;
            let lanes = LANES.min(n - col0);
            for (r, acc_row) in acc.iter().enumerate().take(rows) {
                let c_row = &mut c[(row0 + r) * n + col0..(row0 + r) * n + col0 + lanes];
                for (c_val, &a_val) in c_row.iter_mut().zip(acc_row.iter()) {
                    *c_val += a_val;
                }
            }
        }
    }
}

/// The packed GEMV micro-kernel: one 8-lane accumulator per `A` panel.
#[inline(always)]
fn gemv_panels_body(m: usize, k: usize, a_panels: &[f32], x: &[f32], y: &mut [f32]) {
    for (ip, panel) in a_panels.chunks_exact(k * MR).enumerate() {
        let mut acc = [0.0f32; MR];
        for (step, &x_val) in panel.chunks_exact(MR).zip(x.iter()) {
            for (lane, &a_val) in acc.iter_mut().zip(step.iter()) {
                *lane += a_val * x_val;
            }
        }
        let row0 = ip * MR;
        let rows = MR.min(m - row0);
        for (y_val, &a_val) in y[row0..row0 + rows].iter_mut().zip(acc.iter()) {
            *y_val += a_val;
        }
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn gemm_panels_avx2(
    m: usize,
    k: usize,
    n: usize,
    a_panels: &[f32],
    b: &[f32],
    packed_b: &mut [f32],
    c: &mut [f32],
) {
    gemm_panels_body(m, k, n, a_panels, b, packed_b, c);
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn gemv_panels_avx2(m: usize, k: usize, a_panels: &[f32], x: &[f32], y: &mut [f32]) {
    gemv_panels_body(m, k, a_panels, x, y);
}

fn gemm_panels(
    m: usize,
    k: usize,
    n: usize,
    a_panels: &[f32],
    b: &[f32],
    packed_b: &mut [f32],
    c: &mut [f32],
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 clone only runs after the (cached) runtime
        // feature check above confirmed the CPU supports it.
        return unsafe { gemm_panels_avx2(m, k, n, a_panels, b, packed_b, c) };
    }
    gemm_panels_body(m, k, n, a_panels, b, packed_b, c);
}

fn gemv_panels(m: usize, k: usize, a_panels: &[f32], x: &[f32], y: &mut [f32]) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 clone only runs after the (cached) runtime
        // feature check above confirmed the CPU supports it.
        return unsafe { gemv_panels_avx2(m, k, a_panels, x, y) };
    }
    gemv_panels_body(m, k, a_panels, x, y);
}

// optima-lint: end-hot

/// The lane-ordered scalar model that [`PackedGemm::gemm_into`] reproduces
/// **bit for bit**: each output element accumulates its own `f32` sum over
/// ascending `kk` (plain multiply-add, no fused contraction, no blocking)
/// and is added to `C` once.
///
/// This is the equivalence oracle for the packed kernel — deliberately the
/// simplest possible implementation, kept far from the hot path.
///
/// # Panics
///
/// Panics when a slice length does not match its dimensions.
pub fn packed_gemm_model(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims("A", m, k, a.len());
    check_dims("B", k, n, b.len());
    check_dims("C", m, n, c.len());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] += acc;
        }
    }
}

/// The `n = 1` column of [`packed_gemm_model`]: the equivalence oracle for
/// [`PackedGemm::gemv_into`].
///
/// # Panics
///
/// Panics when a slice length does not match its dimensions.
pub fn packed_gemv_model(m: usize, k: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    check_dims("A", m, k, a.len());
    assert_eq!(x.len(), k, "x length {} != {k}", x.len());
    assert_eq!(y.len(), m, "y length {} != {m}", y.len());
    for i in 0..m {
        let mut acc = 0.0f32;
        for kk in 0..k {
            acc += a[i * k + kk] * x[kk];
        }
        y[i] += acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc += a[i * k + kk] as f64 * b[kk * n + j] as f64;
                }
                c[i * n + j] = acc as f32;
            }
        }
        c
    }

    /// Deterministic pseudo-random fill (SplitMix64-based, no rand dep).
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z as f32 / u64::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn assert_close(actual: &[f32], expected: &[f32], tolerance: f32) {
        assert_eq!(actual.len(), expected.len());
        for (i, (&a, &e)) in actual.iter().zip(expected.iter()).enumerate() {
            assert!(
                (a - e).abs() <= tolerance * e.abs().max(1.0),
                "element {i}: {a} vs {e}"
            );
        }
    }

    #[test]
    fn gemm_matches_naive_over_random_shapes() {
        for (case, &(m, k, n)) in [
            (1, 1, 1),
            (2, 3, 4),
            (5, 1, 7),
            (17, 33, 9),
            (64, 65, 66),
            (70, 300, 31),
        ]
        .iter()
        .enumerate()
        {
            let a = fill(case as u64 + 1, m * k);
            let b = fill(case as u64 + 100, k * n);
            let mut c = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            assert_close(&c, &naive_gemm(m, k, n, &a, &b), 1e-4);
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let mut c = [10.0, 10.0, 10.0, 10.0];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn transposed_variants_match_explicit_transposes() {
        let (m, k, n) = (13, 29, 11);
        let a = fill(7, m * k);
        let b = fill(8, k * n);
        let expected = naive_gemm(m, k, n, &a, &b);

        // A·Bᵀ with B stored transposed [n×k].
        let mut b_t = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                b_t[j * k + kk] = b[kk * n + j];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm_nt(m, k, n, &a, &b_t, &mut c);
        assert_close(&c, &expected, 1e-4);

        // Aᵀ·B with A stored transposed [k×m].
        let mut a_t = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                a_t[kk * m + i] = a[i * k + kk];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm_tn(m, k, n, &a_t, &b, &mut c);
        assert_close(&c, &expected, 1e-4);
    }

    #[test]
    fn gemv_variants_match_gemm_with_one_column() {
        let (m, k) = (23, 57);
        let a = fill(3, m * k);
        let x = fill(4, k);
        let expected = naive_gemm(m, k, 1, &a, &x);
        let mut y = vec![0.0f32; m];
        gemv(m, k, &a, &x, &mut y);
        assert_close(&y, &expected, 1e-4);

        let x_m = fill(5, m);
        let mut a_t = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                a_t[kk * m + i] = a[i * k + kk];
            }
        }
        let expected_t = naive_gemm(k, m, 1, &a_t, &x_m);
        let mut y_t = vec![0.0f32; k];
        gemv_t(m, k, &a, &x_m, &mut y_t);
        assert_close(&y_t, &expected_t, 1e-4);
    }

    #[test]
    fn ger_is_an_outer_product_update() {
        let x = [1.0, 2.0];
        let y = [3.0, 4.0, 5.0];
        let mut a = vec![1.0f32; 6];
        ger(2, 3, &x, &y, &mut a);
        assert_eq!(a, vec![4.0, 5.0, 6.0, 7.0, 9.0, 11.0]);
    }

    #[test]
    fn empty_dimensions_are_no_ops() {
        let mut c: Vec<f32> = Vec::new();
        gemm(0, 5, 0, &[], &fill(1, 0), &mut c);
        let mut c = vec![3.0f32; 4];
        gemm(2, 0, 2, &[], &[], &mut c);
        assert_eq!(c, vec![3.0; 4]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn dimension_mismatch_panics() {
        let mut c = vec![0.0f32; 4];
        gemm(2, 2, 2, &[1.0, 2.0, 3.0], &[0.0; 4], &mut c);
    }

    #[test]
    fn packed_gemm_is_bit_identical_to_the_lane_ordered_model() {
        // Shapes straddling the 8-lane boundaries: exact multiples, one off
        // either side, degenerate single rows/columns and a large panel mix.
        for (case, &(m, k, n)) in [
            (1, 1, 1),
            (8, 8, 8),
            (7, 9, 8),
            (9, 8, 7),
            (16, 24, 32),
            (17, 33, 9),
            (3, 300, 31),
            (70, 13, 66),
        ]
        .iter()
        .enumerate()
        {
            let a = fill(case as u64 + 1, m * k);
            let b = fill(case as u64 + 100, k * n);
            let seed_c = fill(case as u64 + 200, m * n);

            let plan = PackedGemm::pack(m, k, &a);
            assert_eq!(plan.rows(), m);
            assert_eq!(plan.depth(), k);
            let mut scratch = GemmScratch::new();
            let mut c = seed_c.clone();
            plan.gemm_into(n, &b, &mut c, &mut scratch);

            let mut expected = seed_c.clone();
            packed_gemm_model(m, k, n, &a, &b, &mut expected);
            assert_eq!(c, expected, "case {case}: {m}x{k}x{n}");

            // Re-running through the same scratch must not change results.
            let mut c2 = seed_c;
            plan.gemm_into(n, &b, &mut c2, &mut scratch);
            assert_eq!(c2, expected, "case {case} (scratch reuse)");
        }
    }

    #[test]
    fn packed_gemv_is_bit_identical_to_the_lane_ordered_model() {
        for (case, &(m, k)) in [(1, 1), (8, 8), (7, 9), (23, 57), (64, 65)]
            .iter()
            .enumerate()
        {
            let a = fill(case as u64 + 10, m * k);
            let x = fill(case as u64 + 110, k);
            let seed_y = fill(case as u64 + 210, m);

            let plan = PackedGemm::pack(m, k, &a);
            let mut y = seed_y.clone();
            plan.gemv_into(&x, &mut y);

            let mut expected = seed_y.clone();
            packed_gemv_model(m, k, &a, &x, &mut expected);
            assert_eq!(y, expected, "case {case}: {m}x{k}");

            // gemv must be the n = 1 column of gemm on the same plan.
            let mut scratch = GemmScratch::new();
            let mut y_gemm = seed_y;
            plan.gemm_into(1, &x, &mut y_gemm, &mut scratch);
            assert_eq!(y_gemm, expected, "case {case} (gemm n=1)");
        }
    }

    #[test]
    fn packed_gemm_matches_naive_within_tolerance() {
        let (m, k, n) = (17, 33, 9);
        let a = fill(42, m * k);
        let b = fill(43, k * n);
        let plan = PackedGemm::pack(m, k, &a);
        let mut scratch = GemmScratch::new();
        let mut c = vec![0.0f32; m * n];
        plan.gemm_into(n, &b, &mut c, &mut scratch);
        assert_close(&c, &naive_gemm(m, k, n, &a, &b), 1e-4);
    }

    #[test]
    fn packed_empty_dimensions_are_no_ops() {
        let plan = PackedGemm::pack(0, 5, &[]);
        let mut c: Vec<f32> = Vec::new();
        plan.gemm_into(0, &[], &mut c, &mut GemmScratch::new());

        let plan = PackedGemm::pack(2, 0, &[]);
        let mut c = vec![3.0f32; 4];
        plan.gemm_into(2, &[], &mut c, &mut GemmScratch::new());
        assert_eq!(c, vec![3.0; 4]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn packed_dimension_mismatch_panics() {
        let plan = PackedGemm::pack(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut c = vec![0.0f32; 4];
        plan.gemm_into(2, &[0.0; 3], &mut c, &mut GemmScratch::new());
    }
}
