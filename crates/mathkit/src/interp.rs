//! Interpolation over sampled waveforms and rectangular grids.
//!
//! The circuit simulator produces discretely sampled bit-line waveforms; the
//! calibration pipeline and the ADC sampling code look up voltages at
//! arbitrary times, which requires linear interpolation.  Design-space heat
//! maps use bilinear interpolation over `(parameter, parameter)` grids.

use crate::error::MathError;

/// Linearly interpolates `ys` sampled at ascending abscissae `xs` at position `x`.
///
/// Values outside the sampled range are clamped to the boundary samples,
/// which matches how a sampled waveform is extended in practice (the bit-line
/// holds its final value).
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] if `xs.len() != ys.len()`.
/// * [`MathError::InvalidArgument`] if fewer than two samples are given,
///   `xs` is not strictly ascending (which also rejects NaN abscissae), or
///   `x` is NaN.
pub fn linear(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, MathError> {
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(MathError::InvalidArgument {
            context: "linear interpolation needs at least two samples".to_string(),
        });
    }
    // Anything but `Some(Less)` — including the NaN case `None` — fails, so
    // an axis containing NaN is rejected here rather than slipping past.
    if xs
        .windows(2)
        // optima-lint: allow(R1) -- NaN rejection is the point: None != Some(Less) fails the axis
        .any(|w| w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Less))
    {
        return Err(MathError::InvalidArgument {
            context: "abscissae must be strictly ascending".to_string(),
        });
    }
    if x.is_nan() {
        return Err(MathError::InvalidArgument {
            context: "interpolation query position is NaN".to_string(),
        });
    }
    if x <= xs[0] {
        return Ok(ys[0]);
    }
    if x >= xs[xs.len() - 1] {
        return Ok(ys[ys.len() - 1]);
    }
    // Binary search for the bracketing interval (total order: never panics).
    let idx = match xs.binary_search_by(|probe| probe.total_cmp(&x)) {
        Ok(i) => return Ok(ys[i]),
        Err(i) => i,
    };
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (ys[idx - 1], ys[idx]);
    let frac = (x - x0) / (x1 - x0);
    Ok(y0 + frac * (y1 - y0))
}

/// Bilinear interpolation on a rectangular grid.
///
/// `values[i][j]` is the sample at `(xs[i], ys[j])`.  Queries outside the grid
/// are clamped to the edge.
///
/// # Errors
///
/// * [`MathError::ShapeMismatch`] if `values` is not `xs.len() × ys.len()`.
/// * [`MathError::InvalidArgument`] if either axis has fewer than two samples
///   or is not strictly ascending (which also rejects NaN abscissae), or the
///   query position is NaN.
pub fn bilinear(
    xs: &[f64],
    ys: &[f64],
    values: &[Vec<f64>],
    x: f64,
    y: f64,
) -> Result<f64, MathError> {
    if xs.len() < 2 || ys.len() < 2 {
        return Err(MathError::InvalidArgument {
            context: "bilinear interpolation needs at least a 2x2 grid".to_string(),
        });
    }
    if values.len() != xs.len() || values.iter().any(|row| row.len() != ys.len()) {
        return Err(MathError::ShapeMismatch {
            context: format!(
                "value grid must be {}x{} to match the axes",
                xs.len(),
                ys.len()
            ),
        });
    }
    // As in `linear`: anything but `Some(Less)` — including NaN's `None` —
    // rejects the axis.
    // optima-lint: allow(R1) -- NaN rejection is the point: None != Some(Less) fails the axis
    let not_ascending = |w: &[f64]| w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Less);
    if xs.windows(2).any(not_ascending) || ys.windows(2).any(not_ascending) {
        return Err(MathError::InvalidArgument {
            context: "grid axes must be strictly ascending".to_string(),
        });
    }
    if x.is_nan() || y.is_nan() {
        return Err(MathError::InvalidArgument {
            context: "interpolation query position is NaN".to_string(),
        });
    }

    let x = x.clamp(xs[0], xs[xs.len() - 1]);
    let y = y.clamp(ys[0], ys[ys.len() - 1]);
    let i = bracket(xs, x);
    let j = bracket(ys, y);
    let tx = if xs[i + 1] == xs[i] {
        0.0
    } else {
        (x - xs[i]) / (xs[i + 1] - xs[i])
    };
    let ty = if ys[j + 1] == ys[j] {
        0.0
    } else {
        (y - ys[j]) / (ys[j + 1] - ys[j])
    };
    let v00 = values[i][j];
    let v10 = values[i + 1][j];
    let v01 = values[i][j + 1];
    let v11 = values[i + 1][j + 1];
    Ok(v00 * (1.0 - tx) * (1.0 - ty)
        + v10 * tx * (1.0 - ty)
        + v01 * (1.0 - tx) * ty
        + v11 * tx * ty)
}

/// Index `i` such that `xs[i] <= x <= xs[i+1]`, clamped to valid intervals.
fn bracket(xs: &[f64], x: f64) -> usize {
    match xs.binary_search_by(|probe| probe.total_cmp(&x)) {
        Ok(i) => i.min(xs.len() - 2),
        Err(i) => i.saturating_sub(1).min(xs.len() - 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolation_midpoint() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 40.0];
        assert_eq!(linear(&xs, &ys, 0.5).unwrap(), 5.0);
        assert_eq!(linear(&xs, &ys, 1.5).unwrap(), 25.0);
        assert_eq!(linear(&xs, &ys, 1.0).unwrap(), 10.0);
    }

    #[test]
    fn linear_interpolation_clamps_out_of_range() {
        let xs = [0.0, 1.0];
        let ys = [2.0, 3.0];
        assert_eq!(linear(&xs, &ys, -5.0).unwrap(), 2.0);
        assert_eq!(linear(&xs, &ys, 5.0).unwrap(), 3.0);
    }

    #[test]
    fn linear_interpolation_validates_input() {
        assert!(linear(&[0.0], &[1.0], 0.0).is_err());
        assert!(linear(&[0.0, 1.0], &[1.0], 0.5).is_err());
        assert!(linear(&[1.0, 0.0], &[1.0, 2.0], 0.5).is_err());
    }

    #[test]
    fn linear_interpolation_rejects_nan_instead_of_panicking() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 40.0];
        // NaN query: typed error, no panic from the interval search.
        assert!(matches!(
            linear(&xs, &ys, f64::NAN),
            Err(MathError::InvalidArgument { .. })
        ));
        // NaN abscissa: rejected by the ascending check.
        assert!(matches!(
            linear(&[0.0, f64::NAN, 2.0], &ys, 0.5),
            Err(MathError::InvalidArgument { .. })
        ));
        // Infinite queries still clamp like any other out-of-range position.
        assert_eq!(linear(&xs, &ys, f64::INFINITY).unwrap(), 40.0);
        assert_eq!(linear(&xs, &ys, f64::NEG_INFINITY).unwrap(), 0.0);
    }

    #[test]
    fn bilinear_interpolation_on_plane() {
        // f(x, y) = 2x + 3y is reproduced exactly by bilinear interpolation.
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 1.0];
        let values: Vec<Vec<f64>> = xs
            .iter()
            .map(|&x| ys.iter().map(|&y| 2.0 * x + 3.0 * y).collect())
            .collect();
        let v = bilinear(&xs, &ys, &values, 1.5, 0.5).unwrap();
        assert!((v - 4.5).abs() < 1e-12);
    }

    #[test]
    fn bilinear_clamps_to_grid() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        let values = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        assert_eq!(bilinear(&xs, &ys, &values, -1.0, -1.0).unwrap(), 0.0);
        assert_eq!(bilinear(&xs, &ys, &values, 2.0, 2.0).unwrap(), 3.0);
    }

    #[test]
    fn bilinear_validates_shapes() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        assert!(bilinear(&xs, &ys, &[vec![0.0, 1.0]], 0.5, 0.5).is_err());
        assert!(bilinear(&[0.0], &ys, &[vec![0.0, 1.0]], 0.5, 0.5).is_err());
        assert!(bilinear(
            &[1.0, 0.0],
            &ys,
            &[vec![0.0, 1.0], vec![0.0, 1.0]],
            0.5,
            0.5
        )
        .is_err());
    }

    #[test]
    fn bilinear_rejects_nan_instead_of_panicking() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        let values = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        assert!(matches!(
            bilinear(&xs, &ys, &values, f64::NAN, 0.5),
            Err(MathError::InvalidArgument { .. })
        ));
        assert!(matches!(
            bilinear(&xs, &ys, &values, 0.5, f64::NAN),
            Err(MathError::InvalidArgument { .. })
        ));
        assert!(matches!(
            bilinear(&[0.0, f64::NAN], &ys, &values, 0.5, 0.5),
            Err(MathError::InvalidArgument { .. })
        ));
    }
}
