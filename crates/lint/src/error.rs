//! Typed errors of the lint pass (the linter practises the panic hygiene
//! it preaches).

use std::fmt;

/// A failure of the lint run itself — findings are *results*, not errors.
#[derive(Debug)]
pub enum LintError {
    /// Reading a source file or the config failed.
    Io {
        path: String,
        source: std::io::Error,
    },
    /// `lint.toml` is malformed.
    Config {
        path: String,
        line: u32,
        message: String,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "I/O error on {path}: {source}"),
            LintError::Config {
                path,
                line,
                message,
            } => write!(f, "{path}:{line}: config error: {message}"),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::Config { .. } => None,
        }
    }
}
