//! Human and JSON rendering of a lint [`Outcome`].
//!
//! The JSON form is hand-rolled (the workspace vendors no serde_json) and
//! intentionally flat: a schema tag, the finding list, and per-rule counts,
//! so CI scripts can assert on it with `grep`/`jq` alike.

use crate::{Finding, Outcome};
use std::collections::BTreeMap;

/// Renders findings as `file:line:col: RULE [severity]: message` lines plus
/// a one-line summary.
pub fn render_human(outcome: &Outcome) -> String {
    let mut out = String::new();
    for finding in &outcome.findings {
        out.push_str(&format!(
            "{}:{}:{}: {} [{}]: {}\n",
            finding.file,
            finding.line,
            finding.col,
            finding.rule,
            finding.severity.name(),
            finding.message
        ));
    }
    out.push_str(&summary_line(outcome));
    out.push('\n');
    out
}

/// The trailing summary line of the human report.
pub fn summary_line(outcome: &Outcome) -> String {
    if outcome.findings.is_empty() {
        format!(
            "optima-lint: clean — {} files scanned, 0 findings ({} suppressed by allow)",
            outcome.files_scanned, outcome.suppressed
        )
    } else {
        format!(
            "optima-lint: {} finding(s) in {} files scanned ({} suppressed by allow)",
            outcome.findings.len(),
            outcome.files_scanned,
            outcome.suppressed
        )
    }
}

/// Renders the outcome as a JSON document (`optima-lint.v1` schema).
pub fn render_json(outcome: &Outcome) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for finding in &outcome.findings {
        *counts.entry(finding.rule.as_str()).or_default() += 1;
    }
    let mut out = String::from("{\n  \"schema\": \"optima-lint.v1\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"suppressed\": {},\n",
        outcome.files_scanned, outcome.suppressed
    ));
    out.push_str("  \"counts\": {");
    let count_items: Vec<String> = counts
        .iter()
        .map(|(rule, n)| format!("\"{rule}\": {n}"))
        .collect();
    out.push_str(&count_items.join(", "));
    out.push_str("},\n  \"findings\": [");
    for (i, finding) in outcome.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&finding_json(finding));
    }
    if !outcome.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn finding_json(finding: &Finding) -> String {
    format!(
        "{{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"severity\": {}, \
         \"message\": {}}}",
        escape(&finding.file),
        finding.line,
        finding.col,
        escape(&finding.rule),
        escape(finding.severity.name()),
        escape(&finding.message)
    )
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Severity;

    fn sample() -> Outcome {
        Outcome {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                col: 7,
                rule: "R1".into(),
                severity: Severity::Deny,
                message: "say \"no\" to partial_cmp".into(),
            }],
            files_scanned: 2,
            suppressed: 1,
        }
    }

    #[test]
    fn human_report_has_span_rule_and_summary() {
        let text = render_human(&sample());
        assert!(text.contains("crates/x/src/lib.rs:3:7: R1 [deny]:"));
        assert!(text.contains("1 finding(s) in 2 files scanned (1 suppressed by allow)"));
    }

    #[test]
    fn clean_summary_says_clean() {
        let outcome = Outcome {
            findings: Vec::new(),
            files_scanned: 5,
            suppressed: 2,
        };
        assert!(summary_line(&outcome).contains("clean"));
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let json = render_json(&sample());
        assert!(json.contains("\"schema\": \"optima-lint.v1\""));
        assert!(json.contains("\"counts\": {\"R1\": 1}"));
        assert!(json.contains("say \\\"no\\\" to partial_cmp"));
        assert!(json.contains("\"files_scanned\": 2"));
    }
}
