//! The project rules, matched over the token stream of [`crate::lexer`].
//!
//! * **R1 float-ordering** — `partial_cmp` anywhere in code.  Floats are
//!   not totally ordered; a `partial_cmp`-based comparator panics or goes
//!   order-dependent on NaN, which has already broken deterministic sweeps
//!   twice in this repo.  Use `total_cmp`, or annotate deliberate
//!   NaN-*rejection* checks with an `allow(R1)` justification.
//! * **R2 nondeterminism** — ambient entropy (`thread_rng`,
//!   `from_entropy`, `rand::random`), wall clocks (`Instant::now`,
//!   `SystemTime::now`) and unordered collections (`HashMap`/`HashSet`)
//!   outside the configured timing/bench allowlist.  The sweep discipline
//!   requires seeded streams and ordered collections so results are
//!   bit-identical at any thread count.
//! * **R3 panic-hygiene** — `unwrap()`, `expect()`, `panic!`, `todo!`,
//!   `unimplemented!` in non-test library code of the configured crates;
//!   library paths must return the typed crate errors instead.
//! * **R4 hot-path allocation** — `Vec::new`, `vec![]`, `to_vec`,
//!   `collect`, `clone`, `String` construction and friends inside regions
//!   bracketed by `optima-lint: hot` / `end-hot` comments (the GEMM inner
//!   kernels, the flat-LUT quantized path, the batched Horner evaluator).

use crate::lexer::{LexedFile, Token};

/// Static description of one rule.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    /// Whether the rule applies inside test regions unless the config says
    /// otherwise.
    pub default_include_tests: bool,
}

/// Rule id of directive-hygiene findings (malformed `optima-lint:`
/// comments, missing justifications, unknown rule ids, stale
/// suppressions).  Not configurable and not suppressible.
pub const DIRECTIVE_RULE: &str = "directive";

const RULES: [RuleInfo; 4] = [
    RuleInfo {
        id: "R1",
        summary: "float ordering must use total_cmp (partial_cmp is not a total order)",
        default_include_tests: true,
    },
    RuleInfo {
        id: "R2",
        summary: "no ambient entropy, wall clocks or unordered collections (seeded streams only)",
        default_include_tests: true,
    },
    RuleInfo {
        id: "R3",
        summary: "library code returns typed errors; no unwrap/expect/panic outside tests",
        default_include_tests: false,
    },
    RuleInfo {
        id: "R4",
        summary: "no allocation inside `optima-lint: hot` regions",
        default_include_tests: false,
    },
];

/// All lintable rules (the directive meta-rule is separate).
pub fn all() -> &'static [RuleInfo] {
    &RULES
}

/// `true` when `id` names a lintable rule (valid inside `allow(…)`).
pub fn is_known(id: &str) -> bool {
    RULES.iter().any(|rule| rule.id == id)
}

/// Comma-separated rule ids, for error messages.
pub fn id_list() -> String {
    RULES
        .iter()
        .map(|rule| rule.id)
        .collect::<Vec<_>>()
        .join(", ")
}

/// A raw rule match, before suppression and severity resolution.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// Context handed to the matcher: which token indices are test code and
/// which lines lie inside a hot region.
pub struct ScanContext<'a> {
    /// Per-token: inside a `#[cfg(test)]` / `mod tests` region.
    pub in_test: &'a [bool],
    /// Inclusive line ranges bracketed by hot directives.
    pub hot_ranges: &'a [(u32, u32)],
}

impl ScanContext<'_> {
    fn is_hot_line(&self, line: u32) -> bool {
        self.hot_ranges
            .iter()
            .any(|&(start, end)| line > start && line < end)
    }
}

/// Runs all four rules over a lexed file.  Enablement, path allowlists and
/// test-region inclusion are decided by the caller per rule id via
/// `enabled`; this keeps the matcher independent of the config.
pub fn scan(
    file: &LexedFile,
    ctx: &ScanContext<'_>,
    enabled: impl Fn(&str, bool) -> bool,
) -> Vec<RawFinding> {
    let tokens = &file.tokens;
    let mut findings = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        let Some(name) = token.ident() else { continue };
        let in_test = ctx.in_test[i];
        if enabled("R1", in_test) {
            if let Some(message) = match_r1(name, tokens, i) {
                findings.push(raw("R1", token, message));
            }
        }
        if enabled("R2", in_test) {
            if let Some(message) = match_r2(name, tokens, i) {
                findings.push(raw("R2", token, message));
            }
        }
        if enabled("R3", in_test) {
            if let Some(message) = match_r3(name, tokens, i) {
                findings.push(raw("R3", token, message));
            }
        }
        if enabled("R4", in_test) && ctx.is_hot_line(token.line) {
            if let Some(message) = match_r4(name, tokens, i) {
                findings.push(raw("R4", token, message));
            }
        }
    }
    findings
}

fn raw(rule: &'static str, token: &Token, message: String) -> RawFinding {
    RawFinding {
        rule,
        line: token.line,
        col: token.col,
        message,
    }
}

/// `tokens[i-2..i]` is `::` and `tokens[i-3]` is the identifier `head`.
fn path_prefix_is(tokens: &[Token], i: usize, head: &str) -> bool {
    i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].ident() == Some(head)
}

fn preceded_by_dot(tokens: &[Token], i: usize) -> bool {
    i >= 1 && tokens[i - 1].is_punct('.')
}

fn followed_by(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(c))
}

fn match_r1(name: &str, tokens: &[Token], i: usize) -> Option<String> {
    if name != "partial_cmp" {
        return None;
    }
    let detail = if r1_unwrapped_after_args(tokens, i) {
        "`partial_cmp(..).unwrap()` panics on NaN"
    } else {
        "`partial_cmp` is not a total order (NaN compares as None)"
    };
    Some(format!(
        "{detail}; sorts, extrema and comparators must use `total_cmp` so NaN inputs stay \
         deterministic — or justify a deliberate NaN-rejecting comparison with \
         `// optima-lint: allow(R1) -- <why>`"
    ))
}

/// Detects `partial_cmp( … ).unwrap()` / `.expect(` after the balanced
/// argument list.
fn r1_unwrapped_after_args(tokens: &[Token], i: usize) -> bool {
    let mut j = i + 1;
    if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let mut depth = 0usize;
    while let Some(token) = tokens.get(j) {
        if token.is_punct('(') {
            depth += 1;
        } else if token.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    tokens.get(j + 1).is_some_and(|t| t.is_punct('.'))
        && matches!(
            tokens.get(j + 2).and_then(Token::ident),
            Some("unwrap") | Some("expect")
        )
}

fn match_r2(name: &str, tokens: &[Token], i: usize) -> Option<String> {
    match name {
        "thread_rng" => Some(
            "`thread_rng` draws ambient OS entropy; derive a per-item stream from the base seed \
             (`SplitMix64` via `stream_seed`, or a seeded `ChaCha8Rng`) so sweeps replay \
             bit-identically"
                .to_string(),
        ),
        "from_entropy" => Some(
            "`from_entropy` seeds from the OS; use `seed_from_u64` with a seed derived from the \
             experiment's base seed"
                .to_string(),
        ),
        "random" if path_prefix_is(tokens, i, "rand") => Some(
            "`rand::random` uses the ambient thread RNG; use an explicitly seeded generator"
                .to_string(),
        ),
        "now"
            if path_prefix_is(tokens, i, "Instant") || path_prefix_is(tokens, i, "SystemTime") =>
        {
            Some(
                "wall-clock reads make output run-dependent; keep timing in the allowlisted \
                 timing/bench modules (lint.toml `[rules.R2] allow_paths`) and out of model code"
                    .to_string(),
            )
        }
        "HashMap" | "HashSet" => Some(format!(
            "`{name}` iteration order is nondeterministic across processes; use \
             `BTreeMap`/`BTreeSet`/`Vec`, or justify a non-iterated use with \
             `// optima-lint: allow(R2) -- <why>`"
        )),
        _ => None,
    }
}

fn match_r3(name: &str, tokens: &[Token], i: usize) -> Option<String> {
    match name {
        "unwrap" | "expect" if preceded_by_dot(tokens, i) && followed_by(tokens, i, '(') => {
            Some(format!(
                "`.{name}()` panics in library code; return the crate's typed error \
                 (`MathError`/`CircuitError`/`ModelError`/`ImcError`/`DnnError`) instead, or \
                 justify a checked invariant with `// optima-lint: allow(R3) -- <why>`"
            ))
        }
        "panic" | "todo" | "unimplemented" if followed_by(tokens, i, '!') => Some(format!(
            "`{name}!` aborts the sweep worker; library code must surface failures through the \
             typed error enums"
        )),
        _ => None,
    }
}

fn match_r4(name: &str, tokens: &[Token], i: usize) -> Option<String> {
    let what = match name {
        "vec" if followed_by(tokens, i, '!') => "`vec![…]` allocates",
        "format" if followed_by(tokens, i, '!') => "`format!` allocates a String",
        "new" | "with_capacity"
            if path_prefix_is(tokens, i, "Vec")
                || path_prefix_is(tokens, i, "String")
                || path_prefix_is(tokens, i, "Box") =>
        {
            "heap construction allocates"
        }
        "from" if path_prefix_is(tokens, i, "String") => "`String::from` allocates",
        "to_vec" | "to_owned" | "to_string" | "collect" | "clone" if preceded_by_dot(tokens, i) => {
            "this call allocates (or deep-copies) per iteration"
        }
        _ => return None,
    };
    Some(format!(
        "{what} inside a `optima-lint: hot` region; hoist the buffer out of the kernel and reuse \
         it (see the scratch-slice pattern in `mathkit::gemm`)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_all(source: &str, hot: &[(u32, u32)]) -> Vec<RawFinding> {
        let file = lex(source);
        let in_test = vec![false; file.tokens.len()];
        let ctx = ScanContext {
            in_test: &in_test,
            hot_ranges: hot,
        };
        scan(&file, &ctx, |_, _| true)
    }

    fn rule_ids(findings: &[RawFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn r1_matches_partial_cmp_and_flags_unwrap_flavour() {
        let findings = scan_all("xs.sort_by(|a, b| a.partial_cmp(b).unwrap());", &[]);
        assert_eq!(rule_ids(&findings), vec!["R1", "R3"]);
        assert!(findings[0].message.contains("panics on NaN"));
        let findings = scan_all("if a.partial_cmp(&b) != Some(Less) {}", &[]);
        assert_eq!(rule_ids(&findings), vec!["R1"]);
        assert!(findings[0].message.contains("not a total order"));
    }

    #[test]
    fn r1_ignores_total_cmp_and_strings() {
        assert!(scan_all("xs.sort_by(|a, b| a.total_cmp(b));", &[]).is_empty());
        assert!(scan_all("let s = \"partial_cmp\";", &[]).is_empty());
    }

    #[test]
    fn r2_matches_entropy_clocks_and_unordered_collections() {
        let src = "let r = thread_rng(); let t = Instant::now(); let m: HashMap<u8, u8>;";
        assert_eq!(rule_ids(&scan_all(src, &[])), vec!["R2", "R2", "R2"]);
        let src = "let x: u8 = rand::random(); let rng = ChaCha8Rng::from_entropy();";
        assert_eq!(rule_ids(&scan_all(src, &[])), vec!["R2", "R2"]);
    }

    #[test]
    fn r2_does_not_match_seeded_streams_or_other_now() {
        assert!(scan_all("let rng = ChaCha8Rng::seed_from_u64(7);", &[]).is_empty());
        // A method *called* now on some other type is not a wall clock.
        assert!(scan_all("let t = clock.now();", &[]).is_empty());
    }

    #[test]
    fn r3_matches_panicky_calls_and_macros() {
        let src = "let v = maybe.unwrap(); other.expect(\"msg\"); panic!(\"boom\"); todo!()";
        assert_eq!(rule_ids(&scan_all(src, &[])), vec!["R3", "R3", "R3", "R3"]);
    }

    #[test]
    fn r3_ignores_related_but_safe_names() {
        let src = "let v = maybe.unwrap_or(0); let w = maybe.unwrap_or_else(f); expect(1);";
        assert!(scan_all(src, &[]).is_empty());
    }

    #[test]
    fn r4_only_fires_inside_hot_ranges() {
        let src = "fn f() {\nlet v = vec![0; 8];\nlet w = xs.to_vec();\n}\n";
        assert!(scan_all(src, &[]).is_empty());
        let findings = scan_all(src, &[(1, 4)]);
        assert_eq!(rule_ids(&findings), vec!["R4", "R4"]);
    }

    #[test]
    fn r4_matches_the_full_allocation_surface() {
        let src = "\nlet a = Vec::new(); let b = String::from(\"x\"); let c = d.clone();\n\
                   let e = it.collect(); let f = format!(\"{a}\"); let g = Box::new(1);\n";
        let findings = scan_all(src, &[(1, 9)]);
        assert_eq!(findings.len(), 6);
        assert!(findings.iter().all(|f| f.rule == "R4"));
    }
}
