//! `optima-lint` — the workspace static-analysis pass.
//!
//! The repo's core promise — bit-identical reproduction of the paper's
//! figures at any thread count — rests on conventions that have each
//! regressed at least once when enforced only by review: `total_cmp`
//! instead of `partial_cmp`, seeded RNG streams instead of ambient
//! entropy, typed errors instead of panics, and allocation-free inner
//! kernels.  This crate turns those conventions into machine-checked rules
//! (see [`rules`]) over a hand-rolled token-level lexer ([`lexer`]), with
//! inline suppression directives ([`directives`]) and a checked-in
//! `lint.toml` ([`config`]).
//!
//! Entry points: [`lint_source`] for one file (used by the fixture tests),
//! [`run_workspace`] for the full tree (used by the `optima-lint` binary
//! and the `lint_audit` experiment).

pub mod config;
pub mod directives;
pub mod error;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::{Config, Severity};
pub use error::LintError;

use config::path_matches;
use lexer::{LexedFile, TokenKind};
use std::path::{Path, PathBuf};

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// `R1`…`R4`, or [`rules::DIRECTIVE_RULE`].
    pub rule: String,
    pub severity: Severity,
    pub message: String,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    pub findings: Vec<Finding>,
    /// Findings suppressed by a justified `allow` directive.
    pub suppressed: usize,
}

/// Result of a workspace run.
#[derive(Debug, Default)]
pub struct Outcome {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub suppressed: usize,
}

impl Outcome {
    /// `true` when the run should fail: any deny finding, or any finding at
    /// all in `--deny` mode.
    pub fn fails(&self, deny: bool) -> bool {
        self.findings
            .iter()
            .any(|f| deny || f.severity == Severity::Deny)
    }
}

/// Lints one file's source text.  `rel_path` is the workspace-relative
/// path used for the config's path allowlists and for reporting.
pub fn lint_source(rel_path: &str, source: &str, config: &Config) -> FileOutcome {
    let file = lexer::lex(source);
    let in_test = test_regions(&file);
    let parsed = directives::parse(&file);

    let enabled = |rule_id: &str, token_in_test: bool| {
        let rule_config = config.rule(rule_id);
        if rule_config.severity == Severity::Off {
            return false;
        }
        if token_in_test && !rule_config.include_tests {
            return false;
        }
        if !rule_config.paths.is_empty() && !path_matches(rel_path, &rule_config.paths) {
            return false;
        }
        !path_matches(rel_path, &rule_config.allow_paths)
    };
    let ctx = rules::ScanContext {
        in_test: &in_test,
        hot_ranges: &parsed.hot_ranges,
    };
    let raw = rules::scan(&file, &ctx, enabled);

    // Apply suppressions: an allow covers findings of its listed rules on
    // its target line; every (allow, rule) pair must suppress something.
    let mut outcome = FileOutcome::default();
    let mut used: Vec<Vec<bool>> = parsed
        .allows
        .iter()
        .map(|allow| vec![false; allow.rules.len()])
        .collect();
    for finding in raw {
        let mut suppressed = false;
        for (a, allow) in parsed.allows.iter().enumerate() {
            if allow.target_line != finding.line {
                continue;
            }
            for (rule_index, rule_id) in allow.rules.iter().enumerate() {
                if rule_id == finding.rule {
                    used[a][rule_index] = true;
                    suppressed = true;
                }
            }
        }
        if suppressed {
            outcome.suppressed += 1;
        } else {
            outcome.findings.push(Finding {
                file: rel_path.to_string(),
                line: finding.line,
                col: finding.col,
                rule: finding.rule.to_string(),
                severity: config.rule(finding.rule).severity,
                message: finding.message,
            });
        }
    }
    for (a, allow) in parsed.allows.iter().enumerate() {
        for (rule_index, rule_id) in allow.rules.iter().enumerate() {
            // A suppression for a disabled rule is not stale — turning a
            // rule off must not invalidate every annotation.
            let rule_off = config.rule(rule_id).severity == Severity::Off;
            if !used[a][rule_index] && !rule_off {
                outcome.findings.push(directive_finding(
                    rel_path,
                    allow.line,
                    allow.col,
                    format!(
                        "stale suppression: `allow({rule_id})` matches no {rule_id} finding on \
                         line {} — remove it (or move it next to the code it justifies)",
                        allow.target_line
                    ),
                ));
            }
        }
    }
    for (line, col, message) in parsed.malformed {
        outcome
            .findings
            .push(directive_finding(rel_path, line, col, message));
    }
    outcome
        .findings
        .sort_by_key(|f| (f.line, f.col, f.rule.clone()));
    outcome
}

fn directive_finding(rel_path: &str, line: u32, col: u32, message: String) -> Finding {
    Finding {
        file: rel_path.to_string(),
        line,
        col,
        rule: rules::DIRECTIVE_RULE.to_string(),
        severity: Severity::Deny,
        message,
    }
}

/// Per-token flag: inside a `#[cfg(test)]`-gated item or a `mod tests`
/// block.  Attributes containing the identifier `test` gate the next
/// braced item — except `cfg(not(test))`, which is production code.
fn test_regions(file: &LexedFile) -> Vec<bool> {
    let tokens = &file.tokens;
    let mut in_test = vec![false; tokens.len()];
    let mut depth = 0usize;
    let mut test_depths: Vec<usize> = Vec::new();
    let mut pending_test = false;
    let mut i = 0;
    while i < tokens.len() {
        let token = &tokens[i];
        if token.is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Scan the attribute to its matching `]`.
            let start = i + 2;
            let mut j = start;
            let mut bracket_depth = 1usize;
            while j < tokens.len() && bracket_depth > 0 {
                if tokens[j].is_punct('[') {
                    bracket_depth += 1;
                } else if tokens[j].is_punct(']') {
                    bracket_depth -= 1;
                }
                j += 1;
            }
            if attr_gates_test(&tokens[start..j.saturating_sub(1)]) {
                pending_test = true;
            }
            for slot in in_test.iter_mut().take(j).skip(i) {
                *slot = !test_depths.is_empty();
            }
            i = j;
            continue;
        }
        match &token.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                if pending_test {
                    test_depths.push(depth);
                    pending_test = false;
                }
            }
            TokenKind::Punct('}') => {
                if test_depths.last() == Some(&depth) {
                    test_depths.pop();
                }
                depth = depth.saturating_sub(1);
            }
            TokenKind::Punct(';') => pending_test = false,
            TokenKind::Ident(name)
                if name == "mod" && tokens.get(i + 1).and_then(|t| t.ident()) == Some("tests") =>
            {
                pending_test = true;
            }
            _ => {}
        }
        in_test[i] = !test_depths.is_empty();
        i += 1;
    }
    in_test
}

/// `true` when an attribute's token body gates test-only code: contains the
/// identifier `test` not wrapped in `not(…)`.
fn attr_gates_test(attr: &[lexer::Token]) -> bool {
    attr.iter().enumerate().any(|(k, token)| {
        token.ident() == Some("test")
            && !(k >= 2 && attr[k - 1].is_punct('(') && attr[k - 2].ident() == Some("not"))
    })
}

/// Collects the workspace-relative paths of all `.rs` files in the scan
/// set, sorted for deterministic output.
pub fn collect_files(root: &Path, config: &Config) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    for include in &config.include {
        let base = if include == "." {
            root.to_path_buf()
        } else {
            root.join(include)
        };
        if base.is_dir() {
            walk(root, &base, &config.exclude, &mut files)?;
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    files: &mut Vec<PathBuf>,
) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.display().to_string(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.display().to_string(),
            source,
        })?;
        let path = entry.path();
        let rel = relative_path(root, &path);
        if path_matches(&rel, exclude) || rel.split('/').any(|part| part.starts_with('.')) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, exclude, files)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative forward-slash form of `path`.
fn relative_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints every `.rs` file of the workspace under `root` per `config`.
///
/// # Errors
///
/// [`LintError::Io`] when a directory or file cannot be read; findings are
/// *not* errors.
pub fn run_workspace(root: &Path, config: &Config) -> Result<Outcome, LintError> {
    let mut outcome = Outcome::default();
    for path in collect_files(root, config)? {
        let source = std::fs::read_to_string(&path).map_err(|source| LintError::Io {
            path: path.display().to_string(),
            source,
        })?;
        let rel = relative_path(root, &path);
        let file_outcome = lint_source(&rel, &source, config);
        outcome.findings.extend(file_outcome.findings);
        outcome.suppressed += file_outcome.suppressed;
        outcome.files_scanned += 1;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(source: &str) -> FileOutcome {
        lint_source("crates/x/src/lib.rs", source, &Config::default())
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_r3_but_not_r1() {
        let src = "\
#[cfg(test)]
mod tests {
    fn helper() {
        let v = maybe.unwrap();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
";
        let outcome = lint(src);
        let ids: Vec<&str> = outcome.findings.iter().map(|f| f.rule.as_str()).collect();
        // R3 (include_tests = false) is silent; R1 (include_tests = true)
        // still fires inside the test module.
        assert_eq!(ids, vec!["R1"]);
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn init() { let v = maybe.unwrap(); }\n";
        let outcome = lint(src);
        assert_eq!(outcome.findings.len(), 1);
        assert_eq!(outcome.findings[0].rule, "R3");
    }

    #[test]
    fn cfg_test_gated_function_is_exempt() {
        let src = "#[cfg(test)]\nfn helper() { let v = maybe.unwrap(); }\n";
        assert!(lint(src).findings.is_empty());
    }

    #[test]
    fn justified_allow_suppresses_and_counts() {
        let src = "\
// optima-lint: allow(R3) -- the slice is non-empty by construction
let last = values.last().unwrap();
";
        let outcome = lint(src);
        assert!(outcome.findings.is_empty(), "{:?}", outcome.findings);
        assert_eq!(outcome.suppressed, 1);
    }

    #[test]
    fn stale_allow_is_a_directive_finding() {
        let src = "// optima-lint: allow(R1) -- nothing here uses it\nlet x = 1;\n";
        let outcome = lint(src);
        assert_eq!(outcome.findings.len(), 1);
        assert_eq!(outcome.findings[0].rule, rules::DIRECTIVE_RULE);
        assert!(outcome.findings[0].message.contains("stale suppression"));
    }

    #[test]
    fn unjustified_allow_is_a_directive_finding_and_does_not_suppress() {
        let src = "let v = maybe.unwrap(); // optima-lint: allow(R3)\n";
        let outcome = lint(src);
        let ids: Vec<&str> = outcome.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(ids.contains(&"R3"));
        assert!(ids.contains(&rules::DIRECTIVE_RULE));
    }

    #[test]
    fn severity_off_disables_a_rule_without_staling_its_allows() {
        let mut config = Config::default();
        config.rules.get_mut("R3").expect("R3 exists").severity = Severity::Off;
        let src = "\
// optima-lint: allow(R3) -- would suppress when the rule is on
let v = maybe.unwrap();
";
        let outcome = lint_source("crates/x/src/lib.rs", src, &config);
        assert!(outcome.findings.is_empty(), "{:?}", outcome.findings);
    }

    #[test]
    fn rule_paths_restrict_and_allow_paths_exempt() {
        let mut config = Config::default();
        config.rules.get_mut("R3").expect("R3 exists").paths = vec!["crates/imc/src".to_string()];
        config.rules.get_mut("R2").expect("R2 exists").allow_paths =
            vec!["crates/bench/".to_string()];
        let src = "fn f() { let v = x.unwrap(); let t = Instant::now(); }\n";
        let in_scope = lint_source("crates/imc/src/fom.rs", src, &config);
        let ids: Vec<&str> = in_scope.findings.iter().map(|f| f.rule.as_str()).collect();
        // Findings sort by span, and `.unwrap()` precedes `Instant::now()`.
        assert_eq!(ids, vec!["R3", "R2"]);
        let out_of_scope = lint_source("crates/bench/src/lib.rs", src, &config);
        assert!(out_of_scope.findings.is_empty());
    }

    #[test]
    fn outcome_failure_respects_severity_and_deny_mode() {
        let mut warn_outcome = Outcome::default();
        warn_outcome.findings.push(Finding {
            file: "f.rs".into(),
            line: 1,
            col: 1,
            rule: "R1".into(),
            severity: Severity::Warn,
            message: "m".into(),
        });
        assert!(!warn_outcome.fails(false));
        assert!(warn_outcome.fails(true));
    }
}
