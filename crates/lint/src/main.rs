//! The `optima-lint` binary.
//!
//! ```text
//! optima-lint [--root DIR] [--config FILE] [--json] [--deny] [--check-config]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (per severity policy), `2` usage,
//! config or I/O error.  `--deny` promotes `warn` findings to failures (CI
//! mode); `--check-config` verifies that `lint.toml` parses and that every
//! `allow` directive is well-formed, justified, and names an existing,
//! non-stale rule — reporting only directive-hygiene findings.

use optima_lint::{report, rules, Config, LintError, Outcome};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    deny: bool,
    check_config: bool,
}

const USAGE: &str = "usage: optima-lint [--root DIR] [--config FILE] [--json] [--deny] \
                     [--check-config]\n\
                     \n\
                     Scans every workspace .rs file against the project rules:\n\
                     R1 float-ordering, R2 nondeterminism, R3 panic-hygiene, R4 hot-path\n\
                     allocation (see lint.toml and the README \"Static analysis\" section).";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        deny: false,
        check_config: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    argv.next()
                        .ok_or_else(|| "--root needs a value".to_string())?,
                );
            }
            "--config" => {
                args.config = Some(PathBuf::from(
                    argv.next()
                        .ok_or_else(|| "--config needs a value".to_string())?,
                ));
            }
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--check-config" => args.check_config = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unrecognised argument {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<Outcome, LintError> {
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let config = Config::load(&config_path)?;
    let mut outcome = optima_lint::run_workspace(&args.root, &config)?;
    if args.check_config {
        // Directive hygiene only: lint.toml parsed above; keep just the
        // malformed/unknown/stale-suppression findings.
        outcome.findings.retain(|f| f.rule == rules::DIRECTIVE_RULE);
    }
    Ok(outcome)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let outcome = match run(&args) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        print!("{}", report::render_json(&outcome));
    } else {
        print!("{}", report::render_human(&outcome));
    }
    if outcome.fails(args.deny) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
