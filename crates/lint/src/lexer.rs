//! A hand-rolled token-level Rust lexer.
//!
//! The rules in [`crate::rules`] only need to see *code* tokens — an
//! occurrence of `partial_cmp` inside a string literal, a nested block
//! comment or a raw string must never produce a finding.  This lexer
//! therefore handles the full Rust literal surface (regular/raw/byte
//! strings, char literals vs. lifetimes, nested block comments, doc
//! comments) but deliberately stops short of parsing: its output is a flat
//! token stream with `line:col` spans plus the comment list the directive
//! layer (`optima-lint:` comments) is built on.

/// A non-comment token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

/// Token classification; rules only ever inspect identifiers and
/// punctuation, but literal kinds are kept so mislexing shows up in tests.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Punct(char),
    /// `"…"` or `b"…"`.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#` with any number of `#`s.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    Number,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// `true` when the token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Comment flavour; only plain (non-doc) comments may carry
/// `optima-lint:` directives, so doc text *describing* the directive syntax
/// can never accidentally open a hot region or suppress a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentKind {
    Line,
    Block,
    DocLine,
    DocBlock,
}

/// A comment with its body text (delimiters stripped) and span.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    pub kind: CommentKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// `true` when no code token precedes the comment on its own line
    /// (a standalone comment applies directives to the *next* code line;
    /// a trailing comment applies them to its own line).
    pub own_line: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments.  The lexer is total: malformed
/// input (e.g. an unterminated string) consumes to end of file rather than
/// failing, which is the right behaviour for a linter that must keep
/// scanning the rest of the workspace.
pub fn lex(source: &str) -> LexedFile {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: LexedFile,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: LexedFile::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokenKind, line: u32, col: u32) {
        self.out.tokens.push(Token { kind, line, col });
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '"' => {
                    self.string_literal();
                    self.push_token(TokenKind::Str, line, col);
                }
                'r' if matches!(self.peek(1), Some('"') | Some('#')) => {
                    self.raw_or_ident(line, col, 1);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal();
                    self.push_token(TokenKind::Str, line, col);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal();
                    self.push_token(TokenKind::Char, line, col);
                }
                'b' if self.peek(1) == Some('r')
                    && matches!(self.peek(2), Some('"') | Some('#')) =>
                {
                    self.bump();
                    self.raw_or_ident(line, col, 1);
                }
                '\'' => self.lifetime_or_char(line, col),
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push_token(TokenKind::Number, line, col);
                }
                c if c.is_alphabetic() || c == '_' => {
                    let name = self.ident();
                    self.push_token(TokenKind::Ident(name), line, col);
                }
                c => {
                    self.bump();
                    self.push_token(TokenKind::Punct(c), line, col);
                }
            }
        }
        self.mark_own_line_comments();
        self.out
    }

    /// After lexing, decide for each comment whether a code token precedes
    /// it on the same line (directive targeting depends on this).
    fn mark_own_line_comments(&mut self) {
        for comment in &mut self.out.comments {
            comment.own_line = !self
                .out
                .tokens
                .iter()
                .any(|t| t.line == comment.line && t.col < comment.col);
        }
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump();
        // `///` (but not the `////…` ruler idiom) and `//!` are doc comments.
        let kind = match (self.peek(0), self.peek(1)) {
            (Some('/'), Some('/')) => CommentKind::Line,
            (Some('/'), _) | (Some('!'), _) => CommentKind::DocLine,
            _ => CommentKind::Line,
        };
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            kind,
            text: text.trim_matches(['/', '!']).trim().to_string(),
            line,
            col,
            own_line: false,
        });
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump();
        // `/**` (but not `/**/`) and `/*!` open doc comments.
        let kind = match (self.peek(0), self.peek(1)) {
            (Some('*'), Some('/')) => CommentKind::Block,
            (Some('*'), _) | (Some('!'), _) => CommentKind::DocBlock,
            _ => CommentKind::Block,
        };
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated: consume to EOF
            }
        }
        self.out.comments.push(Comment {
            kind,
            text: text.trim_matches(['*', '!']).trim().to_string(),
            line,
            col,
            own_line: false,
        });
    }

    /// Consumes a `"…"` body (opening quote at the cursor), honouring
    /// backslash escapes.
    fn string_literal(&mut self) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// At an `r` that may open a raw string (`r"…"`, `r#"…"#`, any number of
    /// `#`s) or be a raw identifier (`r#foo`) or a plain identifier.
    fn raw_or_ident(&mut self, line: u32, col: u32, hashes_start: usize) {
        let mut hashes = 0usize;
        while self.peek(hashes_start + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(hashes_start + hashes) {
            Some('"') => {
                for _ in 0..hashes_start + hashes + 1 {
                    self.bump();
                }
                self.raw_string_body(hashes);
                self.push_token(TokenKind::RawStr, line, col);
            }
            Some(c) if hashes == 1 && (c.is_alphabetic() || c == '_') => {
                // Raw identifier `r#foo`: skip `r#`, lex the identifier.
                self.bump();
                self.bump();
                let name = self.ident();
                self.push_token(TokenKind::Ident(name), line, col);
            }
            _ => {
                let name = self.ident();
                self.push_token(TokenKind::Ident(name), line, col);
            }
        }
    }

    /// Consumes a raw-string body up to `"` followed by `hashes` `#`s.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
        }
    }

    /// At a `'`: either a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\''`, `'\u{1F600}'`).
    fn lifetime_or_char(&mut self, line: u32, col: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && after != Some('\'');
        if is_lifetime {
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            self.push_token(TokenKind::Lifetime, line, col);
        } else {
            self.char_literal();
            self.push_token(TokenKind::Char, line, col);
        }
    }

    /// Consumes a char literal starting at the opening `'`.
    fn char_literal(&mut self) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn number(&mut self) {
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            self.bump();
        }
        // A fractional part — but not the `..` of a range expression.
        if self.peek(0) == Some('.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
        }
    }

    fn ident(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn identifiers_in_strings_are_not_tokens() {
        let src = r##"let s = "a.partial_cmp(b)"; let r = r#"thread_rng()"#;"##;
        let names = idents(src);
        assert!(!names.contains(&"partial_cmp".to_string()));
        assert!(!names.contains(&"thread_rng".to_string()));
        assert_eq!(names, vec!["let", "s", "let", "r"]);
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let src = "/* outer /* inner unwrap() */ still comment */ fn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner unwrap()"));
        assert_eq!(lexed.tokens[1].ident(), Some("f"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_derail() {
        let src = "let q = '\\''; let n = '\\n'; call()";
        assert!(idents(src).contains(&"call".to_string()));
    }

    #[test]
    fn doc_comments_are_distinguished_from_plain_comments() {
        let src = "/// doc line\n//! inner doc\n// plain\n/** doc block */\n/* block */\n";
        let kinds: Vec<CommentKind> = lex(src).comments.iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CommentKind::DocLine,
                CommentKind::DocLine,
                CommentKind::Line,
                CommentKind::DocBlock,
                CommentKind::Block,
            ]
        );
    }

    #[test]
    fn own_line_detection_distinguishes_trailing_comments() {
        let src = "// standalone\nlet x = 1; // trailing\n";
        let lexed = lex(src);
        assert!(lexed.comments[0].own_line);
        assert!(!lexed.comments[1].own_line);
    }

    #[test]
    fn spans_are_one_based_lines_and_columns() {
        let lexed = lex("fn main() {\n    foo();\n}\n");
        let foo = lexed
            .tokens
            .iter()
            .find(|t| t.ident() == Some("foo"))
            .expect("foo token");
        assert_eq!((foo.line, foo.col), (2, 5));
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let src = r####"let a = r##"contains "# inside"##; after()"####;
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn number_lexing_keeps_range_dots() {
        let lexed = lex("for i in 0..10 { }");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }
}
