//! `lint.toml` — rule severities, module allowlists and the scan set.
//!
//! The workspace has no TOML dependency (and vendoring one for a linter
//! would be absurd), so this module hand-rolls a parser for the small TOML
//! subset the config actually uses: `[section]` / `[section.sub]` headers,
//! string values, booleans, and single-line string arrays.  Unknown
//! sections, unknown keys and malformed values are hard errors — a typo in
//! the config must never silently disable a rule.

use crate::error::LintError;
use crate::rules;
use std::collections::BTreeMap;
use std::path::Path;

/// Severity of a rule's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Findings fail the run unconditionally.
    Deny,
    /// Findings are reported but only fail the run under `--deny`.
    Warn,
    /// The rule is skipped entirely.
    Off,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
            Severity::Off => "off",
        }
    }

    fn parse(value: &str) -> Option<Severity> {
        match value {
            "deny" => Some(Severity::Deny),
            "warn" => Some(Severity::Warn),
            "off" => Some(Severity::Off),
            _ => None,
        }
    }
}

/// Per-rule configuration.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    pub severity: Severity,
    /// Whether the rule also applies inside `#[cfg(test)]` / `mod tests`
    /// regions (determinism rules do; panic-hygiene and hot-path rules
    /// don't — tests unwrap and allocate freely).
    pub include_tests: bool,
    /// When non-empty, the rule only applies to files whose
    /// workspace-relative path starts with one of these prefixes.
    pub paths: Vec<String>,
    /// Files whose path starts with one of these prefixes are exempt
    /// (e.g. timing/bench modules for the nondeterminism rule).
    pub allow_paths: Vec<String>,
}

/// The resolved configuration: scan set plus one [`RuleConfig`] per rule.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) whose `.rs` files are scanned.
    pub include: Vec<String>,
    /// Path prefixes excluded from the scan (vendored stubs, build
    /// artifacts, lint fixtures).
    pub exclude: Vec<String>,
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Default for Config {
    fn default() -> Self {
        let mut rule_table = BTreeMap::new();
        for rule in rules::all() {
            rule_table.insert(
                rule.id.to_string(),
                RuleConfig {
                    severity: Severity::Deny,
                    include_tests: rule.default_include_tests,
                    paths: Vec::new(),
                    allow_paths: Vec::new(),
                },
            );
        }
        Config {
            include: vec![".".to_string()],
            exclude: vec!["target".to_string(), "vendor".to_string()],
            rules: rule_table,
        }
    }
}

impl Config {
    /// Loads and parses a `lint.toml`.
    ///
    /// # Errors
    ///
    /// [`LintError::Io`] when the file cannot be read,
    /// [`LintError::Config`] on any parse or validation failure.
    pub fn load(path: &Path) -> Result<Config, LintError> {
        let text = std::fs::read_to_string(path).map_err(|source| LintError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Config::parse(&text).map_err(|(line, message)| LintError::Config {
            path: path.display().to_string(),
            line,
            message,
        })
    }

    /// Parses config text; errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<Config, (u32, String)> {
        let mut config = Config::default();
        let mut section = String::new();
        for (index, raw) in text.lines().enumerate() {
            let lineno = index as u32 + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| (lineno, format!("unterminated section header {line:?}")))?;
                section = header.trim().to_string();
                match section.as_str() {
                    "scan" => {}
                    _ => {
                        let rule = section
                            .strip_prefix("rules.")
                            .ok_or_else(|| (lineno, format!("unknown section [{section}]")))?;
                        if !config.rules.contains_key(rule) {
                            return Err((
                                lineno,
                                format!(
                                    "unknown rule [{section}]; known rules: {}",
                                    rules::id_list()
                                ),
                            ));
                        }
                    }
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| (lineno, format!("expected `key = value`, got {line:?}")))?;
            let key = key.trim();
            let value = value.trim();
            match section.as_str() {
                "scan" => match key {
                    "include" => config.include = parse_string_array(value, lineno)?,
                    "exclude" => config.exclude = parse_string_array(value, lineno)?,
                    _ => return Err((lineno, format!("unknown [scan] key {key:?}"))),
                },
                _ => {
                    let rule_id = section
                        .strip_prefix("rules.")
                        .ok_or_else(|| (lineno, format!("key {key:?} outside any section")))?;
                    let rule = config
                        .rules
                        .get_mut(rule_id)
                        .expect("rule existence checked at the section header");
                    match key {
                        "severity" => {
                            let text = parse_string(value, lineno)?;
                            rule.severity = Severity::parse(&text).ok_or_else(|| {
                                (
                                    lineno,
                                    format!("severity must be deny/warn/off, got {text:?}"),
                                )
                            })?;
                        }
                        "include_tests" => {
                            rule.include_tests = parse_bool(value, lineno)?;
                        }
                        "paths" => rule.paths = parse_string_array(value, lineno)?,
                        "allow_paths" => rule.allow_paths = parse_string_array(value, lineno)?,
                        _ => {
                            return Err((lineno, format!("unknown [rules.{rule_id}] key {key:?}")))
                        }
                    }
                }
            }
        }
        Ok(config)
    }

    /// The rule config for `id`; rule ids come from [`rules::all`], so a
    /// missing entry is a programming error, not a user error.
    pub fn rule(&self, id: &str) -> &RuleConfig {
        self.rules
            .get(id)
            .unwrap_or_else(|| panic!("rule {id} missing from config table"))
    }
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_string(value: &str, lineno: u32) -> Result<String, (u32, String)> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| (lineno, format!("expected a quoted string, got {value:?}")))?;
    Ok(inner.to_string())
}

fn parse_bool(value: &str, lineno: u32) -> Result<bool, (u32, String)> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err((lineno, format!("expected true/false, got {value:?}"))),
    }
}

fn parse_string_array(value: &str, lineno: u32) -> Result<Vec<String>, (u32, String)> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| {
            (
                lineno,
                format!("expected a [\"…\", …] array, got {value:?}"),
            )
        })?;
    let mut items = Vec::new();
    let trimmed = inner.trim();
    if trimmed.is_empty() {
        return Ok(items);
    }
    for item in trimmed.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // tolerate a trailing comma
        }
        items.push(parse_string(item, lineno)?);
    }
    Ok(items)
}

/// `true` when `rel_path` starts with any of `prefixes` (forward-slash
/// workspace-relative paths; a prefix matches whole path components or a
/// plain string prefix ending in `/`).
pub fn path_matches(rel_path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|prefix| {
        let prefix = prefix.trim_end_matches('/');
        rel_path == prefix
            || rel_path
                .strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with('/'))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_knows_every_rule() {
        let config = Config::default();
        for rule in rules::all() {
            assert!(config.rules.contains_key(rule.id), "missing {}", rule.id);
        }
    }

    #[test]
    fn parses_sections_keys_and_arrays() {
        let text = r#"
# comment
[scan]
include = ["src", "crates"]  # trailing comment
exclude = ["vendor"]

[rules.R2]
severity = "warn"
allow_paths = ["crates/bench/"]

[rules.R3]
include_tests = false
paths = ["crates/imc/src"]
"#;
        let config = Config::parse(text).expect("valid config");
        assert_eq!(config.include, vec!["src", "crates"]);
        assert_eq!(config.exclude, vec!["vendor"]);
        assert_eq!(config.rule("R2").severity, Severity::Warn);
        assert_eq!(config.rule("R2").allow_paths, vec!["crates/bench/"]);
        assert_eq!(config.rule("R3").paths, vec!["crates/imc/src"]);
        assert_eq!(config.rule("R1").severity, Severity::Deny);
    }

    #[test]
    fn unknown_rules_keys_and_severities_are_errors() {
        assert!(Config::parse("[rules.R9]\n").is_err());
        assert!(Config::parse("[rules.R1]\ncolour = \"red\"\n").is_err());
        assert!(Config::parse("[rules.R1]\nseverity = \"loud\"\n").is_err());
        assert!(Config::parse("[scan]\nrandom = true\n").is_err());
        assert!(Config::parse("[typo\n").is_err());
        assert!(Config::parse("orphan = 1\n").is_err());
    }

    #[test]
    fn path_matching_is_component_wise() {
        let prefixes = vec!["crates/imc/src".to_string(), "crates/bench/".to_string()];
        assert!(path_matches("crates/imc/src/fom.rs", &prefixes));
        assert!(path_matches("crates/bench/src/lib.rs", &prefixes));
        assert!(!path_matches("crates/imc/srcx/fom.rs", &prefixes));
        assert!(!path_matches("crates/dnn/src/eval.rs", &prefixes));
    }
}
