//! `optima-lint:` comment directives.
//!
//! Three forms are recognised, in plain (non-doc) comments only:
//!
//! * `optima-lint: allow(R1, R3) -- justification` — suppresses findings of
//!   the listed rules on the comment's own line (trailing comment) or the
//!   next code line (standalone comment).  The `--` justification is
//!   mandatory, and a suppression that matches no finding is itself a
//!   finding (stale suppressions rot).
//! * `optima-lint: hot` / `optima-lint: end-hot` — bracket a hot region for
//!   the R4 allocation rule.
//!
//! Anything else starting with `optima-lint:` is a malformed directive and
//! reported under the `directive` meta-rule, which is not suppressible.

use crate::lexer::{Comment, CommentKind, LexedFile};
use crate::rules;

/// A parsed `allow` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule ids listed inside `allow(…)`; validated against [`rules::is_known`].
    pub rules: Vec<String>,
    /// The code line the suppression applies to.
    pub target_line: u32,
    /// Span of the directive comment (for stale/malformed reporting).
    pub line: u32,
    pub col: u32,
}

/// The directive layer of one file.
#[derive(Debug, Default)]
pub struct Directives {
    pub allows: Vec<Allow>,
    /// Inclusive comment-line pairs bracketing hot regions (code strictly
    /// between the two lines is hot).
    pub hot_ranges: Vec<(u32, u32)>,
    /// Malformed-directive findings: `(line, col, message)`.
    pub malformed: Vec<(u32, u32, String)>,
}

/// Parses all directives of a lexed file.
pub fn parse(file: &LexedFile) -> Directives {
    let mut out = Directives::default();
    let mut open_hot: Option<(u32, u32)> = None;
    for comment in &file.comments {
        if !matches!(comment.kind, CommentKind::Line | CommentKind::Block) {
            continue; // doc comments never carry directives
        }
        let Some(rest) = comment.text.trim().strip_prefix("optima-lint:") else {
            continue;
        };
        match rest.trim() {
            "hot" => {
                if open_hot.is_some() {
                    out.malformed.push((
                        comment.line,
                        comment.col,
                        "nested `optima-lint: hot` region (close the previous one with \
                         `optima-lint: end-hot` first)"
                            .to_string(),
                    ));
                } else {
                    open_hot = Some((comment.line, comment.col));
                }
            }
            "end-hot" => match open_hot.take() {
                Some((start, _)) => out.hot_ranges.push((start, comment.line)),
                None => out.malformed.push((
                    comment.line,
                    comment.col,
                    "`optima-lint: end-hot` without a matching `optima-lint: hot`".to_string(),
                )),
            },
            other => match parse_allow(other) {
                Ok(rule_ids) => {
                    let mut valid = Vec::new();
                    for id in rule_ids {
                        if rules::is_known(&id) {
                            valid.push(id);
                        } else {
                            out.malformed.push((
                                comment.line,
                                comment.col,
                                format!(
                                    "`allow({id})` names an unknown rule; known rules: {}",
                                    rules::id_list()
                                ),
                            ));
                        }
                    }
                    if !valid.is_empty() {
                        out.allows.push(Allow {
                            rules: valid,
                            target_line: target_line(file, comment),
                            line: comment.line,
                            col: comment.col,
                        });
                    }
                }
                Err(message) => out.malformed.push((comment.line, comment.col, message)),
            },
        }
    }
    if let Some((line, col)) = open_hot {
        out.malformed.push((
            line,
            col,
            "`optima-lint: hot` region is never closed (`optima-lint: end-hot` missing)"
                .to_string(),
        ));
    }
    out
}

/// Parses `allow(R1, R2) -- justification`, returning the rule ids.
fn parse_allow(text: &str) -> Result<Vec<String>, String> {
    const SYNTAX: &str = "directive syntax: `optima-lint: allow(<rule>[, <rule>…]) -- \
                          <justification>`, `optima-lint: hot`, or `optima-lint: end-hot`";
    let rest = text
        .strip_prefix("allow")
        .ok_or_else(|| format!("unrecognised directive {text:?}; {SYNTAX}"))?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| format!("`allow` needs a parenthesised rule list; {SYNTAX}"))?;
    let (rule_list, tail) = rest
        .split_once(')')
        .ok_or_else(|| format!("unterminated `allow(` rule list; {SYNTAX}"))?;
    let rule_ids: Vec<String> = rule_list
        .split(',')
        .map(|id| id.trim().to_string())
        .filter(|id| !id.is_empty())
        .collect();
    if rule_ids.is_empty() {
        return Err(format!("`allow()` lists no rules; {SYNTAX}"));
    }
    let tail = tail.trim_start();
    let justification = tail.strip_prefix("--").map(str::trim).unwrap_or_default();
    if justification.is_empty() {
        return Err(
            "suppressions require a justification: `optima-lint: allow(<rule>) -- <why>`"
                .to_string(),
        );
    }
    Ok(rule_ids)
}

/// The code line an allow applies to: the comment's own line when code
/// precedes it (trailing comment), otherwise the next line carrying any
/// code token.
fn target_line(file: &LexedFile, comment: &Comment) -> u32 {
    if !comment.own_line {
        return comment.line;
    }
    file.tokens
        .iter()
        .map(|t| t.line)
        .filter(|&line| line > comment.line)
        .min()
        .unwrap_or(comment.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn standalone_allow_targets_the_next_code_line() {
        let src = "// optima-lint: allow(R3) -- invariant checked above\nlet v = x.unwrap();\n";
        let directives = parse(&lex(src));
        assert_eq!(directives.allows.len(), 1);
        assert_eq!(directives.allows[0].target_line, 2);
        assert_eq!(directives.allows[0].rules, vec!["R3"]);
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "let v = x.unwrap(); // optima-lint: allow(R3) -- checked\n";
        let directives = parse(&lex(src));
        assert_eq!(directives.allows[0].target_line, 1);
    }

    #[test]
    fn multi_rule_allow_lists_every_rule() {
        let src = "// optima-lint: allow(R1, R3) -- both deliberate\nx();\n";
        let directives = parse(&lex(src));
        assert_eq!(directives.allows[0].rules, vec!["R1", "R3"]);
    }

    #[test]
    fn missing_justification_and_unknown_rules_are_malformed() {
        let src = "// optima-lint: allow(R1)\n// optima-lint: allow(R9) -- nope\n\
                   // optima-lint: frobnicate\n";
        let directives = parse(&lex(src));
        assert_eq!(directives.allows.len(), 0);
        assert_eq!(directives.malformed.len(), 3);
        assert!(directives.malformed[0].2.contains("justification"));
        assert!(directives.malformed[1].2.contains("unknown rule"));
        assert!(directives.malformed[2].2.contains("unrecognised directive"));
    }

    #[test]
    fn hot_regions_pair_up_and_report_imbalance() {
        let src = "// optima-lint: hot\nwork();\n// optima-lint: end-hot\n\
                   // optima-lint: end-hot\n// optima-lint: hot\n";
        let directives = parse(&lex(src));
        assert_eq!(directives.hot_ranges, vec![(1, 3)]);
        assert_eq!(directives.malformed.len(), 2);
        assert!(directives.malformed[0].2.contains("without a matching"));
        assert!(directives.malformed[1].2.contains("never closed"));
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let src = "/// optima-lint: hot\n//! optima-lint: allow(R1)\nfn f() {}\n";
        let directives = parse(&lex(src));
        assert!(directives.allows.is_empty());
        assert!(directives.hot_ranges.is_empty());
        assert!(directives.malformed.is_empty());
    }
}
