//! R1 negative: `partial_cmp` appears only where the lexer must ignore it —
//! doc comments, plain strings, and raw strings.

/// Sorts with `total_cmp`; never reach for `partial_cmp` in a comparator.
pub fn sort_scores(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.total_cmp(b));
}

pub fn advice() -> &'static str {
    "a.partial_cmp(b).unwrap() panics on NaN"
}

pub fn pattern() -> &'static str {
    r#"sort_by(|a, b| a.partial_cmp(b).unwrap())"#
}
