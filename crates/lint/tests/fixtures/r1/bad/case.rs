//! R1 positive: a float comparator built on `partial_cmp`.

pub fn sort_scores(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
