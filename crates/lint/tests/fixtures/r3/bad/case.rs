//! R3 positive: a panic in non-test library code.

pub fn first(values: &[u32]) -> u32 {
    *values.first().unwrap()
}
