//! R3 negative: panics are confined to the `#[cfg(test)]` module, which
//! the rule excludes (`include_tests = false`).

pub fn first(values: &[u32]) -> Option<u32> {
    values.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_of_some() {
        assert_eq!(first(&[7]).unwrap(), 7);
    }
}
