//! Directive-hygiene negative: a justified suppression that matches a real
//! finding on its target line.

pub fn running_max(values: &[f64]) -> f64 {
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        // optima-lint: allow(R1) -- NaN rejection: None keeps the current max
        if v.partial_cmp(&max) == Some(std::cmp::Ordering::Greater) {
            max = v;
        }
    }
    max
}
