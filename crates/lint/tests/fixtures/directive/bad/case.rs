//! Directive-hygiene positives: a stale suppression and one with no
//! justification.

// optima-lint: allow(R1) -- nothing on the next line uses partial_cmp
pub fn identity(x: f64) -> f64 {
    x
}

// optima-lint: allow(R3)
pub fn shrug() {}
