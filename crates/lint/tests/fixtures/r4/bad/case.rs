//! R4 positive: allocation inside a hot region.

// optima-lint: hot
pub fn accumulate(values: &[f64]) -> f64 {
    let scratch: Vec<f64> = values.to_vec();
    scratch.iter().sum()
}
// optima-lint: end-hot
