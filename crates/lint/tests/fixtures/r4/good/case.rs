//! R4 negative: the allocation happens outside the hot region; the hot
//! loop only reuses caller buffers.

pub fn scratch(len: usize) -> Vec<f64> {
    vec![0.0; len]
}

// optima-lint: hot
pub fn accumulate_into(values: &[f64], out: &mut f64) {
    for v in values {
        *out += v;
    }
}
// optima-lint: end-hot
