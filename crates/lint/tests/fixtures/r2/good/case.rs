//! R2 negative: ordered containers only; entropy sources appear only in
//! comments the lexer must skip.

/* A reviewer once wrote /* rand::thread_rng() here */ inside a nested
   block comment — still not code. */
use std::collections::BTreeMap;

pub fn histogram(values: &[u32]) -> BTreeMap<u32, usize> {
    let mut counts = BTreeMap::new();
    for &v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts
}
