//! R2 positive: ambient wall-clock time and an unordered map.

use std::collections::HashMap;

pub fn stamp() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}

pub fn histogram(values: &[u32]) -> HashMap<u32, usize> {
    let mut counts = HashMap::new();
    for &v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts
}
