//! Self-application: the checked-in workspace must be finding-free under
//! `optima-lint --deny`, and its directive layer must pass `--check-config`.
//! These tests are what keeps the "sweep the workspace" guarantee honest —
//! any new violation (or stale suppression) anywhere in the tree fails the
//! lint crate's own test run.

use std::path::PathBuf;
use std::process::Command;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn run(extra: &[&str]) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_optima-lint"))
        .arg("--root")
        .arg(workspace_root())
        .args(extra)
        .output()
        .expect("optima-lint binary runs");
    assert!(
        output.status.code() != Some(2),
        "usage/config error: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

#[test]
fn workspace_is_finding_free_under_deny() {
    let (ok, out) = run(&["--deny"]);
    assert!(ok, "workspace has lint findings:\n{out}");
    assert!(out.contains("clean"), "{out}");
}

#[test]
fn workspace_suppressions_are_all_live_and_justified() {
    let (ok, out) = run(&["--check-config", "--deny"]);
    assert!(ok, "directive hygiene failed:\n{out}");
}
