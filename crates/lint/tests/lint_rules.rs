//! End-to-end fixture tests: run the `optima-lint` binary against each
//! fixture root under `tests/fixtures/` and assert the exit code in both
//! directions — non-zero on every `<rule>/bad` tree, zero on `<rule>/good`.
//!
//! The good fixtures double as lexer stress tests: they hide rule trigger
//! tokens inside string literals, raw strings, doc comments and nested
//! block comments, which a naive substring scanner would flag.

use std::path::PathBuf;
use std::process::Command;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Runs the binary with `--root fixtures/<case> --deny`; returns
/// `(success, stdout)`.
fn run(case: &str, extra: &[&str]) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_optima-lint"))
        .arg("--root")
        .arg(fixtures().join(case))
        .arg("--config")
        .arg(fixtures().join("lint.toml"))
        .arg("--deny")
        .args(extra)
        .output()
        .expect("optima-lint binary runs");
    assert!(
        output.status.code() != Some(2),
        "usage/config error: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

/// Asserts both directions for one rule: `bad` fails mentioning `rule_id`,
/// `good` passes clean.
fn assert_rule(dir: &str, rule_id: &str) {
    let (bad_ok, bad_out) = run(&format!("{dir}/bad"), &[]);
    assert!(!bad_ok, "{dir}/bad must fail, got:\n{bad_out}");
    assert!(
        bad_out.contains(rule_id),
        "{dir}/bad output must name {rule_id}:\n{bad_out}"
    );
    let (good_ok, good_out) = run(&format!("{dir}/good"), &[]);
    assert!(good_ok, "{dir}/good must pass, got:\n{good_out}");
    assert!(good_out.contains("clean"), "{good_out}");
}

#[test]
fn r1_float_ordering_both_directions() {
    assert_rule("r1", "R1");
}

#[test]
fn r2_nondeterminism_both_directions() {
    assert_rule("r2", "R2");
}

#[test]
fn r3_panic_hygiene_both_directions() {
    assert_rule("r3", "R3");
}

#[test]
fn r4_hot_path_allocation_both_directions() {
    assert_rule("r4", "R4");
}

#[test]
fn directive_hygiene_both_directions() {
    assert_rule("directive", "directive");
}

#[test]
fn stale_and_unjustified_suppressions_are_reported_distinctly() {
    let (_, out) = run("directive/bad", &[]);
    assert!(out.contains("stale suppression"), "{out}");
    assert!(out.contains("justification"), "{out}");
}

#[test]
fn justified_suppression_is_counted() {
    let (_, out) = run("directive/good", &[]);
    assert!(out.contains("1 suppressed by allow"), "{out}");
}

#[test]
fn json_output_carries_schema_and_counts() {
    let (ok, out) = run("r1/bad", &["--json"]);
    assert!(!ok);
    assert!(out.contains("\"schema\": \"optima-lint.v1\""), "{out}");
    assert!(out.contains("\"R1\": 1"), "{out}");
    assert!(out.contains("\"file\": \"case.rs\""), "{out}");
}

#[test]
fn check_config_mode_reports_only_directive_findings() {
    // r3/bad has a real R3 finding but no directive problems: --check-config
    // must pass it.
    let (ok, out) = run("r3/bad", &["--check-config"]);
    assert!(ok, "{out}");
    // directive/bad must still fail in --check-config mode.
    let (ok, out) = run("directive/bad", &["--check-config"]);
    assert!(!ok, "{out}");
    assert!(out.contains("directive"), "{out}");
}
