//! Allocation-count regression gates for the zero-allocation steady state.
//!
//! A thread-local counting `#[global_allocator]` wraps the system allocator
//! and counts every `alloc`/`realloc` on the current thread.  Because the
//! counter is per-thread, each `#[test]` (which the harness runs on its own
//! thread) observes exactly the allocations it causes itself, with no
//! cross-test noise.  The gates pin the tentpole property of the scratch
//! arena work: once a [`KernelScratch`] has warmed up to a network's
//! high-water mark, `Network::infer_with`, `QuantizedNetwork::forward_with`
//! and the serial `evaluate_batched` path perform **zero** heap allocations
//! per image.

use optima_dnn::data::{Dataset, SyntheticImageConfig};
use optima_dnn::eval::{evaluate_batched, BatchInferenceModel};
use optima_dnn::layers::{Conv2d, Dense, Flatten, GlobalAvgPool, MaxPool2d, Relu, ResidualBlock};
use optima_dnn::multiplier::ExactInt4Products;
use optima_dnn::network::Network;
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::scratch::KernelScratch;
use optima_dnn::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    // `Cell<u64>` has no destructor, so touching it from inside the
    // allocator cannot recurse through TLS teardown.
    static ALLOCATION_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting allocations per thread.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.with(|count| count.set(count.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.with(|count| count.set(count.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATION_COUNT.with(|count| count.get())
}

/// One of every layer kind, so the gates cover the whole zoo.
fn full_zoo_network() -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    Network::new(vec![
        Box::new(Conv2d::new(1, 4, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
        Box::new(ResidualBlock::new(4, 3, &mut rng)),
        Box::new(GlobalAvgPool::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(4, 3, &mut rng)),
    ])
}

fn random_images(count: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            Tensor::from_vec(
                &[1, 8, 8],
                (0..64).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect(),
            )
            .unwrap()
        })
        .collect()
}

#[test]
fn float_inference_steady_state_performs_zero_allocations_per_image() {
    let network = full_zoo_network();
    let images = random_images(12, 7);
    let mut scratch = KernelScratch::new();
    // Warm-up: grows the arena to the high-water mark and builds the
    // packed-weight plans.
    for image in images.iter().take(4) {
        network.infer_with(image, &mut scratch).unwrap();
    }
    let before = allocations();
    for image in &images {
        let logits = network.infer_with(image, &mut scratch).unwrap();
        assert_eq!(logits.len(), 3);
    }
    assert_eq!(
        allocations(),
        before,
        "warm steady-state infer_with must not allocate"
    );
}

#[test]
fn quantized_inference_steady_state_performs_zero_allocations_per_image() {
    let network = full_zoo_network();
    let quantized = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
    assert!(quantized.uses_snapshot());
    let images = random_images(12, 8);
    let mut scratch = KernelScratch::new();
    for image in images.iter().take(4) {
        quantized.forward_with(image, &mut scratch).unwrap();
    }
    let before = allocations();
    for image in &images {
        let logits = quantized.forward_with(image, &mut scratch).unwrap();
        assert_eq!(logits.len(), 3);
    }
    assert_eq!(
        allocations(),
        before,
        "warm steady-state forward_with must not allocate"
    );
}

#[test]
fn predict_with_steady_state_performs_zero_allocations_per_image() {
    // The trait path used by the batched evaluator, end to end with scoring.
    let network = full_zoo_network();
    let images = random_images(10, 9);
    let mut scratch = KernelScratch::new();
    for image in images.iter().take(4) {
        BatchInferenceModel::predict_with(&network, image, &mut scratch).unwrap();
    }
    let before = allocations();
    for image in &images {
        BatchInferenceModel::predict_with(&network, image, &mut scratch).unwrap();
    }
    assert_eq!(allocations(), before);
}

#[test]
fn batched_evaluation_allocations_do_not_scale_with_the_dataset() {
    // `threads = 1` keeps the whole sweep (and one cold KernelScratch) on
    // this thread, where the TLS counter sees it.  The per-call overhead is
    // the sample/result vectors plus the arena warm-up — all independent of
    // the image count — so evaluating far more images must cost far fewer
    // than one allocation per image.
    let dataset = Dataset::synthetic(SyntheticImageConfig {
        test_per_class: 40,
        ..SyntheticImageConfig::tiny()
    });
    let network = full_zoo_network();
    let image_count = dataset.test_len() as u64;
    assert!(image_count >= 120);

    // Cold run: packs the weight plans (cached on the network).
    evaluate_batched(&network, &dataset, 1).unwrap();
    let before = allocations();
    evaluate_batched(&network, &dataset, 1).unwrap();
    let spent = allocations() - before;
    assert!(
        spent < image_count / 2,
        "evaluate_batched spent {spent} allocations over {image_count} images \
         — the steady state is allocating per image"
    );
}
