//! A small dense tensor type (channel-major, `f32`).
//!
//! The networks in this crate operate on single images in `[C, H, W]` layout
//! and on flat vectors `[N]`; a full batch dimension is not needed for the
//! accuracy experiments and keeping the type small keeps the layer code
//! readable.

use crate::error::DnnError;
use serde::{Deserialize, Serialize};
use std::cell::Cell;

thread_local! {
    /// Per-thread count of [`Tensor::clone`] calls (see [`clone_count`]).
    static CLONE_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Number of `Tensor::clone` calls performed by the *current thread* so far.
///
/// Instrumentation hook for the zero-copy regression tests: the inference
/// and training hot paths are required to perform **no** intermediate tensor
/// clones, and the tests pin that down by comparing this counter before and
/// after a forward/backward pass.  The counter is thread-local so parallel
/// test threads cannot perturb each other's measurement; the increment is a
/// plain cell bump — nothing next to the buffer copy the clone itself does.
pub fn clone_count() -> u64 {
    CLONE_COUNT.with(Cell::get)
}

/// A dense `f32` tensor with an explicit shape.
///
/// # Example
///
/// ```rust
/// use optima_dnn::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape(), &[2, 3]);
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Default for Tensor {
    /// An empty placeholder tensor (no shape, no elements, no allocation),
    /// meant as a seed for in-place [`Tensor::resize_to`] /
    /// [`Tensor::copy_from`] — the scratch-arena pools start from this.
    fn default() -> Self {
        Tensor {
            shape: Vec::new(),
            data: Vec::new(),
        }
    }
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        CLONE_COUNT.with(|count| count.set(count.get() + 1));
        Tensor {
            shape: self.shape.clone(),
            data: self.data.clone(),
        }
    }
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when the data length does not
    /// match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, DnnError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(DnnError::ShapeMismatch {
                expected: shape.to_vec(),
                found: vec![data.len()],
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when the element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Result<Tensor, DnnError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(DnnError::ShapeMismatch {
                expected: shape.to_vec(),
                found: self.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Reinterprets the tensor in place with a new shape of equal element
    /// count (no data movement).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<(), DnnError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(DnnError::ShapeMismatch {
                expected: shape.to_vec(),
                found: self.shape.clone(),
            });
        }
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        Ok(())
    }

    /// Reshapes the tensor in place to `shape`, zero-filling the data.
    ///
    /// Shape and data capacities are retained, so repeated calls allocate
    /// only while the element count is still growing towards its steady
    /// state — the property the scratch-arena inference path relies on.
    pub fn resize_to(&mut self, shape: &[usize]) {
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        let len = shape.iter().product();
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// Copies another tensor's shape and data into this one, reusing the
    /// existing capacity (no allocation once large enough).
    pub fn copy_from(&mut self, other: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&other.shape);
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Value at `[c, y, x]` of a 3-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-D or the indices are out of range.
    pub fn at3(&self, c: usize, y: usize, x: usize) -> f32 {
        assert_eq!(self.shape.len(), 3, "at3 requires a 3-D tensor");
        let (_, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[(c * h + y) * w + x]
    }

    /// Mutable value at `[c, y, x]` of a 3-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-D or the indices are out of range.
    pub fn at3_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f32 {
        assert_eq!(self.shape.len(), 3, "at3_mut requires a 3-D tensor");
        let (_, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        &mut self.data[(c * h + y) * w + x]
    }

    /// Largest absolute value (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |acc, v| acc.max(v.abs()))
    }

    /// Index of the largest element (argmax); `None` for empty tensors.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Indices of the `k` largest elements, in descending order of value.
    ///
    /// Runs in `O(n + k log k)` via a selection partition instead of a full
    /// sort, and orders by [`f32::total_cmp`] (ties broken by ascending
    /// index), so the result is deterministic even in the presence of NaNs
    /// — consistent with the workspace-wide `total_cmp` ordering policy.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..self.data.len()).collect();
        let k = k.min(indices.len());
        if k == 0 {
            return Vec::new();
        }
        let descending =
            |&a: &usize, &b: &usize| self.data[b].total_cmp(&self.data[a]).then(a.cmp(&b));
        if k < indices.len() {
            indices.select_nth_unstable_by(k - 1, descending);
            indices.truncate(k);
        }
        indices.sort_unstable_by(descending);
        indices
    }

    /// Elementwise sum with another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, DnnError> {
        if self.shape != other.shape {
            return Err(DnnError::ShapeMismatch {
                expected: self.shape.clone(),
                found: other.shape.clone(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies a function to every element in place (no allocation).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for value in &mut self.data {
            *value = f(*value);
        }
    }

    /// Elementwise in-place sum with another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), DnnError> {
        if self.shape != other.shape {
            return Err(DnnError::ShapeMismatch {
                expected: self.shape.clone(),
                found: other.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data()[3], 4.0);
        assert!(Tensor::from_vec(&[3], vec![1.0]).is_err());
    }

    #[test]
    fn three_d_indexing_is_row_major_within_channel() {
        let mut t = Tensor::zeros(&[2, 2, 3]);
        *t.at3_mut(1, 1, 2) = 7.0;
        assert_eq!(t.at3(1, 1, 2), 7.0);
        assert_eq!(t.data()[2 * 2 * 3 - 1], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.reshaped(&[2, 3]).unwrap();
        assert_eq!(r.shape(), &[2, 3]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshaped(&[4, 2]).is_err());
    }

    #[test]
    fn argmax_and_top_k() {
        let t = Tensor::from_slice(&[0.1, 0.9, 0.3, 0.8]);
        assert_eq!(t.argmax(), Some(1));
        assert_eq!(t.top_k(2), vec![1, 3]);
        assert_eq!(Tensor::from_slice(&[]).argmax(), None);
    }

    #[test]
    fn add_and_map() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 6.0]);
        assert!(a.add(&Tensor::zeros(&[3])).is_err());
        assert_eq!(a.map(|v| v * 2.0).data(), &[2.0, 4.0]);
        assert_eq!(b.max_abs(), 4.0);
    }

    #[test]
    fn in_place_operations_match_their_allocating_twins() {
        let mut a = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let b = Tensor::from_slice(&[0.5, 0.5, 0.5]);
        a.add_assign(&b).unwrap();
        assert_eq!(a.data(), &[1.5, -1.5, 3.5]);
        assert!(a.add_assign(&Tensor::zeros(&[2])).is_err());
        a.map_inplace(|v| v.max(0.0));
        assert_eq!(a.data(), &[1.5, 0.0, 3.5]);
        a.reshape_in_place(&[3, 1]).unwrap();
        assert_eq!(a.shape(), &[3, 1]);
        assert!(a.reshape_in_place(&[4]).is_err());
    }

    #[test]
    fn top_k_matches_a_full_sort_and_handles_edge_cases() {
        let t = Tensor::from_slice(&[0.3, 0.9, 0.1, 0.9, -0.5, 0.7]);
        // Descending by value, ties broken by ascending index.
        assert_eq!(t.top_k(4), vec![1, 3, 5, 0]);
        assert_eq!(t.top_k(0), Vec::<usize>::new());
        assert_eq!(t.top_k(100), vec![1, 3, 5, 0, 2, 4]);
    }

    #[test]
    fn top_k_is_deterministic_under_nan() {
        // total_cmp sorts NaN above all finite values, so a NaN logit is
        // selected deterministically rather than shuffling the order.
        let t = Tensor::from_slice(&[0.2, f32::NAN, 0.8, 0.5]);
        assert_eq!(t.top_k(2), vec![1, 2]);
        assert_eq!(t.top_k(2), t.top_k(2));
    }

    #[test]
    fn resize_to_and_copy_from_reuse_capacity() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.resize_to(&[4]);
        assert_eq!(t.shape(), &[4]);
        assert_eq!(t.data(), &[0.0; 4]);
        let source = Tensor::from_vec(&[1, 2], vec![5.0, 6.0]).unwrap();
        t.copy_from(&source);
        assert_eq!(t.shape(), &[1, 2]);
        assert_eq!(t.data(), &[5.0, 6.0]);
        // Shrinking keeps the larger capacity around for reuse.
        t.resize_to(&[6]);
        assert_eq!(t.data(), &[0.0; 6]);
    }

    #[test]
    fn clone_count_increments_per_clone() {
        let t = Tensor::zeros(&[4]);
        let before = clone_count();
        let _copy = t.clone();
        assert_eq!(clone_count(), before + 1);
    }
}
