//! Quantized deep-neural-network substrate for the OPTIMA application analysis.
//!
//! Section VI of the paper evaluates the selected in-SRAM multiplier
//! configurations inside INT4-quantized DNNs (VGG16/19, ResNet50/101 on
//! ImageNet and CIFAR-10).  Pre-trained Keras models and the full datasets
//! are not reproducible inside this workspace, so this crate builds the
//! complete pipeline from scratch at a reduced scale (see DESIGN.md):
//!
//! * [`tensor`] — a small NCHW tensor type,
//! * [`im2col`] — the patch-matrix lowering that turns convolutions into
//!   dense GEMMs over [`optima_math::gemm`],
//! * [`layers`] — convolution, dense, pooling, activation and residual layers
//!   with forward and backward passes,
//! * [`reference`] — the naive scalar kernels kept as equivalence-test and
//!   benchmark baselines,
//! * [`network`] — sequential networks, training state and SGD,
//! * [`training`] — cross-entropy loss and a simple trainer,
//! * [`data`] — procedurally generated image-classification datasets
//!   (a many-class "synthetic ImageNet" and a 10-class "synthetic CIFAR"),
//! * [`models`] — scaled-down VGG-style and ResNet-style architectures,
//! * [`quantization`] — post-training quantization at any operand width
//!   (INT4 by default),
//! * [`multiplier`] — pluggable product providers: exact baselines, the
//!   in-SRAM multiplier tables produced by `optima-imc`, and digital
//!   shift-add composition of wide products from narrow tables,
//! * [`quantized`] — the quantized inference engine that consumes them,
//! * [`eval`] — top-1/top-5 accuracy, serial and parallel (per-image
//!   fan-out over `optima_core::sweep`) dataset evaluation,
//! * [`transfer`] — transfer learning (classifier-head replacement) used for
//!   the CIFAR-10 experiment.
//!
//! The headline comparison of the paper — FLOAT32 vs. INT4 vs. the *fom*,
//! *power* and *variation* in-memory multiplier corners — is reproduced by
//! the `table2_imagenet` and `table3_cifar` harnesses in `optima-bench`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod data;
pub mod error;
pub mod eval;
pub mod im2col;
pub mod layers;
pub mod models;
pub mod multiplier;
pub mod network;
pub mod quantization;
pub mod quantized;
pub mod reference;
pub mod scratch;
pub mod tensor;
pub mod training;
pub mod transfer;

pub use error::DnnError;
pub use tensor::Tensor;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::data::{Dataset, SyntheticImageConfig};
    pub use crate::error::DnnError;
    pub use crate::eval::{
        evaluate, evaluate_batched, BatchInferenceModel, EvaluationReport, InferenceModel,
    };
    pub use crate::layers::Layer;
    pub use crate::models::{resnet_style, vgg_style, ModelKind};
    pub use crate::multiplier::{
        ComposedProducts, CountingProducts, ExactInt4Products, ExactProducts, InMemoryProducts,
        ProductTable,
    };
    pub use crate::network::Network;
    pub use crate::quantization::QuantizationParams;
    pub use crate::quantized::QuantizedNetwork;
    pub use crate::scratch::KernelScratch;
    pub use crate::tensor::Tensor;
    pub use crate::training::{Trainer, TrainingConfig};
    pub use crate::transfer::transfer_to_new_head;
}
