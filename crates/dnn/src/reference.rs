//! Naive scalar reference kernels.
//!
//! These are the original six-deep-loop implementations that the im2col +
//! GEMM hot path replaced.  They are kept — unoptimized on purpose — as the
//! ground truth for the equivalence test suite and as the "before" side of
//! the `dnn_kernels` benchmarks and the `bench_report` perf report.  Do not
//! call them from production code paths.

/// Naive "same"-padded, stride-1 convolution forward pass.
///
/// `input` is `[in_channels, height, width]` flat, `weights` is
/// `[out_channels, in_channels, kernel, kernel]` flat; returns the
/// `[out_channels, height, width]` output.
#[allow(clippy::too_many_arguments)] // deliberately a raw flat-slice kernel
pub fn conv2d_forward(
    input: &[f32],
    in_channels: usize,
    height: usize,
    width: usize,
    weights: &[f32],
    bias: &[f32],
    out_channels: usize,
    kernel: usize,
) -> Vec<f32> {
    let pad = kernel / 2;
    let mut output = vec![0.0f32; out_channels * height * width];
    for oc in 0..out_channels {
        for y in 0..height {
            for x in 0..width {
                let mut acc = bias[oc];
                for ic in 0..in_channels {
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = y as isize + ky as isize - pad as isize;
                            let ix = x as isize + kx as isize - pad as isize;
                            if iy < 0 || ix < 0 || iy >= height as isize || ix >= width as isize {
                                continue;
                            }
                            acc += weights[((oc * in_channels + ic) * kernel + ky) * kernel + kx]
                                * input[(ic * height + iy as usize) * width + ix as usize];
                        }
                    }
                }
                output[(oc * height + y) * width + x] = acc;
            }
        }
    }
    output
}

/// Naive dense forward pass: `y = W·x + b` with a scalar dot-product loop.
///
/// `weights` is row-major `[outputs × inputs]`.
pub fn dense_forward(
    x: &[f32],
    weights: &[f32],
    bias: &[f32],
    inputs: usize,
    outputs: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; outputs];
    for (o, out_value) in out.iter_mut().enumerate() {
        let mut acc = bias[o];
        for (w, &xi) in weights[o * inputs..(o + 1) * inputs].iter().zip(x.iter()) {
            acc += w * xi;
        }
        *out_value = acc;
    }
    out
}
