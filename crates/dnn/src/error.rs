//! Error type of the DNN substrate.

use std::fmt;

/// Error returned by tensor operations, network construction and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DnnError {
    /// A tensor had an unexpected shape.
    ShapeMismatch {
        /// Shape that was expected.
        expected: Vec<usize>,
        /// Shape that was found.
        found: Vec<usize>,
    },
    /// A layer or network was configured inconsistently.
    InvalidConfiguration {
        /// Human-readable description of the inconsistency.
        context: String,
    },
    /// A dataset or label index was out of range.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
    /// One image of a batched dataset evaluation failed.  The sweep is
    /// error-strict: no partial report is returned and the lowest failing
    /// image index is named.
    EvaluationFailed {
        /// Zero-based index of the failing image in the evaluated split.
        image_index: usize,
        /// The underlying error.
        source: Box<DnnError>,
    },
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected:?}, found {found:?}")
            }
            DnnError::InvalidConfiguration { context } => {
                write!(f, "invalid configuration: {context}")
            }
            DnnError::InvalidLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            DnnError::EvaluationFailed {
                image_index,
                source,
            } => {
                write!(f, "evaluation of image {image_index} failed: {source}")
            }
        }
    }
}

impl std::error::Error for DnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DnnError::EvaluationFailed { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = DnnError::ShapeMismatch {
            expected: vec![3, 32, 32],
            found: vec![1, 28, 28],
        };
        assert!(err.to_string().contains("32"));
        let err = DnnError::InvalidLabel {
            label: 12,
            classes: 10,
        };
        assert!(err.to_string().contains("12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnnError>();
    }
}
