//! Error type of the DNN substrate.

use std::fmt;

/// Error returned by tensor operations, network construction and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DnnError {
    /// A tensor had an unexpected shape.
    ShapeMismatch {
        /// Shape that was expected.
        expected: Vec<usize>,
        /// Shape that was found.
        found: Vec<usize>,
    },
    /// A layer or network was configured inconsistently.
    InvalidConfiguration {
        /// Human-readable description of the inconsistency.
        context: String,
    },
    /// A dataset or label index was out of range.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected:?}, found {found:?}")
            }
            DnnError::InvalidConfiguration { context } => {
                write!(f, "invalid configuration: {context}")
            }
            DnnError::InvalidLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
        }
    }
}

impl std::error::Error for DnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = DnnError::ShapeMismatch {
            expected: vec![3, 32, 32],
            found: vec![1, 28, 28],
        };
        assert!(err.to_string().contains("32"));
        let err = DnnError::InvalidLabel {
            label: 12,
            classes: 10,
        };
        assert!(err.to_string().contains("12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnnError>();
    }
}
