//! Per-worker scratch arenas for allocation-free steady-state inference.
//!
//! Every buffer the inference hot path needs between layers — im2col patch
//! matrices (f32 and u8), the packed-`B` panels of the
//! [`optima_math::gemm::PackedGemm`] micro-kernel, quantized activation
//! codes and the ping-pong activation tensors themselves — lives in one
//! [`KernelScratch`] owned by the caller (one per evaluation worker).  The
//! first few images grow the buffers to the network's high-water mark;
//! after that, [`crate::network::Network::infer_with`] and
//! [`crate::quantized::QuantizedNetwork::forward_with`] perform **zero**
//! heap allocations per image, a property pinned by the workspace's
//! counting-allocator regression test.
//!
//! # Lifecycle
//!
//! * Construct once per worker ([`KernelScratch::new`] allocates nothing).
//! * Pass `&mut` to every scratch-aware inference call; the result tensor
//!   is returned *by reference into the arena* and stays valid until the
//!   next call that takes the same scratch.
//! * Buffers only ever grow (`clear` + `resize` retain capacity), so a
//!   scratch can serve differently-shaped networks back to back at the cost
//!   of holding the largest footprint seen.

use crate::tensor::Tensor;
use optima_math::gemm::GemmScratch;

/// The scratch arena threaded through the scratch-aware inference paths.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// f32 im2col patch matrix (FLOAT32 convolution path).
    pub(crate) cols: Vec<f32>,
    /// Packed-`B` panel arena for the packed GEMM micro-kernel.
    pub(crate) gemm: GemmScratch,
    /// u8 im2col patch matrix (quantized convolution path).
    pub(crate) qcols: Vec<u8>,
    /// Quantized activation codes of the current layer input.
    pub(crate) qactivations: Vec<u8>,
    /// Recycled activation tensors, leased by the network drivers for the
    /// ping-pong buffers and residual branches.
    pool: Vec<Tensor>,
    /// Slot holding the most recent inference result (returned by
    /// reference; its predecessor is recycled into the pool).
    result: Tensor,
}

impl KernelScratch {
    /// Creates an empty arena; nothing is allocated until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a tensor out of the recycle pool (or an empty one the first
    /// few times, before the pool has warmed up).
    pub(crate) fn lease(&mut self) -> Tensor {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a leased tensor to the recycle pool.
    pub(crate) fn release(&mut self, tensor: Tensor) {
        self.pool.push(tensor);
    }

    /// Parks `tensor` in the result slot and hands out a reference;
    /// the previous result is recycled into the pool.
    pub(crate) fn store_result(&mut self, tensor: Tensor) -> &Tensor {
        let previous = std::mem::replace(&mut self.result, tensor);
        self.release(previous);
        &self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_release_recycles_buffers() {
        let mut scratch = KernelScratch::new();
        let mut t = scratch.lease();
        t.resize_to(&[16]);
        let capacity_probe = t.data().as_ptr();
        scratch.release(t);
        let again = scratch.lease();
        assert_eq!(again.data().as_ptr(), capacity_probe);
        assert_eq!(again.len(), 16);
    }

    #[test]
    fn store_result_recycles_the_previous_result() {
        let mut scratch = KernelScratch::new();
        let first = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(scratch.store_result(first).data(), &[1.0, 2.0]);
        let second = Tensor::from_slice(&[3.0]);
        assert_eq!(scratch.store_result(second).data(), &[3.0]);
        // The first result's buffer is back in the pool.
        assert_eq!(scratch.pool.len(), 2);
    }
}
