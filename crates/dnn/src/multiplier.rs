//! Pluggable 4-bit product providers.
//!
//! The quantized inference engine performs every 4-bit × 4-bit magnitude
//! product through the [`ProductTable`] trait.  Three implementations exist:
//!
//! * [`ExactInt4Products`] — the error-free INT4 baseline of Tables II/III,
//! * [`InMemoryProducts`] — the in-SRAM multiplier of a selected OPTIMA
//!   design corner (via [`optima_imc::multiplier::MultiplierTable`]),
//! * [`CountingProducts`] — a decorator that counts multiplications, used for
//!   the "Number of Multiplications" column of Table II.

use optima_imc::multiplier::MultiplierTable;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Provider of 4-bit × 4-bit magnitude products.
pub trait ProductTable: Send + Sync {
    /// Product of two 4-bit magnitudes (`a, b ∈ 0..=15`).
    fn product(&self, a: u8, b: u8) -> u16;

    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> String;

    /// Whether [`ProductTable::product`] is a pure function of its operands,
    /// allowing the quantized inference engine to snapshot all 256 products
    /// into a flat lookup table once and never call `product` again.
    ///
    /// Defaults to `true`.  Stateful decorators whose `product` has side
    /// effects — e.g. [`CountingProducts`] — return `false`, which routes
    /// inference through the per-product dynamic-dispatch reference path so
    /// every multiplication is still observed.
    fn supports_snapshot(&self) -> bool {
        true
    }
}

impl fmt::Debug for dyn ProductTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProductTable({})", self.name())
    }
}

/// Error-free INT4 multiplication.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactInt4Products;

impl ProductTable for ExactInt4Products {
    fn product(&self, a: u8, b: u8) -> u16 {
        debug_assert!(a <= 15 && b <= 15);
        a as u16 * b as u16
    }

    fn name(&self) -> String {
        "exact-int4".to_string()
    }
}

/// Products looked up from a pre-computed in-SRAM multiplier table.
#[derive(Debug, Clone)]
pub struct InMemoryProducts {
    table: MultiplierTable,
    label: String,
}

impl InMemoryProducts {
    /// Wraps a multiplier table under a descriptive label (e.g. `"fom"`).
    pub fn new(table: MultiplierTable, label: impl Into<String>) -> Self {
        InMemoryProducts {
            table,
            label: label.into(),
        }
    }

    /// The wrapped table.
    pub fn table(&self) -> &MultiplierTable {
        &self.table
    }
}

impl ProductTable for InMemoryProducts {
    fn product(&self, a: u8, b: u8) -> u16 {
        self.table.lookup(a as u16, b as u16)
    }

    fn name(&self) -> String {
        format!("in-memory ({})", self.label)
    }
}

/// Decorator that counts how many products were requested.
#[derive(Debug, Clone)]
pub struct CountingProducts {
    inner: Arc<dyn ProductTable>,
    counter: Arc<AtomicU64>,
}

impl CountingProducts {
    /// Wraps another product table.
    pub fn new(inner: Arc<dyn ProductTable>) -> Self {
        CountingProducts {
            inner,
            counter: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of products requested so far.
    pub fn count(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.counter.store(0, Ordering::Relaxed);
    }
}

impl ProductTable for CountingProducts {
    fn product(&self, a: u8, b: u8) -> u16 {
        self.counter.fetch_add(1, Ordering::Relaxed);
        self.inner.product(a, b)
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn supports_snapshot(&self) -> bool {
        // Snapshotting would bypass the counter: force per-product dispatch.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_products_match_integer_multiplication() {
        let table = ExactInt4Products;
        for a in 0..=15u8 {
            for b in 0..=15u8 {
                assert_eq!(table.product(a, b), a as u16 * b as u16);
            }
        }
        assert_eq!(table.name(), "exact-int4");
    }

    #[test]
    fn in_memory_products_follow_the_wrapped_table() {
        let table = InMemoryProducts::new(MultiplierTable::exact(), "test");
        assert_eq!(table.product(7, 8), 56);
        assert_eq!(table.name(), "in-memory (test)");
        assert_eq!(table.table().lookup(3, 3), 9);
    }

    #[test]
    fn counting_products_count_and_reset() {
        let counting = CountingProducts::new(Arc::new(ExactInt4Products));
        assert_eq!(counting.count(), 0);
        let _ = counting.product(3, 4);
        let _ = counting.product(5, 6);
        assert_eq!(counting.count(), 2);
        assert_eq!(counting.name(), "exact-int4");
        counting.reset();
        assert_eq!(counting.count(), 0);
    }

    #[test]
    fn counting_products_share_their_counter_across_clones() {
        let counting = CountingProducts::new(Arc::new(ExactInt4Products));
        let clone = counting.clone();
        let _ = clone.product(1, 1);
        assert_eq!(counting.count(), 1);
    }
}
