//! Pluggable narrow-integer product providers.
//!
//! The quantized inference engine performs every magnitude product through
//! the [`ProductTable`] trait.  Implementations:
//!
//! * [`ExactInt4Products`] — the error-free INT4 baseline of Tables II/III,
//! * [`ExactProducts`] — the same baseline at any operand width (1..=8 bits),
//! * [`InMemoryProducts`] — the in-SRAM multiplier of a selected OPTIMA
//!   design corner (via [`optima_imc::multiplier::MultiplierTable`]),
//! * [`ComposedProducts`] — digital shift-add composition of a wide product
//!   from a narrower table, mirroring the multi-pass
//!   [`optima_circuit::array::ArrayConfig`] slice composition (e.g. INT8
//!   from 4-bit analog slices),
//! * [`CountingProducts`] — a decorator that counts multiplications, used for
//!   the "Number of Multiplications" column of Table II.

use optima_imc::multiplier::MultiplierTable;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Provider of `operand_bits`-wide magnitude products.
pub trait ProductTable: Send + Sync {
    /// Product of two magnitudes (`a, b ∈ 0..=2^operand_bits − 1`).
    fn product(&self, a: u8, b: u8) -> u16;

    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> String;

    /// Operand width in bits; the quantized inference engine sizes its flat
    /// product LUT as `(1 << 2·operand_bits)` entries and quantizes weights
    /// and activations to this width.  Defaults to the paper's 4 bits.
    fn operand_bits(&self) -> u8 {
        4
    }

    /// Whether [`ProductTable::product`] is a pure function of its operands,
    /// allowing the quantized inference engine to snapshot the full product
    /// space into a flat lookup table once and never call `product` again.
    ///
    /// Defaults to `true`.  Stateful decorators whose `product` has side
    /// effects — e.g. [`CountingProducts`] — return `false`, which routes
    /// inference through the per-product dynamic-dispatch reference path so
    /// every multiplication is still observed.
    fn supports_snapshot(&self) -> bool {
        true
    }
}

impl fmt::Debug for dyn ProductTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProductTable({})", self.name())
    }
}

/// Error-free INT4 multiplication.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactInt4Products;

impl ProductTable for ExactInt4Products {
    fn product(&self, a: u8, b: u8) -> u16 {
        debug_assert!(a <= 15 && b <= 15);
        a as u16 * b as u16
    }

    fn name(&self) -> String {
        "exact-int4".to_string()
    }
}

/// Error-free multiplication at an arbitrary operand width (1..=8 bits).
#[derive(Debug, Clone, Copy)]
pub struct ExactProducts {
    bits: u8,
}

impl ExactProducts {
    /// Exact products of `bits`-wide magnitudes.
    ///
    /// # Panics
    ///
    /// Panics when `bits` is outside 1..=8 (products must fit `u16`).
    pub fn new(bits: u8) -> Self {
        assert!(
            (1..=8).contains(&bits),
            "operand width must be 1..=8 bits, got {bits}"
        );
        ExactProducts { bits }
    }
}

impl ProductTable for ExactProducts {
    fn product(&self, a: u8, b: u8) -> u16 {
        a as u16 * b as u16
    }

    fn name(&self) -> String {
        format!("exact-int{}", self.bits)
    }

    fn operand_bits(&self) -> u8 {
        self.bits
    }
}

/// Products looked up from a pre-computed in-SRAM multiplier table.
#[derive(Debug, Clone)]
pub struct InMemoryProducts {
    table: MultiplierTable,
    label: String,
}

impl InMemoryProducts {
    /// Wraps a multiplier table under a descriptive label (e.g. `"fom"`).
    pub fn new(table: MultiplierTable, label: impl Into<String>) -> Self {
        InMemoryProducts {
            table,
            label: label.into(),
        }
    }

    /// The wrapped table.
    pub fn table(&self) -> &MultiplierTable {
        &self.table
    }
}

impl ProductTable for InMemoryProducts {
    fn product(&self, a: u8, b: u8) -> u16 {
        self.table.lookup(a as u16, b as u16)
    }

    fn name(&self) -> String {
        format!("in-memory ({})", self.label)
    }

    fn operand_bits(&self) -> u8 {
        self.table.operand_bits()
    }
}

/// Digital shift-add composition of wide products from a narrower table.
///
/// Mirrors the multi-pass slice composition the parametric array performs in
/// analog: each `slice_bits`-wide slice pair of the wide operands is
/// multiplied by the inner table and accumulated with the appropriate binary
/// weight.  With an exact inner table the composition is itself exact; with
/// an in-SRAM table every pass contributes that table's analog error at its
/// slice position, which is precisely how a composed INT8 OPTIMA macro
/// behaves.
#[derive(Debug, Clone)]
pub struct ComposedProducts {
    inner: Arc<dyn ProductTable>,
    slices: u8,
}

impl ComposedProducts {
    /// Composes `slices` × `slices` passes of `inner` into one wide product.
    ///
    /// # Panics
    ///
    /// Panics when the composed width `slices · inner.operand_bits()`
    /// exceeds 8 bits (products must fit `u16`) or `slices` is zero.
    pub fn new(inner: Arc<dyn ProductTable>, slices: u8) -> Self {
        assert!(slices >= 1, "composition needs at least one slice");
        let wide = slices as u16 * inner.operand_bits() as u16;
        assert!(
            (1..=8).contains(&wide),
            "composed width {wide} bits exceeds the 8-bit product range"
        );
        ComposedProducts { inner, slices }
    }

    /// The narrow table every pass consults.
    pub fn inner(&self) -> &Arc<dyn ProductTable> {
        &self.inner
    }
}

impl ProductTable for ComposedProducts {
    fn product(&self, a: u8, b: u8) -> u16 {
        let slice_bits = self.inner.operand_bits();
        let mask = ((1u16 << slice_bits) - 1) as u8;
        let mut acc: u32 = 0;
        for i in 0..self.slices {
            let a_slice = (a >> (i * slice_bits)) & mask;
            for j in 0..self.slices {
                let b_slice = (b >> (j * slice_bits)) & mask;
                let partial = self.inner.product(a_slice, b_slice) as u32;
                acc += partial << ((i + j) as u32 * slice_bits as u32);
            }
        }
        acc.min(u16::MAX as u32) as u16
    }

    fn name(&self) -> String {
        format!(
            "composed int{} ({} x {})",
            self.operand_bits(),
            self.slices,
            self.inner.name()
        )
    }

    fn operand_bits(&self) -> u8 {
        self.slices * self.inner.operand_bits()
    }

    fn supports_snapshot(&self) -> bool {
        self.inner.supports_snapshot()
    }
}

/// Decorator that counts how many products were requested.
#[derive(Debug, Clone)]
pub struct CountingProducts {
    inner: Arc<dyn ProductTable>,
    counter: Arc<AtomicU64>,
}

impl CountingProducts {
    /// Wraps another product table.
    pub fn new(inner: Arc<dyn ProductTable>) -> Self {
        CountingProducts {
            inner,
            counter: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of products requested so far.
    pub fn count(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.counter.store(0, Ordering::Relaxed);
    }
}

impl ProductTable for CountingProducts {
    fn product(&self, a: u8, b: u8) -> u16 {
        self.counter.fetch_add(1, Ordering::Relaxed);
        self.inner.product(a, b)
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn operand_bits(&self) -> u8 {
        self.inner.operand_bits()
    }

    fn supports_snapshot(&self) -> bool {
        // Snapshotting would bypass the counter: force per-product dispatch.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_products_match_integer_multiplication() {
        let table = ExactInt4Products;
        for a in 0..=15u8 {
            for b in 0..=15u8 {
                assert_eq!(table.product(a, b), a as u16 * b as u16);
            }
        }
        assert_eq!(table.name(), "exact-int4");
    }

    #[test]
    fn in_memory_products_follow_the_wrapped_table() {
        let table = InMemoryProducts::new(MultiplierTable::exact(), "test");
        assert_eq!(table.product(7, 8), 56);
        assert_eq!(table.name(), "in-memory (test)");
        assert_eq!(table.table().lookup(3, 3), 9);
    }

    #[test]
    fn counting_products_count_and_reset() {
        let counting = CountingProducts::new(Arc::new(ExactInt4Products));
        assert_eq!(counting.count(), 0);
        let _ = counting.product(3, 4);
        let _ = counting.product(5, 6);
        assert_eq!(counting.count(), 2);
        assert_eq!(counting.name(), "exact-int4");
        counting.reset();
        assert_eq!(counting.count(), 0);
    }

    #[test]
    fn counting_products_share_their_counter_across_clones() {
        let counting = CountingProducts::new(Arc::new(ExactInt4Products));
        let clone = counting.clone();
        let _ = clone.product(1, 1);
        assert_eq!(counting.count(), 1);
    }

    #[test]
    fn exact_products_generalize_the_int4_baseline() {
        let int4 = ExactProducts::new(4);
        assert_eq!(int4.operand_bits(), ExactInt4Products.operand_bits());
        for a in 0..=15u8 {
            for b in 0..=15u8 {
                assert_eq!(int4.product(a, b), ExactInt4Products.product(a, b));
            }
        }
        let int8 = ExactProducts::new(8);
        assert_eq!(int8.operand_bits(), 8);
        assert_eq!(int8.product(255, 255), 65025);
        assert_eq!(int8.name(), "exact-int8");
    }

    #[test]
    fn composed_int8_products_match_the_widened_reference() {
        let composed = ComposedProducts::new(Arc::new(ExactInt4Products), 2);
        assert_eq!(composed.operand_bits(), 8);
        assert!(composed.supports_snapshot());
        // Exhaustive over the full 8-bit input space: digital shift-add of
        // exact 4-bit slice products is exact.
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                assert_eq!(
                    composed.product(a as u8, b as u8),
                    a * b,
                    "composed product diverges at {a} x {b}"
                );
            }
        }
    }

    #[test]
    fn composed_products_propagate_statefulness_and_counting() {
        let counting = Arc::new(CountingProducts::new(Arc::new(ExactInt4Products)));
        let composed = ComposedProducts::new(counting.clone(), 2);
        assert!(!composed.supports_snapshot());
        let _ = composed.product(0x12, 0x34);
        // One wide product = slices² narrow passes.
        assert_eq!(counting.count(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds the 8-bit product range")]
    fn oversized_compositions_are_rejected() {
        let _ = ComposedProducts::new(Arc::new(ExactProducts::new(8)), 2);
    }
}
