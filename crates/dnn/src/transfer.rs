//! Transfer learning: classifier-head replacement.
//!
//! For the CIFAR-10 experiment the paper replaces the last layer of the
//! ImageNet-trained networks with a fully connected layer of 10 neurons and
//! retrains it with transfer learning.  [`transfer_to_new_head`] performs the
//! head swap; the retraining itself uses
//! [`crate::training::Trainer::train_head_only`].

use crate::error::DnnError;
use crate::layers::Dense;
use crate::network::Network;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Replaces the final dense layer of `network` with a freshly initialised
/// dense layer of `new_classes` outputs (same number of inputs).
///
/// # Errors
///
/// Returns [`DnnError::InvalidConfiguration`] when the network is empty or
/// its last layer is not a dense layer.
pub fn transfer_to_new_head(
    network: &mut Network,
    new_classes: usize,
    seed: u64,
) -> Result<(), DnnError> {
    let last_index =
        network
            .len()
            .checked_sub(1)
            .ok_or_else(|| DnnError::InvalidConfiguration {
                context: "cannot replace the head of an empty network".to_string(),
            })?;
    let inputs = {
        let last = &network.layers()[last_index];
        let dense = last.as_any().downcast_ref::<Dense>().ok_or_else(|| {
            DnnError::InvalidConfiguration {
                context: format!(
                    "last layer is '{}', expected a dense classifier head",
                    last.name()
                ),
            }
        })?;
        dense.inputs()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    network.layers_mut()[last_index] = Box::new(Dense::new(inputs, new_classes, &mut rng));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, SyntheticImageConfig};
    use crate::layers::{Flatten, Relu};
    use crate::training::{Trainer, TrainingConfig};

    fn backbone(classes: usize) -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        Network::new(vec![
            Box::new(Flatten::new()),
            Box::new(Dense::new(64, 24, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(24, classes, &mut rng)),
        ])
    }

    #[test]
    fn head_replacement_changes_the_output_size() {
        let mut network = backbone(16);
        assert_eq!(network.output_shape(&[1, 8, 8]).unwrap(), vec![16]);
        transfer_to_new_head(&mut network, 10, 99).unwrap();
        assert_eq!(network.output_shape(&[1, 8, 8]).unwrap(), vec![10]);
    }

    #[test]
    fn head_replacement_requires_a_dense_head() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut network = Network::new(vec![
            Box::new(Dense::new(8, 4, &mut rng)),
            Box::new(Relu::new()),
        ]);
        assert!(transfer_to_new_head(&mut network, 10, 1).is_err());
        let mut empty = Network::new(vec![]);
        assert!(transfer_to_new_head(&mut empty, 10, 1).is_err());
    }

    #[test]
    fn transfer_learning_reaches_useful_accuracy_on_the_new_task() {
        // Pre-train on a 4-class task, then transfer to a 3-class task.
        let pretrain = Dataset::synthetic(SyntheticImageConfig {
            classes: 4,
            ..SyntheticImageConfig::tiny()
        });
        let target = Dataset::synthetic(SyntheticImageConfig {
            classes: 3,
            seed: 77,
            ..SyntheticImageConfig::tiny()
        });
        let mut network = backbone(4);
        let trainer = Trainer::new(TrainingConfig {
            epochs: 10,
            learning_rate: 0.05,
            learning_rate_decay: 0.95,
        });
        trainer.train(&mut network, &pretrain).unwrap();
        transfer_to_new_head(&mut network, 3, 5).unwrap();
        let history = trainer.train_head_only(&mut network, &target).unwrap();
        assert!(
            *history.epoch_accuracies.last().unwrap() > 0.6,
            "transfer accuracy too low: {:?}",
            history.epoch_accuracies.last()
        );
    }
}
