//! INT4-quantized inference with pluggable product tables.
//!
//! [`QuantizedNetwork::from_network`] converts a trained FLOAT32 [`Network`]
//! into an INT4 network (post-training quantization of all convolution and
//! dense weights) whose every 4-bit magnitude product is routed through a
//! [`ProductTable`] — either the exact INT4 baseline or one of the in-SRAM
//! multiplier corners.  This is the inference path used for the paper's
//! Tables II and III.
//!
//! # Execution strategy
//!
//! When the product table is pure ([`ProductTable::supports_snapshot`]),
//! construction snapshots all 256 signed products into a flat lookup table
//! once, and inference accumulates integer products over contiguous im2col
//! patches — one array index per product instead of one virtual call, with
//! convolutions lowered through the same [`crate::im2col`] unrolling as the
//! FLOAT32 path.  Stateful tables (e.g.
//! [`crate::multiplier::CountingProducts`]) opt out of the snapshot and run
//! the original per-product dynamic-dispatch loop instead.  Both paths
//! accumulate in the integer domain, so their outputs are **bit-identical**
//! — pinned by the equivalence tests.

use crate::error::DnnError;
use crate::im2col::im2col;
use crate::layers::{Conv2d, Dense, Flatten, GlobalAvgPool, Layer, MaxPool2d, Relu, ResidualBlock};
use crate::multiplier::ProductTable;
use crate::network::Network;
use crate::quantization::{quantize_activations, quantize_weights, QuantizationParams};
use crate::tensor::Tensor;
use std::sync::Arc;

/// Entries of the flattened signed-product table: 16 weight codes × 16
/// activation codes.
const LUT_SIZE: usize = 256;

/// Signed products of one weight code against all 16 activation magnitudes,
/// flattened per weight so the inner inference loop reads a contiguous
/// 16-entry sub-table.
///
/// Index layout: `lut[code * 16 + activation]` with `code = weight + 8`
/// (weights span −7…7).  Entries where either operand is zero are zero,
/// matching the reference path's skip-zero semantics even for non-ideal
/// tables whose hardware would produce a nonzero "product" with zero.
fn snapshot_products(products: &dyn ProductTable) -> Box<[i32; LUT_SIZE]> {
    let mut lut = Box::new([0i32; LUT_SIZE]);
    for weight in -7i8..=7 {
        let code = (weight + 8) as usize;
        if weight == 0 {
            continue;
        }
        for activation in 1u8..=15 {
            let magnitude = products.product(activation, weight.unsigned_abs());
            lut[code * 16 + activation as usize] = weight.signum() as i32 * magnitude as i32;
        }
    }
    lut
}

/// Quantized convolution parameters.
#[derive(Debug, Clone)]
struct QConv {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// Signed INT4 weights in `[out_c, in_c, k, k]` order.
    weights: Vec<i8>,
    /// The same weights as LUT codes (`weight + 8`), precomputed once.
    codes: Vec<u8>,
    weight_params: QuantizationParams,
    bias: Vec<f32>,
}

/// Quantized dense parameters.
#[derive(Debug, Clone)]
struct QDense {
    inputs: usize,
    outputs: usize,
    weights: Vec<i8>,
    /// The same weights as LUT codes (`weight + 8`), precomputed once.
    codes: Vec<u8>,
    weight_params: QuantizationParams,
    bias: Vec<f32>,
}

fn weight_codes(weights: &[i8]) -> Vec<u8> {
    weights.iter().map(|&w| (w + 8) as u8).collect()
}

/// One layer of the quantized network.
#[derive(Debug, Clone)]
enum QLayer {
    Conv(QConv),
    Dense(QDense),
    Residual { conv1: QConv, conv2: QConv },
    Relu,
    MaxPool,
    GlobalAvgPool,
    Flatten,
}

/// An INT4-quantized network executing all products through a [`ProductTable`].
#[derive(Debug)]
pub struct QuantizedNetwork {
    layers: Vec<QLayer>,
    products: Arc<dyn ProductTable>,
    /// Flat signed-product table; `None` when the product table is stateful
    /// and must be consulted per product (see [`ProductTable::supports_snapshot`]).
    lut: Option<Box<[i32; LUT_SIZE]>>,
}

impl QuantizedNetwork {
    /// Quantizes a trained FLOAT32 network.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfiguration`] when the network contains a
    /// layer type the quantizer does not support.
    pub fn from_network(
        network: &Network,
        products: Arc<dyn ProductTable>,
    ) -> Result<Self, DnnError> {
        let mut layers = Vec::with_capacity(network.len());
        for layer in network.layers() {
            layers.push(Self::convert_layer(layer.as_ref())?);
        }
        let lut = products
            .supports_snapshot()
            .then(|| snapshot_products(products.as_ref()));
        Ok(QuantizedNetwork {
            layers,
            products,
            lut,
        })
    }

    fn convert_layer(layer: &dyn Layer) -> Result<QLayer, DnnError> {
        let any = layer.as_any();
        if let Some(conv) = any.downcast_ref::<Conv2d>() {
            return Ok(QLayer::Conv(Self::convert_conv(conv)));
        }
        if let Some(dense) = any.downcast_ref::<Dense>() {
            let (weights, weight_params) = quantize_weights(dense.weights());
            let codes = weight_codes(&weights);
            return Ok(QLayer::Dense(QDense {
                inputs: dense.inputs(),
                outputs: dense.outputs(),
                weights,
                codes,
                weight_params,
                bias: dense.bias().to_vec(),
            }));
        }
        if let Some(block) = any.downcast_ref::<ResidualBlock>() {
            let (conv1, conv2) = block.convolutions();
            return Ok(QLayer::Residual {
                conv1: Self::convert_conv(conv1),
                conv2: Self::convert_conv(conv2),
            });
        }
        if any.downcast_ref::<Relu>().is_some() {
            return Ok(QLayer::Relu);
        }
        if any.downcast_ref::<MaxPool2d>().is_some() {
            return Ok(QLayer::MaxPool);
        }
        if any.downcast_ref::<GlobalAvgPool>().is_some() {
            return Ok(QLayer::GlobalAvgPool);
        }
        if any.downcast_ref::<Flatten>().is_some() {
            return Ok(QLayer::Flatten);
        }
        Err(DnnError::InvalidConfiguration {
            context: format!("layer '{}' cannot be quantized", layer.name()),
        })
    }

    fn convert_conv(conv: &Conv2d) -> QConv {
        let (weights, weight_params) = quantize_weights(conv.weights());
        let codes = weight_codes(&weights);
        QConv {
            in_channels: conv.in_channels(),
            out_channels: conv.out_channels(),
            kernel: conv.kernel(),
            weights,
            codes,
            weight_params,
            bias: conv.bias().to_vec(),
        }
    }

    /// The product table in use.
    pub fn products(&self) -> &Arc<dyn ProductTable> {
        &self.products
    }

    /// Whether inference runs on the flattened 256-entry product LUT
    /// (`true`) or on the per-product dynamic-dispatch reference path.
    pub fn uses_snapshot(&self) -> bool {
        self.lut.is_some()
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` for an empty network.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs quantized inference on one input image.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        let mut layers = self.layers.iter();
        let mut current = match layers.next() {
            Some(first) => self.forward_layer(first, input)?,
            None => return Ok(input.clone()),
        };
        for layer in layers {
            current = self.forward_layer(layer, &current)?;
        }
        Ok(current)
    }

    fn forward_layer(&self, layer: &QLayer, input: &Tensor) -> Result<Tensor, DnnError> {
        match layer {
            QLayer::Conv(conv) => self.forward_conv(conv, input),
            QLayer::Dense(dense) => self.forward_dense(dense, input),
            QLayer::Residual { conv1, conv2 } => {
                let mut branch = self.forward_conv(conv1, input)?;
                branch.map_inplace(|v| v.max(0.0));
                let mut branch = self.forward_conv(conv2, &branch)?;
                branch.add_assign(input)?;
                branch.map_inplace(|v| v.max(0.0));
                Ok(branch)
            }
            QLayer::Relu => Ok(input.map(|v| v.max(0.0))),
            QLayer::MaxPool => MaxPool2d::new().infer(input),
            QLayer::GlobalAvgPool => GlobalAvgPool::new().infer(input),
            QLayer::Flatten => input.reshaped(&[input.len()]),
        }
    }

    fn check_conv_input(conv: &QConv, input: &Tensor) -> Result<(usize, usize), DnnError> {
        let shape = input.shape();
        if shape.len() != 3 || shape[0] != conv.in_channels {
            return Err(DnnError::ShapeMismatch {
                expected: vec![conv.in_channels, 0, 0],
                found: shape.to_vec(),
            });
        }
        Ok((shape[1], shape[2]))
    }

    fn forward_conv(&self, conv: &QConv, input: &Tensor) -> Result<Tensor, DnnError> {
        match &self.lut {
            Some(lut) => Self::forward_conv_lut(conv, input, lut),
            None => self.forward_conv_reference(conv, input),
        }
    }

    fn forward_dense(&self, dense: &QDense, input: &Tensor) -> Result<Tensor, DnnError> {
        match &self.lut {
            Some(lut) => Self::forward_dense_lut(dense, input, lut),
            None => self.forward_dense_reference(dense, input),
        }
    }

    /// LUT fast path: integer accumulation over contiguous im2col patches.
    ///
    /// The quantized activations are unrolled into a `[in_c·k², h·w]` patch
    /// matrix; for every output channel the inner loop streams one patch row
    /// and one output row while indexing the weight's contiguous 16-entry
    /// LUT sub-table — no branches, no virtual calls.  Integer addition is
    /// associative, so the result is bit-identical to the reference path.
    fn forward_conv_lut(
        conv: &QConv,
        input: &Tensor,
        lut: &[i32; LUT_SIZE],
    ) -> Result<Tensor, DnnError> {
        let (height, width) = Self::check_conv_input(conv, input)?;
        let (activations, activation_params) = quantize_activations(input.data());
        let scale = conv.weight_params.scale * activation_params.scale;
        let hw = height * width;
        let patch = conv.in_channels * conv.kernel * conv.kernel;

        let mut cols: Vec<u8> = Vec::new();
        im2col(
            &activations,
            0u8,
            conv.in_channels,
            height,
            width,
            conv.kernel,
            &mut cols,
        );

        let mut output = vec![0.0f32; conv.out_channels * hw];
        let mut accumulator = vec![0i64; hw];
        for oc in 0..conv.out_channels {
            accumulator.iter_mut().for_each(|acc| *acc = 0);
            let codes = &conv.codes[oc * patch..(oc + 1) * patch];
            for (row, &code) in codes.iter().enumerate() {
                if code == 8 {
                    continue; // zero weight: contributes nothing
                }
                let sub = &lut[code as usize * 16..code as usize * 16 + 16];
                let col_row = &cols[row * hw..(row + 1) * hw];
                for (acc, &activation) in accumulator.iter_mut().zip(col_row.iter()) {
                    *acc += sub[activation as usize] as i64;
                }
            }
            let bias = conv.bias[oc];
            for (out, &acc) in output[oc * hw..(oc + 1) * hw]
                .iter_mut()
                .zip(accumulator.iter())
            {
                *out = acc as f32 * scale + bias;
            }
        }
        Tensor::from_vec(&[conv.out_channels, height, width], output)
    }

    /// LUT fast path for dense layers: one contiguous weight-code row per
    /// output against the quantized input vector.
    fn forward_dense_lut(
        dense: &QDense,
        input: &Tensor,
        lut: &[i32; LUT_SIZE],
    ) -> Result<Tensor, DnnError> {
        if input.len() != dense.inputs {
            return Err(DnnError::ShapeMismatch {
                expected: vec![dense.inputs],
                found: input.shape().to_vec(),
            });
        }
        let (activations, activation_params) = quantize_activations(input.data());
        let scale = dense.weight_params.scale * activation_params.scale;
        let mut output = vec![0.0f32; dense.outputs];
        for (o, out_value) in output.iter_mut().enumerate() {
            let codes = &dense.codes[o * dense.inputs..(o + 1) * dense.inputs];
            let mut accumulator: i64 = 0;
            for (&code, &activation) in codes.iter().zip(activations.iter()) {
                accumulator += lut[code as usize * 16 + activation as usize] as i64;
            }
            *out_value = accumulator as f32 * scale + dense.bias[o];
        }
        Tensor::from_vec(&[dense.outputs], output)
    }

    /// Reference path: one [`ProductTable::product`] virtual call per
    /// nonzero product pair.  Used when the table is stateful (e.g. counting
    /// multiplications) and by the equivalence tests as ground truth.
    fn forward_conv_reference(&self, conv: &QConv, input: &Tensor) -> Result<Tensor, DnnError> {
        let (height, width) = Self::check_conv_input(conv, input)?;
        let (activations, activation_params) = quantize_activations(input.data());
        let pad = conv.kernel / 2;
        let k = conv.kernel;
        let scale = conv.weight_params.scale * activation_params.scale;
        let mut output = Tensor::zeros(&[conv.out_channels, height, width]);
        let out = output.data_mut();

        for oc in 0..conv.out_channels {
            for y in 0..height {
                for x in 0..width {
                    let mut accumulator: i64 = 0;
                    for ic in 0..conv.in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = y as isize + ky as isize - pad as isize;
                                let ix = x as isize + kx as isize - pad as isize;
                                if iy < 0 || ix < 0 || iy >= height as isize || ix >= width as isize
                                {
                                    continue;
                                }
                                let weight =
                                    conv.weights[((oc * conv.in_channels + ic) * k + ky) * k + kx];
                                if weight == 0 {
                                    continue;
                                }
                                let activation =
                                    activations[(ic * height + iy as usize) * width + ix as usize];
                                if activation == 0 {
                                    continue;
                                }
                                let magnitude =
                                    self.products.product(activation, weight.unsigned_abs());
                                accumulator += weight.signum() as i64 * magnitude as i64;
                            }
                        }
                    }
                    out[(oc * height + y) * width + x] = accumulator as f32 * scale + conv.bias[oc];
                }
            }
        }
        Ok(output)
    }

    /// Reference dense path (see [`Self::forward_conv_reference`]).
    fn forward_dense_reference(&self, dense: &QDense, input: &Tensor) -> Result<Tensor, DnnError> {
        if input.len() != dense.inputs {
            return Err(DnnError::ShapeMismatch {
                expected: vec![dense.inputs],
                found: input.shape().to_vec(),
            });
        }
        let (activations, activation_params) = quantize_activations(input.data());
        let scale = dense.weight_params.scale * activation_params.scale;
        let mut output = vec![0.0f32; dense.outputs];
        for (o, out_value) in output.iter_mut().enumerate() {
            let row = &dense.weights[o * dense.inputs..(o + 1) * dense.inputs];
            let mut accumulator: i64 = 0;
            for (weight, &activation) in row.iter().zip(activations.iter()) {
                if *weight == 0 || activation == 0 {
                    continue;
                }
                let magnitude = self.products.product(activation, weight.unsigned_abs());
                accumulator += weight.signum() as i64 * magnitude as i64;
            }
            *out_value = accumulator as f32 * scale + dense.bias[o];
        }
        Tensor::from_vec(&[dense.outputs], output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, SyntheticImageConfig};
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use crate::multiplier::{CountingProducts, ExactInt4Products, InMemoryProducts};
    use crate::training::{Trainer, TrainingConfig};
    use optima_imc::multiplier::MultiplierTable;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn small_cnn(classes: usize) -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 4 * 4, classes, &mut rng)),
        ])
    }

    #[test]
    fn quantized_network_mirrors_float_network_closely() {
        let dataset = Dataset::synthetic(SyntheticImageConfig::tiny());
        let mut network = small_cnn(3);
        Trainer::new(TrainingConfig {
            epochs: 8,
            learning_rate: 0.05,
            learning_rate_decay: 0.95,
        })
        .train(&mut network, &dataset)
        .unwrap();

        let quantized =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        assert_eq!(quantized.len(), network.len());
        assert!(!quantized.is_empty());
        assert!(quantized.uses_snapshot());

        // On most samples the INT4 prediction should match the FLOAT32 one.
        let mut agreement = 0usize;
        let mut total = 0usize;
        for (image, _) in dataset.test_iter() {
            let float_prediction = network.forward(image).unwrap().argmax();
            let int4_prediction = quantized.forward(image).unwrap().argmax();
            if float_prediction == int4_prediction {
                agreement += 1;
            }
            total += 1;
        }
        assert!(
            agreement * 10 >= total * 7,
            "only {agreement}/{total} predictions agree after quantization"
        );
    }

    #[test]
    fn lut_path_is_bit_identical_to_the_dyn_dispatch_reference() {
        // Wrapping in CountingProducts disables the snapshot, so the same
        // table runs once through the LUT and once through the per-product
        // virtual-call loop; integer accumulation makes them bit-identical.
        let network = small_cnn(3);
        let table = MultiplierTable::exact();
        let fast = QuantizedNetwork::from_network(
            &network,
            Arc::new(InMemoryProducts::new(table.clone(), "exact")),
        )
        .unwrap();
        let reference = QuantizedNetwork::from_network(
            &network,
            Arc::new(CountingProducts::new(Arc::new(InMemoryProducts::new(
                table, "exact",
            )))),
        )
        .unwrap();
        assert!(fast.uses_snapshot());
        assert!(!reference.uses_snapshot());
        for seed in 0..5u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let image =
                Tensor::from_vec(&[1, 8, 8], (0..64).map(|_| rng.gen::<f32>()).collect()).unwrap();
            let fast_out = fast.forward(&image).unwrap();
            let reference_out = reference.forward(&image).unwrap();
            assert_eq!(fast_out, reference_out, "seed {seed}");
        }
    }

    #[test]
    fn exact_table_and_exact_products_give_identical_results() {
        let network = small_cnn(3);
        let via_products =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        let via_table = QuantizedNetwork::from_network(
            &network,
            Arc::new(InMemoryProducts::new(MultiplierTable::exact(), "exact")),
        )
        .unwrap();
        let image =
            Tensor::from_vec(&[1, 8, 8], (0..64).map(|i| (i % 7) as f32 / 7.0).collect()).unwrap();
        assert_eq!(
            via_products.forward(&image).unwrap(),
            via_table.forward(&image).unwrap()
        );
    }

    #[test]
    fn counting_products_count_the_nonzero_macs() {
        let network = small_cnn(3);
        let counting = Arc::new(CountingProducts::new(Arc::new(ExactInt4Products)));
        let quantized = QuantizedNetwork::from_network(&network, counting.clone()).unwrap();
        assert!(
            !quantized.uses_snapshot(),
            "a counting table must not be snapshotted away"
        );
        let image = Tensor::from_vec(&[1, 8, 8], vec![0.5; 64]).unwrap();
        let _ = quantized.forward(&image).unwrap();
        let upper_bound = network.multiplications(&[1, 8, 8]).unwrap();
        assert!(counting.count() > 0);
        assert!(
            counting.count() <= upper_bound,
            "skipping zeros can only reduce the count"
        );
        assert_eq!(quantized.products().name(), "exact-int4");
    }

    #[test]
    fn shape_errors_are_reported() {
        let network = small_cnn(3);
        let quantized =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        assert!(quantized.forward(&Tensor::zeros(&[2, 8, 8])).is_err());
    }
}
