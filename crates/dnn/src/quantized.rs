//! Narrow-integer quantized inference with pluggable product tables.
//!
//! [`QuantizedNetwork::from_network`] converts a trained FLOAT32 [`Network`]
//! into a quantized network (post-training quantization of all convolution
//! and dense weights) whose every magnitude product is routed through a
//! [`ProductTable`] — either an exact baseline or one of the in-SRAM
//! multiplier corners.  The operand width follows
//! [`ProductTable::operand_bits`]: 4 bits reproduces the paper's Tables II
//! and III pipeline, while wider tables (e.g. a composed INT8 geometry) run
//! the same engine with proportionally wider codes.
//!
//! # Execution strategy
//!
//! When the product table is pure ([`ProductTable::supports_snapshot`]),
//! construction snapshots all `1 << 2·operand_bits` signed products into a
//! flat lookup table once, and inference accumulates integer products over
//! contiguous im2col patches — one array index per product instead of one
//! virtual call, with convolutions lowered through the same [`crate::im2col`]
//! unrolling as the FLOAT32 path.  Stateful tables (e.g.
//! [`crate::multiplier::CountingProducts`]) opt out of the snapshot and run
//! the original per-product dynamic-dispatch loop instead.  Both paths
//! accumulate in the integer domain, so their outputs are **bit-identical**
//! — pinned by the equivalence tests.

use crate::error::DnnError;
use crate::im2col::im2col;
use crate::layers::{Conv2d, Dense, Flatten, GlobalAvgPool, Layer, MaxPool2d, Relu, ResidualBlock};
use crate::multiplier::ProductTable;
use crate::network::Network;
use crate::quantization::{
    quantize_activations_bits, quantize_activations_bits_into, quantize_weights_bits,
    QuantizationParams,
};
use crate::scratch::KernelScratch;
use crate::tensor::Tensor;
use std::sync::Arc;

/// Pixels gathered per LUT sweep step; matches the f32 micro-kernel's
/// [`optima_math::gemm::LANES`] so both hot paths vectorize the same way.
pub const GATHER_LANES: usize = 8;

/// Signed products of one weight code against all activation magnitudes,
/// flattened per weight so the inner inference loop reads a contiguous
/// `2^bits`-entry sub-table.
///
/// Index layout: `lut[code * 2^bits + activation]` with
/// `code = weight + 2^(bits−1)` (weights span `−(2^(bits−1)−1)…2^(bits−1)−1`);
/// `2^bits` entries per code, `1 << 2·bits` entries total (256 for the
/// paper's INT4 default).  Entries where either operand is zero are zero,
/// matching the reference path's skip-zero semantics even for non-ideal
/// tables whose hardware would produce a nonzero "product" with zero.
fn snapshot_products(products: &dyn ProductTable) -> Box<[i32]> {
    let bits = products.operand_bits();
    let stride = 1usize << bits;
    let half = (stride / 2) as i32;
    let mut lut = vec![0i32; stride * stride].into_boxed_slice();
    for weight in (1 - half)..half {
        let code = (weight + half) as usize;
        if weight == 0 {
            continue;
        }
        for activation in 1..stride {
            let magnitude = products.product(activation as u8, weight.unsigned_abs() as u8);
            lut[code * stride + activation] = weight.signum() * magnitude as i32;
        }
    }
    lut
}

/// Whether per-lane accumulators summing up to `depth` LUT entries of
/// magnitude at most `lut_max_abs` fit in an `i32`.  Integer addition is
/// associative, so the `i32` and `i64` lane paths produce bit-identical
/// sums whenever this holds; the `i64` fallback only exists for degenerate
/// tables whose entries could overflow 32 bits mid-sum.
fn lut_fits_i32(depth: usize, lut_max_abs: i64) -> bool {
    depth as i64 <= i32::MAX as i64 / lut_max_abs.max(1)
}

/// Accumulates `BLOCKS` consecutive `GATHER_LANES`-pixel blocks of the
/// im2col patch matrix: for every weight code, gathers the code's contiguous
/// `stride`-entry LUT sub-table at the blocks' activation codes and adds
/// into `BLOCKS × 8` integer lanes held in registers.
///
/// Two deliberate choices keep the inner loop branch- and bounds-check-free:
///
/// * zero-weight codes index an all-zero LUT sub-table, so the rows are
///   accumulated unconditionally instead of branching on the (data-dependent,
///   poorly predicted) zero test — the integer sums are unchanged;
/// * activation codes are masked with `stride - 1` (`stride` is a power of
///   two and the quantizer emits codes `< stride`, so the mask never alters
///   an index) — the compiler can then prove every gather stays inside the
///   `stride`-long sub-table and drops the per-element bounds check.
///
/// Each pixel's accumulator sums its rows in ascending order regardless of
/// `BLOCKS`, so every block width produces bit-identical results.
#[inline(always)]
fn gather_lanes<T, const BLOCKS: usize>(
    codes: &[u8],
    cols: &[u8],
    hw: usize,
    x0: usize,
    lut: &[i32],
    stride: usize,
) -> [[T; GATHER_LANES]; BLOCKS]
where
    T: Copy + Default + std::ops::AddAssign + From<i32>,
{
    // optima-lint: hot
    let mask = stride - 1;
    let mut acc = [[T::default(); GATHER_LANES]; BLOCKS];
    for (&code, row) in codes.iter().zip(cols.chunks_exact(hw)) {
        let sub = &lut[code as usize * stride..code as usize * stride + stride];
        let pixels = &row[x0..x0 + BLOCKS * GATHER_LANES];
        for (acc_lanes, block) in acc.iter_mut().zip(pixels.chunks_exact(GATHER_LANES)) {
            for (lane, &activation) in acc_lanes.iter_mut().zip(block.iter()) {
                *lane += T::from(sub[activation as usize & mask]);
            }
        }
    }
    // optima-lint: end-hot
    acc
}

/// Scales one gather's accumulator blocks into the output row.  `i32` and
/// `i64` accumulators widen through `i64` on the way to `f32`; both casts of
/// the same integer value round to the same `f32`, so the two dispatch arms
/// stay bit-identical.
#[inline(always)]
fn store_blocks<T, const BLOCKS: usize>(
    acc: &[[T; GATHER_LANES]; BLOCKS],
    out: &mut [f32],
    scale: f32,
    bias: f32,
) where
    T: Copy + Into<i64>,
{
    for (lanes, out_block) in acc.iter().zip(out.chunks_exact_mut(GATHER_LANES)) {
        for (out, &lane) in out_block.iter_mut().zip(lanes.iter()) {
            *out = lane.into() as f32 * scale + bias;
        }
    }
}

/// The convolution LUT sweep shared by the allocating and scratch-arena
/// paths: walks the `[patch, hw]` im2col matrix 32 pixels at a time (four
/// 8-lane blocks per row sweep, amortising the per-row sub-table setup of
/// [`gather_lanes`]), then 8 at a time, then finishes the `hw % 8` tail with
/// a scalar loop.  Bit-identical to a row-outer scalar sweep because integer
/// addition is associative and each pixel's rows accumulate in ascending
/// order at every block width.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn conv_lut_core_body(
    conv: &QConv,
    cols: &[u8],
    hw: usize,
    lut: &[i32],
    lut_max_abs: i64,
    bits: u8,
    scale: f32,
    out: &mut [f32],
) {
    const SWEEP: usize = 4; // blocks per wide row sweep: 32 pixels
    let stride = 1usize << bits;
    let zero_code = (stride / 2) as u8;
    let patch = conv.in_channels * conv.kernel * conv.kernel;
    let narrow = lut_fits_i32(patch, lut_max_abs);
    // optima-lint: hot
    for (oc, out_row) in out.chunks_exact_mut(hw).enumerate() {
        let codes = &conv.codes[oc * patch..(oc + 1) * patch];
        let bias = conv.bias[oc];
        let mut x0 = 0usize;
        if narrow {
            while x0 + SWEEP * GATHER_LANES <= hw {
                let acc: [[i32; GATHER_LANES]; SWEEP] =
                    gather_lanes(codes, cols, hw, x0, lut, stride);
                store_blocks(&acc, &mut out_row[x0..], scale, bias);
                x0 += SWEEP * GATHER_LANES;
            }
            while x0 + GATHER_LANES <= hw {
                let acc: [[i32; GATHER_LANES]; 1] = gather_lanes(codes, cols, hw, x0, lut, stride);
                store_blocks(&acc, &mut out_row[x0..], scale, bias);
                x0 += GATHER_LANES;
            }
        } else {
            while x0 + SWEEP * GATHER_LANES <= hw {
                let acc: [[i64; GATHER_LANES]; SWEEP] =
                    gather_lanes(codes, cols, hw, x0, lut, stride);
                store_blocks(&acc, &mut out_row[x0..], scale, bias);
                x0 += SWEEP * GATHER_LANES;
            }
            while x0 + GATHER_LANES <= hw {
                let acc: [[i64; GATHER_LANES]; 1] = gather_lanes(codes, cols, hw, x0, lut, stride);
                store_blocks(&acc, &mut out_row[x0..], scale, bias);
                x0 += GATHER_LANES;
            }
        }
        for (x, out) in out_row.iter_mut().enumerate().skip(x0) {
            let mut acc: i64 = 0;
            for (row, &code) in codes.iter().enumerate() {
                if code == zero_code {
                    continue;
                }
                acc += lut[code as usize * stride + cols[row * hw + x] as usize] as i64;
            }
            *out = acc as f32 * scale + bias;
        }
    }
    // optima-lint: end-hot
}

/// One 16-pixel row sweep through the patch matrix with `vpgatherdd`: each
/// 8-pixel block's LUT lookups run as one hardware gather, with two
/// independent accumulators to hide gather latency.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn sweep2_gather(
    codes: &[u8],
    cols: &[u8],
    hw: usize,
    x0: usize,
    lut: &[i32],
    stride: usize,
    lane_mask: std::arch::x86_64::__m256i,
) -> (std::arch::x86_64::__m256i, std::arch::x86_64::__m256i) {
    use std::arch::x86_64::*;
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    for (&code, row) in codes.iter().zip(cols.chunks_exact(hw)) {
        // SAFETY: the masked sub-table index stays below `stride` and the
        // masked code keeps `code * stride + stride - 1` below
        // `lut.len() == stride * stride`, so every gather reads inside
        // `lut`; the two 8-byte activation loads sit inside `row` because
        // the caller guarantees `x0 + 16 <= hw == row.len()`.
        let sub = lut.as_ptr().add((code as usize & (stride - 1)) * stride);
        let bytes0 = _mm_loadl_epi64(row.as_ptr().add(x0) as *const __m128i);
        let bytes1 = _mm_loadl_epi64(row.as_ptr().add(x0 + GATHER_LANES) as *const __m128i);
        let idx0 = _mm256_and_si256(_mm256_cvtepu8_epi32(bytes0), lane_mask);
        let idx1 = _mm256_and_si256(_mm256_cvtepu8_epi32(bytes1), lane_mask);
        acc0 = _mm256_add_epi32(acc0, _mm256_i32gather_epi32::<4>(sub, idx0));
        acc1 = _mm256_add_epi32(acc1, _mm256_i32gather_epi32::<4>(sub, idx1));
    }
    (acc0, acc1)
}

/// One 16-pixel row sweep specialised to INT4 (`stride == 16`): the whole
/// 16-entry LUT sub-table of a weight code fits in two YMM registers, so
/// each lookup is a register permute (`vpermd` selects on the index's low
/// three bits, a compare-and-blend on bit 3 picks the upper half) instead
/// of a memory gather.  Lookups beyond index 15 reduce to `index & 15`,
/// matching the masked gather path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn sweep2_permute16(
    codes: &[u8],
    cols: &[u8],
    hw: usize,
    x0: usize,
    lut: &[i32],
) -> (std::arch::x86_64::__m256i, std::arch::x86_64::__m256i) {
    use std::arch::x86_64::*;
    const STRIDE: usize = 16;
    let seven = _mm256_set1_epi32(7);
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    for (&code, row) in codes.iter().zip(cols.chunks_exact(hw)) {
        // SAFETY: the masked code keeps the 16-entry sub-table inside
        // `lut.len() == 256`, and the caller guarantees
        // `x0 + 16 <= hw == row.len()` for the two activation loads.
        let sub = lut.as_ptr().add((code as usize & (STRIDE - 1)) * STRIDE);
        let lo = _mm256_loadu_si256(sub as *const __m256i);
        let hi = _mm256_loadu_si256(sub.add(8) as *const __m256i);
        let idx0 = _mm256_cvtepu8_epi32(_mm_loadl_epi64(row.as_ptr().add(x0) as *const __m128i));
        let idx1 = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
            row.as_ptr().add(x0 + GATHER_LANES) as *const __m128i
        ));
        let pick_hi0 = _mm256_cmpgt_epi32(idx0, seven);
        let pick_hi1 = _mm256_cmpgt_epi32(idx1, seven);
        let gathered0 = _mm256_blendv_epi8(
            _mm256_permutevar8x32_epi32(lo, idx0),
            _mm256_permutevar8x32_epi32(hi, idx0),
            pick_hi0,
        );
        let gathered1 = _mm256_blendv_epi8(
            _mm256_permutevar8x32_epi32(lo, idx1),
            _mm256_permutevar8x32_epi32(hi, idx1),
            pick_hi1,
        );
        acc0 = _mm256_add_epi32(acc0, gathered0);
        acc1 = _mm256_add_epi32(acc1, gathered1);
    }
    (acc0, acc1)
}

/// AVX2 clone of the convolution LUT sweep: each 8-pixel block's LUT
/// lookups run as one `vpgatherdd` instead of eight scalar loads, with two
/// independent 8-lane accumulators per row sweep to hide gather latency.
/// The gathered values and the per-pixel accumulation order (ascending
/// rows, wrapping `i32` adds) are unchanged, so the clone is bit-identical
/// to the portable body.  The `i64` wide-accumulator case has no packed
/// gather; it falls through to the portable body.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn conv_lut_core_avx2(
    conv: &QConv,
    cols: &[u8],
    hw: usize,
    lut: &[i32],
    lut_max_abs: i64,
    bits: u8,
    scale: f32,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;

    let stride = 1usize << bits;
    let patch = conv.in_channels * conv.kernel * conv.kernel;
    if !lut_fits_i32(patch, lut_max_abs) {
        return conv_lut_core_body(conv, cols, hw, lut, lut_max_abs, bits, scale, out);
    }
    let zero_code = (stride / 2) as u8;
    let int4 = stride == 16;
    // The mask is a no-op on well-formed inputs (the quantizer emits codes
    // `< stride` on both operands); it bounds every gather inside `lut`
    // regardless, which is what makes the raw-pointer gathers sound.
    let lane_mask = _mm256_set1_epi32((stride - 1) as i32);
    // optima-lint: hot
    for (oc, out_row) in out.chunks_exact_mut(hw).enumerate() {
        let codes = &conv.codes[oc * patch..(oc + 1) * patch];
        let bias = conv.bias[oc];
        let mut x0 = 0usize;
        while x0 + 2 * GATHER_LANES <= hw {
            // SAFETY for both arms: `x0 + 16 <= hw == row.len()` bounds the
            // activation loads, and masked codes/indices bound every LUT
            // read (see the helpers' safety comments).
            let (acc0, acc1) = if int4 {
                sweep2_permute16(codes, cols, hw, x0, lut)
            } else {
                sweep2_gather(codes, cols, hw, x0, lut, stride, lane_mask)
            };
            let mut lanes = [0i32; 2 * GATHER_LANES];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc0);
            _mm256_storeu_si256(lanes.as_mut_ptr().add(GATHER_LANES) as *mut __m256i, acc1);
            for (out, &lane) in out_row[x0..x0 + 2 * GATHER_LANES]
                .iter_mut()
                .zip(lanes.iter())
            {
                *out = lane as f32 * scale + bias;
            }
            x0 += 2 * GATHER_LANES;
        }
        while x0 + GATHER_LANES <= hw {
            let mut acc = _mm256_setzero_si256();
            for (&code, row) in codes.iter().zip(cols.chunks_exact(hw)) {
                // SAFETY: same bounds argument as the two-block helpers,
                // with a single 8-byte load at `x0 + 8 <= hw`.
                let sub = lut.as_ptr().add((code as usize & (stride - 1)) * stride);
                let bytes = _mm_loadl_epi64(row.as_ptr().add(x0) as *const __m128i);
                let idx = _mm256_and_si256(_mm256_cvtepu8_epi32(bytes), lane_mask);
                acc = _mm256_add_epi32(acc, _mm256_i32gather_epi32::<4>(sub, idx));
            }
            let mut lanes = [0i32; GATHER_LANES];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            for (out, &lane) in out_row[x0..x0 + GATHER_LANES].iter_mut().zip(lanes.iter()) {
                *out = lane as f32 * scale + bias;
            }
            x0 += GATHER_LANES;
        }
        for (x, out) in out_row.iter_mut().enumerate().skip(x0) {
            let mut acc: i64 = 0;
            for (row, &code) in codes.iter().enumerate() {
                if code == zero_code {
                    continue;
                }
                acc += lut[code as usize * stride + cols[row * hw + x] as usize] as i64;
            }
            *out = acc as f32 * scale + bias;
        }
    }
    // optima-lint: end-hot
}

/// Dispatches the convolution LUT sweep to the AVX2 clone when the CPU
/// supports it, falling back to the portable body otherwise.
#[allow(clippy::too_many_arguments)]
fn conv_lut_core(
    conv: &QConv,
    cols: &[u8],
    hw: usize,
    lut: &[i32],
    lut_max_abs: i64,
    bits: u8,
    scale: f32,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 clone only runs after the (cached) runtime
        // feature check above confirmed the CPU supports it.
        return unsafe { conv_lut_core_avx2(conv, cols, hw, lut, lut_max_abs, bits, scale, out) };
    }
    conv_lut_core_body(conv, cols, hw, lut, lut_max_abs, bits, scale, out);
}

/// The dense LUT sweep shared by the allocating and scratch-arena paths:
/// eight integer lanes stream the (code, activation) pairs of one output
/// row, the lanes fold into an `i64`, and a scalar loop takes the
/// `inputs % 8` tail.  Zero codes index all-zero LUT sub-tables, so no
/// skip test is needed.
fn dense_lut_core(
    dense: &QDense,
    activations: &[u8],
    lut: &[i32],
    lut_max_abs: i64,
    bits: u8,
    scale: f32,
    out: &mut [f32],
) {
    let stride = 1usize << bits;
    let narrow = lut_fits_i32(dense.inputs, lut_max_abs);
    // optima-lint: hot
    for (o, out_value) in out.iter_mut().enumerate() {
        let codes = &dense.codes[o * dense.inputs..(o + 1) * dense.inputs];
        let mut total: i64 = 0;
        let code_chunks = codes.chunks_exact(GATHER_LANES);
        let act_chunks = activations.chunks_exact(GATHER_LANES);
        let code_tail = code_chunks.remainder();
        let act_tail = act_chunks.remainder();
        if narrow {
            let mut acc = [0i32; GATHER_LANES];
            for (code_block, act_block) in code_chunks.zip(act_chunks) {
                for ((lane, &code), &activation) in
                    acc.iter_mut().zip(code_block.iter()).zip(act_block.iter())
                {
                    *lane += lut[code as usize * stride + activation as usize];
                }
            }
            for &lane in &acc {
                total += lane as i64;
            }
        } else {
            let mut acc = [0i64; GATHER_LANES];
            for (code_block, act_block) in code_chunks.zip(act_chunks) {
                for ((lane, &code), &activation) in
                    acc.iter_mut().zip(code_block.iter()).zip(act_block.iter())
                {
                    *lane += lut[code as usize * stride + activation as usize] as i64;
                }
            }
            for &lane in &acc {
                total += lane;
            }
        }
        for (&code, &activation) in code_tail.iter().zip(act_tail.iter()) {
            total += lut[code as usize * stride + activation as usize] as i64;
        }
        *out_value = total as f32 * scale + dense.bias[o];
    }
    // optima-lint: end-hot
}

/// Quantized convolution parameters.
#[derive(Debug, Clone)]
struct QConv {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// Signed quantized weights in `[out_c, in_c, k, k]` order.
    weights: Vec<i8>,
    /// The same weights as LUT codes (`weight + 2^(bits−1)`), precomputed once.
    codes: Vec<u8>,
    weight_params: QuantizationParams,
    bias: Vec<f32>,
}

/// Quantized dense parameters.
#[derive(Debug, Clone)]
struct QDense {
    inputs: usize,
    outputs: usize,
    weights: Vec<i8>,
    /// The same weights as LUT codes (`weight + 2^(bits−1)`), precomputed once.
    codes: Vec<u8>,
    weight_params: QuantizationParams,
    bias: Vec<f32>,
}

fn weight_codes(weights: &[i8], bits: u8) -> Vec<u8> {
    let half = 1i16 << (bits - 1);
    weights.iter().map(|&w| (w as i16 + half) as u8).collect()
}

/// One layer of the quantized network.
#[derive(Debug, Clone)]
enum QLayer {
    Conv(QConv),
    Dense(QDense),
    Residual { conv1: QConv, conv2: QConv },
    Relu,
    MaxPool,
    GlobalAvgPool,
    Flatten,
}

/// A quantized network executing all products through a [`ProductTable`].
///
/// The operand width (and with it the LUT geometry and quantization ranges)
/// follows [`ProductTable::operand_bits`]; 4 bits is the paper's INT4
/// pipeline.
#[derive(Debug)]
pub struct QuantizedNetwork {
    layers: Vec<QLayer>,
    products: Arc<dyn ProductTable>,
    /// Operand width in bits, cached from the product table.
    bits: u8,
    /// Flat signed-product table (`1 << 2·bits` entries); `None` when the
    /// product table is stateful and must be consulted per product (see
    /// [`ProductTable::supports_snapshot`]).
    lut: Option<Box<[i32]>>,
    /// Largest LUT entry magnitude, measured at snapshot time; decides
    /// whether the gather kernels may accumulate in `i32` lanes (see
    /// [`lut_fits_i32`]).  Zero when no snapshot exists.
    lut_max_abs: i64,
}

impl QuantizedNetwork {
    /// Quantizes a trained FLOAT32 network at the product table's operand
    /// width.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfiguration`] when the network contains a
    /// layer type the quantizer does not support, or the product table
    /// reports an operand width outside 1..=8 bits.
    pub fn from_network(
        network: &Network,
        products: Arc<dyn ProductTable>,
    ) -> Result<Self, DnnError> {
        let bits = products.operand_bits();
        if !(1..=8).contains(&bits) {
            return Err(DnnError::InvalidConfiguration {
                context: format!(
                    "product table '{}' reports an operand width of {bits} bits (need 1..=8)",
                    products.name()
                ),
            });
        }
        let mut layers = Vec::with_capacity(network.len());
        for layer in network.layers() {
            layers.push(Self::convert_layer(layer.as_ref(), bits)?);
        }
        let lut = products
            .supports_snapshot()
            .then(|| snapshot_products(products.as_ref()));
        let lut_max_abs = lut.as_ref().map_or(0i64, |lut| {
            lut.iter().fold(0i64, |max, &v| max.max((v as i64).abs()))
        });
        Ok(QuantizedNetwork {
            layers,
            products,
            bits,
            lut,
            lut_max_abs,
        })
    }

    fn convert_layer(layer: &dyn Layer, bits: u8) -> Result<QLayer, DnnError> {
        let any = layer.as_any();
        if let Some(conv) = any.downcast_ref::<Conv2d>() {
            return Ok(QLayer::Conv(Self::convert_conv(conv, bits)));
        }
        if let Some(dense) = any.downcast_ref::<Dense>() {
            let (weights, weight_params) = quantize_weights_bits(dense.weights(), bits);
            let codes = weight_codes(&weights, bits);
            return Ok(QLayer::Dense(QDense {
                inputs: dense.inputs(),
                outputs: dense.outputs(),
                weights,
                codes,
                weight_params,
                bias: dense.bias().to_vec(),
            }));
        }
        if let Some(block) = any.downcast_ref::<ResidualBlock>() {
            let (conv1, conv2) = block.convolutions();
            return Ok(QLayer::Residual {
                conv1: Self::convert_conv(conv1, bits),
                conv2: Self::convert_conv(conv2, bits),
            });
        }
        if any.downcast_ref::<Relu>().is_some() {
            return Ok(QLayer::Relu);
        }
        if any.downcast_ref::<MaxPool2d>().is_some() {
            return Ok(QLayer::MaxPool);
        }
        if any.downcast_ref::<GlobalAvgPool>().is_some() {
            return Ok(QLayer::GlobalAvgPool);
        }
        if any.downcast_ref::<Flatten>().is_some() {
            return Ok(QLayer::Flatten);
        }
        Err(DnnError::InvalidConfiguration {
            context: format!("layer '{}' cannot be quantized", layer.name()),
        })
    }

    fn convert_conv(conv: &Conv2d, bits: u8) -> QConv {
        let (weights, weight_params) = quantize_weights_bits(conv.weights(), bits);
        let codes = weight_codes(&weights, bits);
        QConv {
            in_channels: conv.in_channels(),
            out_channels: conv.out_channels(),
            kernel: conv.kernel(),
            weights,
            codes,
            weight_params,
            bias: conv.bias().to_vec(),
        }
    }

    /// The product table in use.
    pub fn products(&self) -> &Arc<dyn ProductTable> {
        &self.products
    }

    /// Operand width in bits (4 for the paper's INT4 pipeline).
    pub fn operand_bits(&self) -> u8 {
        self.bits
    }

    /// Whether inference runs on the flattened `1 << 2·operand_bits`-entry
    /// product LUT (`true`) or on the per-product dynamic-dispatch reference
    /// path.
    pub fn uses_snapshot(&self) -> bool {
        self.lut.is_some()
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` for an empty network.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs quantized inference on one input image.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        let mut layers = self.layers.iter();
        let mut current = match layers.next() {
            Some(first) => self.forward_layer(first, input)?,
            None => return Ok(input.clone()),
        };
        for layer in layers {
            current = self.forward_layer(layer, &current)?;
        }
        Ok(current)
    }

    /// Runs quantized inference with every buffer drawn from `scratch`.
    ///
    /// Numerically identical to [`QuantizedNetwork::forward`] — quantized
    /// activation codes, u8 im2col patches and the ping-pong activation
    /// tensors all live in the arena, and the result is returned by
    /// reference (valid until the next call that borrows the same scratch).
    /// On the snapshot LUT path the steady state performs **zero** heap
    /// allocations per image; stateful product tables fall back to the
    /// allocating reference kernels (they are measurement instruments, not
    /// hot paths).
    ///
    /// # Errors
    ///
    /// Propagates shape errors; leased buffers are returned to the pool on
    /// the error path.
    pub fn forward_with<'s>(
        &self,
        input: &Tensor,
        scratch: &'s mut KernelScratch,
    ) -> Result<&'s Tensor, DnnError> {
        let mut current = scratch.lease();
        let mut next = scratch.lease();
        let result = self.forward_ping_pong(input, &mut current, &mut next, scratch);
        scratch.release(next);
        match result {
            Ok(()) => Ok(scratch.store_result(current)),
            Err(error) => {
                scratch.release(current);
                Err(error)
            }
        }
    }

    /// Runs a batch of images through one scratch-arena pass.
    ///
    /// The quantized mirror of [`crate::network::Network::infer_batch_with`]:
    /// every image streams through the same flattened product LUT and the
    /// same [`KernelScratch`] arena, so an N-image batch warms up once and
    /// then allocates nothing per image on the snapshot path.  Activation
    /// quantization stays **per image** (the activation scale is derived
    /// per tensor), which is exactly why the results are bit-identical to
    /// N independent [`QuantizedNetwork::forward_with`] calls — pinned by a
    /// regression test, and the correctness anchor of the `optima_serve`
    /// batch coalescer.
    ///
    /// `outputs` is resized to `inputs.len()` and overwritten in place;
    /// recycled tensors keep their capacity across bursts.
    ///
    /// # Errors
    ///
    /// Wraps the first failing image's error as
    /// [`DnnError::EvaluationFailed`] with its batch index.  Earlier slots
    /// hold valid logits; later slots are untouched.
    pub fn forward_batch_with(
        &self,
        inputs: &[&Tensor],
        outputs: &mut Vec<Tensor>,
        scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        outputs.resize_with(inputs.len(), Tensor::default);
        for (index, (input, output)) in inputs.iter().zip(outputs.iter_mut()).enumerate() {
            match self.forward_with(input, scratch) {
                Ok(logits) => output.copy_from(logits),
                Err(error) => {
                    return Err(DnnError::EvaluationFailed {
                        image_index: index,
                        source: Box::new(error),
                    })
                }
            }
        }
        Ok(())
    }

    /// The layer loop of [`QuantizedNetwork::forward_with`].
    fn forward_ping_pong(
        &self,
        input: &Tensor,
        current: &mut Tensor,
        next: &mut Tensor,
        scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        let mut layers = self.layers.iter();
        match layers.next() {
            Some(first) => self.forward_layer_into(first, input, current, scratch)?,
            None => current.copy_from(input),
        }
        for layer in layers {
            self.forward_layer_into(layer, current, next, scratch)?;
            std::mem::swap(current, next);
        }
        Ok(())
    }

    fn forward_layer_into(
        &self,
        layer: &QLayer,
        input: &Tensor,
        output: &mut Tensor,
        scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        match layer {
            QLayer::Conv(conv) => self.forward_conv_into(conv, input, output, scratch),
            QLayer::Dense(dense) => self.forward_dense_into(dense, input, output, scratch),
            QLayer::Residual { conv1, conv2 } => {
                let mut branch = scratch.lease();
                let result = (|| {
                    self.forward_conv_into(conv1, input, &mut branch, scratch)?;
                    branch.map_inplace(|v| v.max(0.0));
                    self.forward_conv_into(conv2, &branch, output, scratch)?;
                    output.add_assign(input)?;
                    output.map_inplace(|v| v.max(0.0));
                    Ok(())
                })();
                scratch.release(branch);
                result
            }
            QLayer::Relu => {
                output.copy_from(input);
                output.map_inplace(|v| v.max(0.0));
                Ok(())
            }
            QLayer::MaxPool => MaxPool2d::new().infer_into(input, output, scratch),
            QLayer::GlobalAvgPool => GlobalAvgPool::new().infer_into(input, output, scratch),
            QLayer::Flatten => {
                output.copy_from(input);
                output.reshape_in_place(&[input.len()])
            }
        }
    }

    /// Scratch-arena convolution: [`conv_lut_core`] over arena-held
    /// activation codes and patches.  Stateful tables take the allocating
    /// reference path and copy into `output`.
    fn forward_conv_into(
        &self,
        conv: &QConv,
        input: &Tensor,
        output: &mut Tensor,
        scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        match &self.lut {
            Some(lut) => {
                let (height, width) = Self::check_conv_input(conv, input)?;
                let activation_params = quantize_activations_bits_into(
                    input.data(),
                    self.bits,
                    &mut scratch.qactivations,
                );
                let scale = conv.weight_params.scale * activation_params.scale;
                im2col(
                    &scratch.qactivations,
                    0u8,
                    conv.in_channels,
                    height,
                    width,
                    conv.kernel,
                    &mut scratch.qcols,
                );
                output.resize_to(&[conv.out_channels, height, width]);
                conv_lut_core(
                    conv,
                    &scratch.qcols,
                    height * width,
                    lut,
                    self.lut_max_abs,
                    self.bits,
                    scale,
                    output.data_mut(),
                );
                Ok(())
            }
            None => {
                let result = self.forward_conv_reference(conv, input)?;
                output.copy_from(&result);
                Ok(())
            }
        }
    }

    /// Scratch-arena dense layer (see [`Self::forward_conv_into`]).
    fn forward_dense_into(
        &self,
        dense: &QDense,
        input: &Tensor,
        output: &mut Tensor,
        scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        match &self.lut {
            Some(lut) => {
                if input.len() != dense.inputs {
                    return Err(DnnError::ShapeMismatch {
                        expected: vec![dense.inputs],
                        found: input.shape().to_vec(),
                    });
                }
                let activation_params = quantize_activations_bits_into(
                    input.data(),
                    self.bits,
                    &mut scratch.qactivations,
                );
                let scale = dense.weight_params.scale * activation_params.scale;
                output.resize_to(&[dense.outputs]);
                dense_lut_core(
                    dense,
                    &scratch.qactivations,
                    lut,
                    self.lut_max_abs,
                    self.bits,
                    scale,
                    output.data_mut(),
                );
                Ok(())
            }
            None => {
                let result = self.forward_dense_reference(dense, input)?;
                output.copy_from(&result);
                Ok(())
            }
        }
    }

    fn forward_layer(&self, layer: &QLayer, input: &Tensor) -> Result<Tensor, DnnError> {
        match layer {
            QLayer::Conv(conv) => self.forward_conv(conv, input),
            QLayer::Dense(dense) => self.forward_dense(dense, input),
            QLayer::Residual { conv1, conv2 } => {
                let mut branch = self.forward_conv(conv1, input)?;
                branch.map_inplace(|v| v.max(0.0));
                let mut branch = self.forward_conv(conv2, &branch)?;
                branch.add_assign(input)?;
                branch.map_inplace(|v| v.max(0.0));
                Ok(branch)
            }
            QLayer::Relu => Ok(input.map(|v| v.max(0.0))),
            QLayer::MaxPool => MaxPool2d::new().infer(input),
            QLayer::GlobalAvgPool => GlobalAvgPool::new().infer(input),
            QLayer::Flatten => input.reshaped(&[input.len()]),
        }
    }

    fn check_conv_input(conv: &QConv, input: &Tensor) -> Result<(usize, usize), DnnError> {
        let shape = input.shape();
        if shape.len() != 3 || shape[0] != conv.in_channels {
            return Err(DnnError::ShapeMismatch {
                expected: vec![conv.in_channels, 0, 0],
                found: shape.to_vec(),
            });
        }
        Ok((shape[1], shape[2]))
    }

    fn forward_conv(&self, conv: &QConv, input: &Tensor) -> Result<Tensor, DnnError> {
        match &self.lut {
            Some(lut) => self.forward_conv_lut(conv, input, lut),
            None => self.forward_conv_reference(conv, input),
        }
    }

    fn forward_dense(&self, dense: &QDense, input: &Tensor) -> Result<Tensor, DnnError> {
        match &self.lut {
            Some(lut) => self.forward_dense_lut(dense, input, lut),
            None => self.forward_dense_reference(dense, input),
        }
    }

    /// LUT fast path: integer accumulation over contiguous im2col patches.
    ///
    /// The quantized activations are unrolled into a `[in_c·k², h·w]` patch
    /// matrix and swept by the eight-pixel gather kernel of
    /// [`conv_lut_core`] — no branches on the activation side, no virtual
    /// calls.  Integer addition is associative, so the result is
    /// bit-identical to the reference path.
    fn forward_conv_lut(
        &self,
        conv: &QConv,
        input: &Tensor,
        lut: &[i32],
    ) -> Result<Tensor, DnnError> {
        let (height, width) = Self::check_conv_input(conv, input)?;
        let (activations, activation_params) = quantize_activations_bits(input.data(), self.bits);
        let scale = conv.weight_params.scale * activation_params.scale;
        let mut cols: Vec<u8> = Vec::new();
        im2col(
            &activations,
            0u8,
            conv.in_channels,
            height,
            width,
            conv.kernel,
            &mut cols,
        );
        let mut output = Tensor::zeros(&[conv.out_channels, height, width]);
        conv_lut_core(
            conv,
            &cols,
            height * width,
            lut,
            self.lut_max_abs,
            self.bits,
            scale,
            output.data_mut(),
        );
        Ok(output)
    }

    /// LUT fast path for dense layers: one contiguous weight-code row per
    /// output against the quantized input vector, swept by the eight-lane
    /// kernel of [`dense_lut_core`].
    fn forward_dense_lut(
        &self,
        dense: &QDense,
        input: &Tensor,
        lut: &[i32],
    ) -> Result<Tensor, DnnError> {
        if input.len() != dense.inputs {
            return Err(DnnError::ShapeMismatch {
                expected: vec![dense.inputs],
                found: input.shape().to_vec(),
            });
        }
        let (activations, activation_params) = quantize_activations_bits(input.data(), self.bits);
        let scale = dense.weight_params.scale * activation_params.scale;
        let mut output = Tensor::zeros(&[dense.outputs]);
        dense_lut_core(
            dense,
            &activations,
            lut,
            self.lut_max_abs,
            self.bits,
            scale,
            output.data_mut(),
        );
        Ok(output)
    }

    /// Reference path: one [`ProductTable::product`] virtual call per
    /// nonzero product pair.  Used when the table is stateful (e.g. counting
    /// multiplications) and by the equivalence tests as ground truth.
    fn forward_conv_reference(&self, conv: &QConv, input: &Tensor) -> Result<Tensor, DnnError> {
        let (height, width) = Self::check_conv_input(conv, input)?;
        let (activations, activation_params) = quantize_activations_bits(input.data(), self.bits);
        let pad = conv.kernel / 2;
        let k = conv.kernel;
        let scale = conv.weight_params.scale * activation_params.scale;
        let mut output = Tensor::zeros(&[conv.out_channels, height, width]);
        let out = output.data_mut();

        for oc in 0..conv.out_channels {
            for y in 0..height {
                for x in 0..width {
                    let mut accumulator: i64 = 0;
                    for ic in 0..conv.in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = y as isize + ky as isize - pad as isize;
                                let ix = x as isize + kx as isize - pad as isize;
                                if iy < 0 || ix < 0 || iy >= height as isize || ix >= width as isize
                                {
                                    continue;
                                }
                                let weight =
                                    conv.weights[((oc * conv.in_channels + ic) * k + ky) * k + kx];
                                if weight == 0 {
                                    continue;
                                }
                                let activation =
                                    activations[(ic * height + iy as usize) * width + ix as usize];
                                if activation == 0 {
                                    continue;
                                }
                                let magnitude =
                                    self.products.product(activation, weight.unsigned_abs());
                                accumulator += weight.signum() as i64 * magnitude as i64;
                            }
                        }
                    }
                    out[(oc * height + y) * width + x] = accumulator as f32 * scale + conv.bias[oc];
                }
            }
        }
        Ok(output)
    }

    /// Reference dense path (see [`Self::forward_conv_reference`]).
    fn forward_dense_reference(&self, dense: &QDense, input: &Tensor) -> Result<Tensor, DnnError> {
        if input.len() != dense.inputs {
            return Err(DnnError::ShapeMismatch {
                expected: vec![dense.inputs],
                found: input.shape().to_vec(),
            });
        }
        let (activations, activation_params) = quantize_activations_bits(input.data(), self.bits);
        let scale = dense.weight_params.scale * activation_params.scale;
        let mut output = vec![0.0f32; dense.outputs];
        for (o, out_value) in output.iter_mut().enumerate() {
            let row = &dense.weights[o * dense.inputs..(o + 1) * dense.inputs];
            let mut accumulator: i64 = 0;
            for (weight, &activation) in row.iter().zip(activations.iter()) {
                if *weight == 0 || activation == 0 {
                    continue;
                }
                let magnitude = self.products.product(activation, weight.unsigned_abs());
                accumulator += weight.signum() as i64 * magnitude as i64;
            }
            *out_value = accumulator as f32 * scale + dense.bias[o];
        }
        Tensor::from_vec(&[dense.outputs], output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, SyntheticImageConfig};
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use crate::multiplier::{
        ComposedProducts, CountingProducts, ExactInt4Products, ExactProducts, InMemoryProducts,
    };
    use crate::training::{Trainer, TrainingConfig};
    use optima_imc::multiplier::MultiplierTable;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn small_cnn(classes: usize) -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 4 * 4, classes, &mut rng)),
        ])
    }

    #[test]
    fn quantized_network_mirrors_float_network_closely() {
        let dataset = Dataset::synthetic(SyntheticImageConfig::tiny());
        let mut network = small_cnn(3);
        Trainer::new(TrainingConfig {
            epochs: 8,
            learning_rate: 0.05,
            learning_rate_decay: 0.95,
        })
        .train(&mut network, &dataset)
        .unwrap();

        let quantized =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        assert_eq!(quantized.len(), network.len());
        assert!(!quantized.is_empty());
        assert!(quantized.uses_snapshot());

        // On most samples the INT4 prediction should match the FLOAT32 one.
        let mut agreement = 0usize;
        let mut total = 0usize;
        for (image, _) in dataset.test_iter() {
            let float_prediction = network.forward(image).unwrap().argmax();
            let int4_prediction = quantized.forward(image).unwrap().argmax();
            if float_prediction == int4_prediction {
                agreement += 1;
            }
            total += 1;
        }
        assert!(
            agreement * 10 >= total * 7,
            "only {agreement}/{total} predictions agree after quantization"
        );
    }

    #[test]
    fn lut_path_is_bit_identical_to_the_dyn_dispatch_reference() {
        // Wrapping in CountingProducts disables the snapshot, so the same
        // table runs once through the LUT and once through the per-product
        // virtual-call loop; integer accumulation makes them bit-identical.
        let network = small_cnn(3);
        let table = MultiplierTable::exact();
        let fast = QuantizedNetwork::from_network(
            &network,
            Arc::new(InMemoryProducts::new(table.clone(), "exact")),
        )
        .unwrap();
        let reference = QuantizedNetwork::from_network(
            &network,
            Arc::new(CountingProducts::new(Arc::new(InMemoryProducts::new(
                table, "exact",
            )))),
        )
        .unwrap();
        assert!(fast.uses_snapshot());
        assert!(!reference.uses_snapshot());
        for seed in 0..5u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let image =
                Tensor::from_vec(&[1, 8, 8], (0..64).map(|_| rng.gen::<f32>()).collect()).unwrap();
            let fast_out = fast.forward(&image).unwrap();
            let reference_out = reference.forward(&image).unwrap();
            assert_eq!(fast_out, reference_out, "seed {seed}");
        }
    }

    #[test]
    fn exact_table_and_exact_products_give_identical_results() {
        let network = small_cnn(3);
        let via_products =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        let via_table = QuantizedNetwork::from_network(
            &network,
            Arc::new(InMemoryProducts::new(MultiplierTable::exact(), "exact")),
        )
        .unwrap();
        let image =
            Tensor::from_vec(&[1, 8, 8], (0..64).map(|i| (i % 7) as f32 / 7.0).collect()).unwrap();
        assert_eq!(
            via_products.forward(&image).unwrap(),
            via_table.forward(&image).unwrap()
        );
    }

    #[test]
    fn counting_products_count_the_nonzero_macs() {
        let network = small_cnn(3);
        let counting = Arc::new(CountingProducts::new(Arc::new(ExactInt4Products)));
        let quantized = QuantizedNetwork::from_network(&network, counting.clone()).unwrap();
        assert!(
            !quantized.uses_snapshot(),
            "a counting table must not be snapshotted away"
        );
        let image = Tensor::from_vec(&[1, 8, 8], vec![0.5; 64]).unwrap();
        let _ = quantized.forward(&image).unwrap();
        let upper_bound = network.multiplications(&[1, 8, 8]).unwrap();
        assert!(counting.count() > 0);
        assert!(
            counting.count() <= upper_bound,
            "skipping zeros can only reduce the count"
        );
        assert_eq!(quantized.products().name(), "exact-int4");
    }

    #[test]
    fn shape_errors_are_reported() {
        let network = small_cnn(3);
        let quantized =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        assert!(quantized.forward(&Tensor::zeros(&[2, 8, 8])).is_err());
    }

    #[test]
    fn operand_width_follows_the_product_table() {
        let network = small_cnn(3);
        let int4 = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        assert_eq!(int4.operand_bits(), 4);
        let int8 =
            QuantizedNetwork::from_network(&network, Arc::new(ExactProducts::new(8))).unwrap();
        assert_eq!(int8.operand_bits(), 8);
        assert!(int8.uses_snapshot());
    }

    #[test]
    fn int8_lut_path_is_bit_identical_to_the_dyn_dispatch_reference() {
        // Same equivalence pin as the INT4 test, at the composed INT8 width:
        // the 65536-entry LUT must reproduce the per-product virtual-call
        // loop exactly.
        let network = small_cnn(3);
        let composed = || ComposedProducts::new(Arc::new(ExactInt4Products), 2);
        let fast = QuantizedNetwork::from_network(&network, Arc::new(composed())).unwrap();
        let reference = QuantizedNetwork::from_network(
            &network,
            Arc::new(CountingProducts::new(Arc::new(composed()))),
        )
        .unwrap();
        assert!(fast.uses_snapshot());
        assert!(!reference.uses_snapshot());
        assert_eq!(fast.operand_bits(), 8);
        assert_eq!(reference.operand_bits(), 8);
        for seed in 0..3u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let image =
                Tensor::from_vec(&[1, 8, 8], (0..64).map(|_| rng.gen::<f32>()).collect()).unwrap();
            let fast_out = fast.forward(&image).unwrap();
            let reference_out = reference.forward(&image).unwrap();
            assert_eq!(fast_out, reference_out, "seed {seed}");
        }
    }

    #[test]
    fn forward_with_matches_forward_bit_for_bit() {
        // The scratch-arena path must reproduce the allocating path exactly
        // at both the INT4 and composed INT8 widths, with one scratch reused
        // across all images (and across the two widths).
        let network = small_cnn(3);
        let int4 = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        let int8 = QuantizedNetwork::from_network(
            &network,
            Arc::new(ComposedProducts::new(Arc::new(ExactInt4Products), 2)),
        )
        .unwrap();
        let mut scratch = KernelScratch::new();
        for seed in 0..5u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let image =
                Tensor::from_vec(&[1, 8, 8], (0..64).map(|_| rng.gen::<f32>()).collect()).unwrap();
            for quantized in [&int4, &int8] {
                let allocating = quantized.forward(&image).unwrap();
                let pooled = quantized.forward_with(&image, &mut scratch).unwrap();
                assert_eq!(&allocating, pooled, "seed {seed}");
            }
        }
    }

    #[test]
    fn forward_batch_with_is_bit_identical_to_independent_single_image_calls() {
        // The serving engine's correctness anchor: one batched pass over a
        // shared scratch must reproduce N single-image calls exactly, at
        // both the INT4 and composed INT8 widths (per-image activation
        // scales make this non-trivial).
        let network = small_cnn(3);
        let int4 = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        let int8 = QuantizedNetwork::from_network(
            &network,
            Arc::new(ComposedProducts::new(Arc::new(ExactInt4Products), 2)),
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let images: Vec<Tensor> = (0..6)
            .map(|_| {
                Tensor::from_vec(&[1, 8, 8], (0..64).map(|_| rng.gen::<f32>()).collect()).unwrap()
            })
            .collect();
        let refs: Vec<&Tensor> = images.iter().collect();
        for quantized in [&int4, &int8] {
            let mut batch_scratch = KernelScratch::new();
            let mut outputs = Vec::new();
            quantized
                .forward_batch_with(&refs, &mut outputs, &mut batch_scratch)
                .unwrap();
            assert_eq!(outputs.len(), images.len());
            for (index, image) in images.iter().enumerate() {
                let mut single = KernelScratch::new();
                let expected = quantized.forward_with(image, &mut single).unwrap();
                assert_eq!(expected, &outputs[index], "image {index}");
            }
        }
    }

    #[test]
    fn forward_batch_with_names_the_failing_image_index() {
        let network = small_cnn(3);
        let quantized =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        let good =
            Tensor::from_vec(&[1, 8, 8], (0..64).map(|i| i as f32 / 64.0).collect()).unwrap();
        let bad = Tensor::zeros(&[2, 8, 8]);
        let inputs = [&good, &bad];
        let mut outputs = Vec::new();
        let mut scratch = KernelScratch::new();
        match quantized.forward_batch_with(&inputs, &mut outputs, &mut scratch) {
            Err(DnnError::EvaluationFailed { image_index, .. }) => assert_eq!(image_index, 1),
            other => panic!("expected EvaluationFailed, got {other:?}"),
        }
        assert_eq!(outputs[0].len(), 3);
    }

    #[test]
    fn forward_with_matches_forward_on_the_reference_path() {
        // Stateful tables disable the snapshot; forward_with must still
        // agree (it falls back to the reference kernels internally).
        let network = small_cnn(3);
        let quantized = QuantizedNetwork::from_network(
            &network,
            Arc::new(CountingProducts::new(Arc::new(ExactInt4Products))),
        )
        .unwrap();
        assert!(!quantized.uses_snapshot());
        let mut scratch = KernelScratch::new();
        let image =
            Tensor::from_vec(&[1, 8, 8], (0..64).map(|i| (i % 9) as f32 / 9.0).collect()).unwrap();
        let allocating = quantized.forward(&image).unwrap();
        assert_eq!(
            &allocating,
            quantized.forward_with(&image, &mut scratch).unwrap()
        );
        // A shape error releases the leased buffers and leaves the scratch usable.
        assert!(quantized
            .forward_with(&Tensor::zeros(&[2, 8, 8]), &mut scratch)
            .is_err());
        assert_eq!(
            &allocating,
            quantized.forward_with(&image, &mut scratch).unwrap()
        );
    }

    #[test]
    fn int8_inference_tracks_the_float_network_more_closely_than_int4() {
        // Wider codes mean finer quantization: the exact INT8 network's
        // output must sit at least as close to the FLOAT32 output as the
        // exact INT4 network's on average.
        let dataset = Dataset::synthetic(SyntheticImageConfig::tiny());
        let mut network = small_cnn(3);
        Trainer::new(TrainingConfig {
            epochs: 4,
            learning_rate: 0.05,
            learning_rate_decay: 0.95,
        })
        .train(&mut network, &dataset)
        .unwrap();
        let int4 = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        let int8 =
            QuantizedNetwork::from_network(&network, Arc::new(ExactProducts::new(8))).unwrap();
        let mut err4 = 0.0f64;
        let mut err8 = 0.0f64;
        for (image, _) in dataset.test_iter().take(8) {
            let float_out = network.forward(image).unwrap();
            let out4 = int4.forward(image).unwrap();
            let out8 = int8.forward(image).unwrap();
            for ((f, q4), q8) in float_out.data().iter().zip(out4.data()).zip(out8.data()) {
                err4 += (f - q4).abs() as f64;
                err8 += (f - q8).abs() as f64;
            }
        }
        assert!(err8 <= err4, "INT8 drift {err8} exceeds INT4 drift {err4}");
    }
}
