//! Narrow-integer quantized inference with pluggable product tables.
//!
//! [`QuantizedNetwork::from_network`] converts a trained FLOAT32 [`Network`]
//! into a quantized network (post-training quantization of all convolution
//! and dense weights) whose every magnitude product is routed through a
//! [`ProductTable`] — either an exact baseline or one of the in-SRAM
//! multiplier corners.  The operand width follows
//! [`ProductTable::operand_bits`]: 4 bits reproduces the paper's Tables II
//! and III pipeline, while wider tables (e.g. a composed INT8 geometry) run
//! the same engine with proportionally wider codes.
//!
//! # Execution strategy
//!
//! When the product table is pure ([`ProductTable::supports_snapshot`]),
//! construction snapshots all `1 << 2·operand_bits` signed products into a
//! flat lookup table once, and inference accumulates integer products over
//! contiguous im2col patches — one array index per product instead of one
//! virtual call, with convolutions lowered through the same [`crate::im2col`]
//! unrolling as the FLOAT32 path.  Stateful tables (e.g.
//! [`crate::multiplier::CountingProducts`]) opt out of the snapshot and run
//! the original per-product dynamic-dispatch loop instead.  Both paths
//! accumulate in the integer domain, so their outputs are **bit-identical**
//! — pinned by the equivalence tests.

use crate::error::DnnError;
use crate::im2col::im2col;
use crate::layers::{Conv2d, Dense, Flatten, GlobalAvgPool, Layer, MaxPool2d, Relu, ResidualBlock};
use crate::multiplier::ProductTable;
use crate::network::Network;
use crate::quantization::{quantize_activations_bits, quantize_weights_bits, QuantizationParams};
use crate::tensor::Tensor;
use std::sync::Arc;

/// Signed products of one weight code against all activation magnitudes,
/// flattened per weight so the inner inference loop reads a contiguous
/// `2^bits`-entry sub-table.
///
/// Index layout: `lut[code * 2^bits + activation]` with
/// `code = weight + 2^(bits−1)` (weights span `−(2^(bits−1)−1)…2^(bits−1)−1`);
/// `2^bits` entries per code, `1 << 2·bits` entries total (256 for the
/// paper's INT4 default).  Entries where either operand is zero are zero,
/// matching the reference path's skip-zero semantics even for non-ideal
/// tables whose hardware would produce a nonzero "product" with zero.
fn snapshot_products(products: &dyn ProductTable) -> Box<[i32]> {
    let bits = products.operand_bits();
    let stride = 1usize << bits;
    let half = (stride / 2) as i32;
    let mut lut = vec![0i32; stride * stride].into_boxed_slice();
    for weight in (1 - half)..half {
        let code = (weight + half) as usize;
        if weight == 0 {
            continue;
        }
        for activation in 1..stride {
            let magnitude = products.product(activation as u8, weight.unsigned_abs() as u8);
            lut[code * stride + activation] = weight.signum() * magnitude as i32;
        }
    }
    lut
}

/// Quantized convolution parameters.
#[derive(Debug, Clone)]
struct QConv {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// Signed quantized weights in `[out_c, in_c, k, k]` order.
    weights: Vec<i8>,
    /// The same weights as LUT codes (`weight + 2^(bits−1)`), precomputed once.
    codes: Vec<u8>,
    weight_params: QuantizationParams,
    bias: Vec<f32>,
}

/// Quantized dense parameters.
#[derive(Debug, Clone)]
struct QDense {
    inputs: usize,
    outputs: usize,
    weights: Vec<i8>,
    /// The same weights as LUT codes (`weight + 2^(bits−1)`), precomputed once.
    codes: Vec<u8>,
    weight_params: QuantizationParams,
    bias: Vec<f32>,
}

fn weight_codes(weights: &[i8], bits: u8) -> Vec<u8> {
    let half = 1i16 << (bits - 1);
    weights.iter().map(|&w| (w as i16 + half) as u8).collect()
}

/// One layer of the quantized network.
#[derive(Debug, Clone)]
enum QLayer {
    Conv(QConv),
    Dense(QDense),
    Residual { conv1: QConv, conv2: QConv },
    Relu,
    MaxPool,
    GlobalAvgPool,
    Flatten,
}

/// A quantized network executing all products through a [`ProductTable`].
///
/// The operand width (and with it the LUT geometry and quantization ranges)
/// follows [`ProductTable::operand_bits`]; 4 bits is the paper's INT4
/// pipeline.
#[derive(Debug)]
pub struct QuantizedNetwork {
    layers: Vec<QLayer>,
    products: Arc<dyn ProductTable>,
    /// Operand width in bits, cached from the product table.
    bits: u8,
    /// Flat signed-product table (`1 << 2·bits` entries); `None` when the
    /// product table is stateful and must be consulted per product (see
    /// [`ProductTable::supports_snapshot`]).
    lut: Option<Box<[i32]>>,
}

impl QuantizedNetwork {
    /// Quantizes a trained FLOAT32 network at the product table's operand
    /// width.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfiguration`] when the network contains a
    /// layer type the quantizer does not support, or the product table
    /// reports an operand width outside 1..=8 bits.
    pub fn from_network(
        network: &Network,
        products: Arc<dyn ProductTable>,
    ) -> Result<Self, DnnError> {
        let bits = products.operand_bits();
        if !(1..=8).contains(&bits) {
            return Err(DnnError::InvalidConfiguration {
                context: format!(
                    "product table '{}' reports an operand width of {bits} bits (need 1..=8)",
                    products.name()
                ),
            });
        }
        let mut layers = Vec::with_capacity(network.len());
        for layer in network.layers() {
            layers.push(Self::convert_layer(layer.as_ref(), bits)?);
        }
        let lut = products
            .supports_snapshot()
            .then(|| snapshot_products(products.as_ref()));
        Ok(QuantizedNetwork {
            layers,
            products,
            bits,
            lut,
        })
    }

    fn convert_layer(layer: &dyn Layer, bits: u8) -> Result<QLayer, DnnError> {
        let any = layer.as_any();
        if let Some(conv) = any.downcast_ref::<Conv2d>() {
            return Ok(QLayer::Conv(Self::convert_conv(conv, bits)));
        }
        if let Some(dense) = any.downcast_ref::<Dense>() {
            let (weights, weight_params) = quantize_weights_bits(dense.weights(), bits);
            let codes = weight_codes(&weights, bits);
            return Ok(QLayer::Dense(QDense {
                inputs: dense.inputs(),
                outputs: dense.outputs(),
                weights,
                codes,
                weight_params,
                bias: dense.bias().to_vec(),
            }));
        }
        if let Some(block) = any.downcast_ref::<ResidualBlock>() {
            let (conv1, conv2) = block.convolutions();
            return Ok(QLayer::Residual {
                conv1: Self::convert_conv(conv1, bits),
                conv2: Self::convert_conv(conv2, bits),
            });
        }
        if any.downcast_ref::<Relu>().is_some() {
            return Ok(QLayer::Relu);
        }
        if any.downcast_ref::<MaxPool2d>().is_some() {
            return Ok(QLayer::MaxPool);
        }
        if any.downcast_ref::<GlobalAvgPool>().is_some() {
            return Ok(QLayer::GlobalAvgPool);
        }
        if any.downcast_ref::<Flatten>().is_some() {
            return Ok(QLayer::Flatten);
        }
        Err(DnnError::InvalidConfiguration {
            context: format!("layer '{}' cannot be quantized", layer.name()),
        })
    }

    fn convert_conv(conv: &Conv2d, bits: u8) -> QConv {
        let (weights, weight_params) = quantize_weights_bits(conv.weights(), bits);
        let codes = weight_codes(&weights, bits);
        QConv {
            in_channels: conv.in_channels(),
            out_channels: conv.out_channels(),
            kernel: conv.kernel(),
            weights,
            codes,
            weight_params,
            bias: conv.bias().to_vec(),
        }
    }

    /// The product table in use.
    pub fn products(&self) -> &Arc<dyn ProductTable> {
        &self.products
    }

    /// Operand width in bits (4 for the paper's INT4 pipeline).
    pub fn operand_bits(&self) -> u8 {
        self.bits
    }

    /// Whether inference runs on the flattened `1 << 2·operand_bits`-entry
    /// product LUT (`true`) or on the per-product dynamic-dispatch reference
    /// path.
    pub fn uses_snapshot(&self) -> bool {
        self.lut.is_some()
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` for an empty network.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs quantized inference on one input image.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        let mut layers = self.layers.iter();
        let mut current = match layers.next() {
            Some(first) => self.forward_layer(first, input)?,
            None => return Ok(input.clone()),
        };
        for layer in layers {
            current = self.forward_layer(layer, &current)?;
        }
        Ok(current)
    }

    fn forward_layer(&self, layer: &QLayer, input: &Tensor) -> Result<Tensor, DnnError> {
        match layer {
            QLayer::Conv(conv) => self.forward_conv(conv, input),
            QLayer::Dense(dense) => self.forward_dense(dense, input),
            QLayer::Residual { conv1, conv2 } => {
                let mut branch = self.forward_conv(conv1, input)?;
                branch.map_inplace(|v| v.max(0.0));
                let mut branch = self.forward_conv(conv2, &branch)?;
                branch.add_assign(input)?;
                branch.map_inplace(|v| v.max(0.0));
                Ok(branch)
            }
            QLayer::Relu => Ok(input.map(|v| v.max(0.0))),
            QLayer::MaxPool => MaxPool2d::new().infer(input),
            QLayer::GlobalAvgPool => GlobalAvgPool::new().infer(input),
            QLayer::Flatten => input.reshaped(&[input.len()]),
        }
    }

    fn check_conv_input(conv: &QConv, input: &Tensor) -> Result<(usize, usize), DnnError> {
        let shape = input.shape();
        if shape.len() != 3 || shape[0] != conv.in_channels {
            return Err(DnnError::ShapeMismatch {
                expected: vec![conv.in_channels, 0, 0],
                found: shape.to_vec(),
            });
        }
        Ok((shape[1], shape[2]))
    }

    fn forward_conv(&self, conv: &QConv, input: &Tensor) -> Result<Tensor, DnnError> {
        match &self.lut {
            Some(lut) => Self::forward_conv_lut(conv, input, lut, self.bits),
            None => self.forward_conv_reference(conv, input),
        }
    }

    fn forward_dense(&self, dense: &QDense, input: &Tensor) -> Result<Tensor, DnnError> {
        match &self.lut {
            Some(lut) => Self::forward_dense_lut(dense, input, lut, self.bits),
            None => self.forward_dense_reference(dense, input),
        }
    }

    /// LUT fast path: integer accumulation over contiguous im2col patches.
    ///
    /// The quantized activations are unrolled into a `[in_c·k², h·w]` patch
    /// matrix; for every output channel the inner loop streams one patch row
    /// and one output row while indexing the weight's contiguous
    /// `2^bits`-entry LUT sub-table — no branches, no virtual calls.  Integer
    /// addition is associative, so the result is bit-identical to the
    /// reference path.
    fn forward_conv_lut(
        conv: &QConv,
        input: &Tensor,
        lut: &[i32],
        bits: u8,
    ) -> Result<Tensor, DnnError> {
        let (height, width) = Self::check_conv_input(conv, input)?;
        let (activations, activation_params) = quantize_activations_bits(input.data(), bits);
        let scale = conv.weight_params.scale * activation_params.scale;
        let stride = 1usize << bits;
        let zero_code = (stride / 2) as u8;
        let hw = height * width;
        let patch = conv.in_channels * conv.kernel * conv.kernel;

        let mut cols: Vec<u8> = Vec::new();
        im2col(
            &activations,
            0u8,
            conv.in_channels,
            height,
            width,
            conv.kernel,
            &mut cols,
        );

        let mut output = vec![0.0f32; conv.out_channels * hw];
        let mut accumulator = vec![0i64; hw];
        // The flat-LUT accumulation sweep: one add per nonzero MAC.
        // optima-lint: hot
        for oc in 0..conv.out_channels {
            accumulator.iter_mut().for_each(|acc| *acc = 0);
            let codes = &conv.codes[oc * patch..(oc + 1) * patch];
            for (row, &code) in codes.iter().enumerate() {
                if code == zero_code {
                    continue; // zero weight: contributes nothing
                }
                let sub = &lut[code as usize * stride..(code as usize + 1) * stride];
                let col_row = &cols[row * hw..(row + 1) * hw];
                for (acc, &activation) in accumulator.iter_mut().zip(col_row.iter()) {
                    *acc += sub[activation as usize] as i64;
                }
            }
            let bias = conv.bias[oc];
            for (out, &acc) in output[oc * hw..(oc + 1) * hw]
                .iter_mut()
                .zip(accumulator.iter())
            {
                *out = acc as f32 * scale + bias;
            }
        }
        // optima-lint: end-hot
        Tensor::from_vec(&[conv.out_channels, height, width], output)
    }

    /// LUT fast path for dense layers: one contiguous weight-code row per
    /// output against the quantized input vector.
    fn forward_dense_lut(
        dense: &QDense,
        input: &Tensor,
        lut: &[i32],
        bits: u8,
    ) -> Result<Tensor, DnnError> {
        if input.len() != dense.inputs {
            return Err(DnnError::ShapeMismatch {
                expected: vec![dense.inputs],
                found: input.shape().to_vec(),
            });
        }
        let (activations, activation_params) = quantize_activations_bits(input.data(), bits);
        let scale = dense.weight_params.scale * activation_params.scale;
        let stride = 1usize << bits;
        let mut output = vec![0.0f32; dense.outputs];
        // One LUT lookup per (weight code, activation) pair.
        // optima-lint: hot
        for (o, out_value) in output.iter_mut().enumerate() {
            let codes = &dense.codes[o * dense.inputs..(o + 1) * dense.inputs];
            let mut accumulator: i64 = 0;
            for (&code, &activation) in codes.iter().zip(activations.iter()) {
                accumulator += lut[code as usize * stride + activation as usize] as i64;
            }
            *out_value = accumulator as f32 * scale + dense.bias[o];
        }
        // optima-lint: end-hot
        Tensor::from_vec(&[dense.outputs], output)
    }

    /// Reference path: one [`ProductTable::product`] virtual call per
    /// nonzero product pair.  Used when the table is stateful (e.g. counting
    /// multiplications) and by the equivalence tests as ground truth.
    fn forward_conv_reference(&self, conv: &QConv, input: &Tensor) -> Result<Tensor, DnnError> {
        let (height, width) = Self::check_conv_input(conv, input)?;
        let (activations, activation_params) = quantize_activations_bits(input.data(), self.bits);
        let pad = conv.kernel / 2;
        let k = conv.kernel;
        let scale = conv.weight_params.scale * activation_params.scale;
        let mut output = Tensor::zeros(&[conv.out_channels, height, width]);
        let out = output.data_mut();

        for oc in 0..conv.out_channels {
            for y in 0..height {
                for x in 0..width {
                    let mut accumulator: i64 = 0;
                    for ic in 0..conv.in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = y as isize + ky as isize - pad as isize;
                                let ix = x as isize + kx as isize - pad as isize;
                                if iy < 0 || ix < 0 || iy >= height as isize || ix >= width as isize
                                {
                                    continue;
                                }
                                let weight =
                                    conv.weights[((oc * conv.in_channels + ic) * k + ky) * k + kx];
                                if weight == 0 {
                                    continue;
                                }
                                let activation =
                                    activations[(ic * height + iy as usize) * width + ix as usize];
                                if activation == 0 {
                                    continue;
                                }
                                let magnitude =
                                    self.products.product(activation, weight.unsigned_abs());
                                accumulator += weight.signum() as i64 * magnitude as i64;
                            }
                        }
                    }
                    out[(oc * height + y) * width + x] = accumulator as f32 * scale + conv.bias[oc];
                }
            }
        }
        Ok(output)
    }

    /// Reference dense path (see [`Self::forward_conv_reference`]).
    fn forward_dense_reference(&self, dense: &QDense, input: &Tensor) -> Result<Tensor, DnnError> {
        if input.len() != dense.inputs {
            return Err(DnnError::ShapeMismatch {
                expected: vec![dense.inputs],
                found: input.shape().to_vec(),
            });
        }
        let (activations, activation_params) = quantize_activations_bits(input.data(), self.bits);
        let scale = dense.weight_params.scale * activation_params.scale;
        let mut output = vec![0.0f32; dense.outputs];
        for (o, out_value) in output.iter_mut().enumerate() {
            let row = &dense.weights[o * dense.inputs..(o + 1) * dense.inputs];
            let mut accumulator: i64 = 0;
            for (weight, &activation) in row.iter().zip(activations.iter()) {
                if *weight == 0 || activation == 0 {
                    continue;
                }
                let magnitude = self.products.product(activation, weight.unsigned_abs());
                accumulator += weight.signum() as i64 * magnitude as i64;
            }
            *out_value = accumulator as f32 * scale + dense.bias[o];
        }
        Tensor::from_vec(&[dense.outputs], output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, SyntheticImageConfig};
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use crate::multiplier::{
        ComposedProducts, CountingProducts, ExactInt4Products, ExactProducts, InMemoryProducts,
    };
    use crate::training::{Trainer, TrainingConfig};
    use optima_imc::multiplier::MultiplierTable;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn small_cnn(classes: usize) -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 4 * 4, classes, &mut rng)),
        ])
    }

    #[test]
    fn quantized_network_mirrors_float_network_closely() {
        let dataset = Dataset::synthetic(SyntheticImageConfig::tiny());
        let mut network = small_cnn(3);
        Trainer::new(TrainingConfig {
            epochs: 8,
            learning_rate: 0.05,
            learning_rate_decay: 0.95,
        })
        .train(&mut network, &dataset)
        .unwrap();

        let quantized =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        assert_eq!(quantized.len(), network.len());
        assert!(!quantized.is_empty());
        assert!(quantized.uses_snapshot());

        // On most samples the INT4 prediction should match the FLOAT32 one.
        let mut agreement = 0usize;
        let mut total = 0usize;
        for (image, _) in dataset.test_iter() {
            let float_prediction = network.forward(image).unwrap().argmax();
            let int4_prediction = quantized.forward(image).unwrap().argmax();
            if float_prediction == int4_prediction {
                agreement += 1;
            }
            total += 1;
        }
        assert!(
            agreement * 10 >= total * 7,
            "only {agreement}/{total} predictions agree after quantization"
        );
    }

    #[test]
    fn lut_path_is_bit_identical_to_the_dyn_dispatch_reference() {
        // Wrapping in CountingProducts disables the snapshot, so the same
        // table runs once through the LUT and once through the per-product
        // virtual-call loop; integer accumulation makes them bit-identical.
        let network = small_cnn(3);
        let table = MultiplierTable::exact();
        let fast = QuantizedNetwork::from_network(
            &network,
            Arc::new(InMemoryProducts::new(table.clone(), "exact")),
        )
        .unwrap();
        let reference = QuantizedNetwork::from_network(
            &network,
            Arc::new(CountingProducts::new(Arc::new(InMemoryProducts::new(
                table, "exact",
            )))),
        )
        .unwrap();
        assert!(fast.uses_snapshot());
        assert!(!reference.uses_snapshot());
        for seed in 0..5u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let image =
                Tensor::from_vec(&[1, 8, 8], (0..64).map(|_| rng.gen::<f32>()).collect()).unwrap();
            let fast_out = fast.forward(&image).unwrap();
            let reference_out = reference.forward(&image).unwrap();
            assert_eq!(fast_out, reference_out, "seed {seed}");
        }
    }

    #[test]
    fn exact_table_and_exact_products_give_identical_results() {
        let network = small_cnn(3);
        let via_products =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        let via_table = QuantizedNetwork::from_network(
            &network,
            Arc::new(InMemoryProducts::new(MultiplierTable::exact(), "exact")),
        )
        .unwrap();
        let image =
            Tensor::from_vec(&[1, 8, 8], (0..64).map(|i| (i % 7) as f32 / 7.0).collect()).unwrap();
        assert_eq!(
            via_products.forward(&image).unwrap(),
            via_table.forward(&image).unwrap()
        );
    }

    #[test]
    fn counting_products_count_the_nonzero_macs() {
        let network = small_cnn(3);
        let counting = Arc::new(CountingProducts::new(Arc::new(ExactInt4Products)));
        let quantized = QuantizedNetwork::from_network(&network, counting.clone()).unwrap();
        assert!(
            !quantized.uses_snapshot(),
            "a counting table must not be snapshotted away"
        );
        let image = Tensor::from_vec(&[1, 8, 8], vec![0.5; 64]).unwrap();
        let _ = quantized.forward(&image).unwrap();
        let upper_bound = network.multiplications(&[1, 8, 8]).unwrap();
        assert!(counting.count() > 0);
        assert!(
            counting.count() <= upper_bound,
            "skipping zeros can only reduce the count"
        );
        assert_eq!(quantized.products().name(), "exact-int4");
    }

    #[test]
    fn shape_errors_are_reported() {
        let network = small_cnn(3);
        let quantized =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        assert!(quantized.forward(&Tensor::zeros(&[2, 8, 8])).is_err());
    }

    #[test]
    fn operand_width_follows_the_product_table() {
        let network = small_cnn(3);
        let int4 = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        assert_eq!(int4.operand_bits(), 4);
        let int8 =
            QuantizedNetwork::from_network(&network, Arc::new(ExactProducts::new(8))).unwrap();
        assert_eq!(int8.operand_bits(), 8);
        assert!(int8.uses_snapshot());
    }

    #[test]
    fn int8_lut_path_is_bit_identical_to_the_dyn_dispatch_reference() {
        // Same equivalence pin as the INT4 test, at the composed INT8 width:
        // the 65536-entry LUT must reproduce the per-product virtual-call
        // loop exactly.
        let network = small_cnn(3);
        let composed = || ComposedProducts::new(Arc::new(ExactInt4Products), 2);
        let fast = QuantizedNetwork::from_network(&network, Arc::new(composed())).unwrap();
        let reference = QuantizedNetwork::from_network(
            &network,
            Arc::new(CountingProducts::new(Arc::new(composed()))),
        )
        .unwrap();
        assert!(fast.uses_snapshot());
        assert!(!reference.uses_snapshot());
        assert_eq!(fast.operand_bits(), 8);
        assert_eq!(reference.operand_bits(), 8);
        for seed in 0..3u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let image =
                Tensor::from_vec(&[1, 8, 8], (0..64).map(|_| rng.gen::<f32>()).collect()).unwrap();
            let fast_out = fast.forward(&image).unwrap();
            let reference_out = reference.forward(&image).unwrap();
            assert_eq!(fast_out, reference_out, "seed {seed}");
        }
    }

    #[test]
    fn int8_inference_tracks_the_float_network_more_closely_than_int4() {
        // Wider codes mean finer quantization: the exact INT8 network's
        // output must sit at least as close to the FLOAT32 output as the
        // exact INT4 network's on average.
        let dataset = Dataset::synthetic(SyntheticImageConfig::tiny());
        let mut network = small_cnn(3);
        Trainer::new(TrainingConfig {
            epochs: 4,
            learning_rate: 0.05,
            learning_rate_decay: 0.95,
        })
        .train(&mut network, &dataset)
        .unwrap();
        let int4 = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        let int8 =
            QuantizedNetwork::from_network(&network, Arc::new(ExactProducts::new(8))).unwrap();
        let mut err4 = 0.0f64;
        let mut err8 = 0.0f64;
        for (image, _) in dataset.test_iter().take(8) {
            let float_out = network.forward(image).unwrap();
            let out4 = int4.forward(image).unwrap();
            let out8 = int8.forward(image).unwrap();
            for ((f, q4), q8) in float_out.data().iter().zip(out4.data()).zip(out8.data()) {
                err4 += (f - q4).abs() as f64;
                err8 += (f - q8).abs() as f64;
            }
        }
        assert!(err8 <= err4, "INT8 drift {err8} exceeds INT4 drift {err4}");
    }
}
