//! Neural-network layers with forward and backward passes.
//!
//! All layers implement the [`Layer`] trait.  Layers cache whatever they need
//! from the forward pass so that a subsequent [`Layer::backward`] call can
//! produce the input gradient and accumulate parameter gradients; a plain
//! inference pass simply never calls `backward`.

pub mod conv;
pub mod dense;
pub mod pool;
pub mod residual;

pub use conv::Conv2d;
pub use dense::Dense;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use residual::ResidualBlock;

use crate::error::DnnError;
use crate::scratch::KernelScratch;
use crate::tensor::Tensor;
use std::any::Any;

/// A neural-network layer.
///
/// The `forward`/`backward` pair follows the usual reverse-mode convention:
/// `backward` receives `∂L/∂output` and returns `∂L/∂input`, accumulating
/// `∂L/∂parameters` internally until [`Layer::apply_gradients`] is called.
///
/// [`Network`](crate::network::Network) threads tensors through the layer
/// stack *by value* via [`Layer::forward_owned`]/[`Layer::backward_owned`],
/// so shape-preserving layers (ReLU, flatten) can work in place instead of
/// allocating; the borrowing `forward`/`backward` remain the methods a layer
/// must implement.  [`Layer::infer`] is the immutable inference path used by
/// the parallel dataset evaluator: it computes the same output as `forward`
/// without touching any cached state, which is what makes a `Network`
/// shareable across evaluation threads.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Short human-readable layer name.
    fn name(&self) -> &'static str;

    /// Computes the layer output and caches what `backward` will need.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for inputs of the wrong shape.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, DnnError>;

    /// Like [`Layer::forward`], but consumes the input tensor so in-place
    /// layers can reuse its buffer.  The default delegates to `forward`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for inputs of the wrong shape.
    fn forward_owned(&mut self, input: Tensor) -> Result<Tensor, DnnError> {
        self.forward(&input)
    }

    /// Computes the layer output without mutating any cached state.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for inputs of the wrong shape.
    fn infer(&self, input: &Tensor) -> Result<Tensor, DnnError>;

    /// Like [`Layer::infer`], but writes the output into a caller-owned
    /// tensor and draws all intermediate buffers from the scratch arena, so
    /// the steady state allocates nothing.  `output` is resized in place;
    /// its previous contents are irrelevant.  Numerically identical to
    /// `infer` — the scratch only changes where buffers live.
    ///
    /// The default delegates to `infer` (allocating); the hot layers
    /// override it.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for inputs of the wrong shape.
    fn infer_into(
        &self,
        input: &Tensor,
        output: &mut Tensor,
        _scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        let result = self.infer(input)?;
        output.copy_from(&result);
        Ok(())
    }

    /// Propagates the output gradient back to the input, accumulating
    /// parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfiguration`] when called before `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, DnnError>;

    /// Like [`Layer::backward`], but consumes the gradient tensor so
    /// in-place layers can reuse its buffer.  The default delegates to
    /// `backward`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfiguration`] when called before `forward`.
    fn backward_owned(&mut self, grad_output: Tensor) -> Result<Tensor, DnnError> {
        self.backward(&grad_output)
    }

    /// Applies the accumulated gradients with a plain SGD step and clears them.
    fn apply_gradients(&mut self, _learning_rate: f32) {}

    /// Clears any accumulated gradients without applying them.
    fn zero_gradients(&mut self) {}

    /// Number of trainable parameters.
    fn parameter_count(&self) -> usize {
        0
    }

    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for unsupported input shapes.
    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, DnnError>;

    /// Number of scalar multiplications one forward pass performs for the
    /// given input shape (used for the multiplication counts of Table II).
    fn multiplications(&self, _input_shape: &[usize]) -> u64 {
        0
    }

    /// Dynamic-cast support used by the INT4 quantizer.
    fn as_any(&self) -> &dyn Any;
}

/// Rectified linear unit activation.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, DnnError> {
        self.mask.clear();
        self.mask.extend(input.data().iter().map(|&v| v > 0.0));
        Ok(input.map(|v| v.max(0.0)))
    }

    fn forward_owned(&mut self, mut input: Tensor) -> Result<Tensor, DnnError> {
        self.mask.clear();
        self.mask.extend(input.data().iter().map(|&v| v > 0.0));
        input.map_inplace(|v| v.max(0.0));
        Ok(input)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        Ok(input.map(|v| v.max(0.0)))
    }

    fn infer_into(
        &self,
        input: &Tensor,
        output: &mut Tensor,
        _scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        output.copy_from(input);
        output.map_inplace(|v| v.max(0.0));
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, DnnError> {
        if self.mask.len() != grad_output.len() {
            return Err(DnnError::InvalidConfiguration {
                context: "relu backward called before forward".to_string(),
            });
        }
        let data = grad_output
            .data()
            .iter()
            .zip(self.mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_output.shape(), data)
    }

    fn backward_owned(&mut self, mut grad_output: Tensor) -> Result<Tensor, DnnError> {
        if self.mask.len() != grad_output.len() {
            return Err(DnnError::InvalidConfiguration {
                context: "relu backward called before forward".to_string(),
            });
        }
        for (g, &m) in grad_output.data_mut().iter_mut().zip(self.mask.iter()) {
            if !m {
                *g = 0.0;
            }
        }
        Ok(grad_output)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, DnnError> {
        Ok(input_shape.to_vec())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Flattens any tensor into a 1-D vector.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, DnnError> {
        self.input_shape = input.shape().to_vec();
        input.reshaped(&[input.len()])
    }

    fn forward_owned(&mut self, mut input: Tensor) -> Result<Tensor, DnnError> {
        self.input_shape.clear();
        self.input_shape.extend_from_slice(input.shape());
        input.reshape_in_place(&[input.len()])?;
        Ok(input)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        input.reshaped(&[input.len()])
    }

    fn infer_into(
        &self,
        input: &Tensor,
        output: &mut Tensor,
        _scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        output.copy_from(input);
        output.reshape_in_place(&[input.len()])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, DnnError> {
        if self.input_shape.is_empty() {
            return Err(DnnError::InvalidConfiguration {
                context: "flatten backward called before forward".to_string(),
            });
        }
        grad_output.reshaped(&self.input_shape)
    }

    fn backward_owned(&mut self, mut grad_output: Tensor) -> Result<Tensor, DnnError> {
        if self.input_shape.is_empty() {
            return Err(DnnError::InvalidConfiguration {
                context: "flatten backward called before forward".to_string(),
            });
        }
        grad_output.reshape_in_place(&self.input_shape)?;
        Ok(grad_output)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, DnnError> {
        Ok(vec![input_shape.iter().product()])
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_and_backward() {
        let mut relu = Relu::new();
        let input = Tensor::from_slice(&[-1.0, 2.0, -3.0, 4.0]);
        let output = relu.forward(&input).unwrap();
        assert_eq!(output.data(), &[0.0, 2.0, 0.0, 4.0]);
        let grad = relu
            .backward(&Tensor::from_slice(&[1.0, 1.0, 1.0, 1.0]))
            .unwrap();
        assert_eq!(grad.data(), &[0.0, 1.0, 0.0, 1.0]);
        assert_eq!(relu.output_shape(&[4]).unwrap(), vec![4]);
        assert_eq!(relu.parameter_count(), 0);
    }

    #[test]
    fn relu_backward_without_forward_is_an_error() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::from_slice(&[1.0])).is_err());
    }

    #[test]
    fn flatten_round_trip() {
        let mut flatten = Flatten::new();
        let input = Tensor::zeros(&[2, 3, 3]);
        let output = flatten.forward(&input).unwrap();
        assert_eq!(output.shape(), &[18]);
        let grad = flatten.backward(&Tensor::zeros(&[18])).unwrap();
        assert_eq!(grad.shape(), &[2, 3, 3]);
        assert_eq!(flatten.output_shape(&[2, 3, 3]).unwrap(), vec![18]);
        let mut fresh = Flatten::new();
        assert!(fresh.backward(&Tensor::zeros(&[18])).is_err());
    }
}
