//! Fully connected (dense) layer.
//!
//! Forward and backward run on the [`optima_math::gemm`] kernels: the
//! forward pass is one packed-panel [`PackedGemm::gemv_into`] over a weight
//! plan that is packed once and cached until the weights change, the weight
//! gradient one rank-1 [`ger`] update and the input gradient one [`gemv_t`]
//! — all over contiguous slices with no per-element bounds checks.  The
//! layer copies the forward input into a reusable flat buffer instead of
//! cloning the tensor.

use crate::error::DnnError;
use crate::layers::Layer;
use crate::scratch::KernelScratch;
use crate::tensor::Tensor;
use optima_math::gemm::{gemv_t, ger, PackedGemm};
use rand::Rng;
use std::any::Any;
use std::sync::OnceLock;

/// A fully connected layer `y = W·x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    inputs: usize,
    outputs: usize,
    /// Row-major `[outputs × inputs]` weight matrix.
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    /// Flat copy of the last forward input (allocation reused across calls).
    cached_input: Vec<f32>,
    forward_ran: bool,
    /// Packed-panel GEMM plan over the current weights, built lazily on the
    /// first forward and reset by any weight mutation.
    plan: OnceLock<PackedGemm>,
}

impl Dense {
    /// Creates a dense layer with He-initialised weights.
    pub fn new<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        let scale = (2.0 / inputs as f32).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Dense {
            inputs,
            outputs,
            weights,
            bias: vec![0.0; outputs],
            grad_weights: vec![0.0; inputs * outputs],
            grad_bias: vec![0.0; outputs],
            cached_input: Vec::new(),
            forward_ran: false,
            plan: OnceLock::new(),
        }
    }

    /// Drops the cached packed-weight plan; the next forward repacks.
    fn invalidate_plan(&mut self) {
        self.plan = OnceLock::new();
    }

    /// Packed-panel plan over the current weights, built on first use and
    /// shared by `forward`, `infer` and `infer_into`.
    fn plan(&self) -> &PackedGemm {
        self.plan
            .get_or_init(|| PackedGemm::pack(self.outputs, self.inputs, &self.weights))
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output features.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The weight matrix in row-major `[outputs × inputs]` order.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Overwrites the weights (e.g. to load externally trained parameters).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when the length differs from the
    /// layer's weight count.
    pub fn set_weights(&mut self, weights: &[f32]) -> Result<(), DnnError> {
        if weights.len() != self.weights.len() {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.weights.len()],
                found: vec![weights.len()],
            });
        }
        self.weights.copy_from_slice(weights);
        self.invalidate_plan();
        Ok(())
    }

    /// Overwrites the bias vector.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when the length differs from the
    /// number of outputs.
    pub fn set_bias(&mut self, bias: &[f32]) -> Result<(), DnnError> {
        if bias.len() != self.bias.len() {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.bias.len()],
                found: vec![bias.len()],
            });
        }
        self.bias.copy_from_slice(bias);
        Ok(())
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, DnnError> {
        let output = self.infer(input)?;
        self.cached_input.clear();
        self.cached_input.extend_from_slice(input.data());
        self.forward_ran = true;
        Ok(output)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        if input.len() != self.inputs {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.inputs],
                found: input.shape().to_vec(),
            });
        }
        let mut out = self.bias.clone();
        self.plan().gemv_into(input.data(), &mut out);
        Tensor::from_vec(&[self.outputs], out)
    }

    fn infer_into(
        &self,
        input: &Tensor,
        output: &mut Tensor,
        _scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        if input.len() != self.inputs {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.inputs],
                found: input.shape().to_vec(),
            });
        }
        output.resize_to(&[self.outputs]);
        let out = output.data_mut();
        out.copy_from_slice(&self.bias);
        self.plan().gemv_into(input.data(), out);
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, DnnError> {
        if !self.forward_ran {
            return Err(DnnError::InvalidConfiguration {
                context: "dense backward called before forward".to_string(),
            });
        }
        if grad_output.len() != self.outputs {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.outputs],
                found: grad_output.shape().to_vec(),
            });
        }
        let g = grad_output.data();
        for (grad_bias, &go) in self.grad_bias.iter_mut().zip(g.iter()) {
            *grad_bias += go;
        }
        // ∂L/∂W += g·xᵀ, ∂L/∂x = Wᵀ·g.
        ger(
            self.outputs,
            self.inputs,
            g,
            &self.cached_input,
            &mut self.grad_weights,
        );
        let mut grad_input = vec![0.0f32; self.inputs];
        gemv_t(self.outputs, self.inputs, &self.weights, g, &mut grad_input);
        Tensor::from_vec(&[self.inputs], grad_input)
    }

    fn apply_gradients(&mut self, learning_rate: f32) {
        for (w, g) in self.weights.iter_mut().zip(self.grad_weights.iter()) {
            *w -= learning_rate * g;
        }
        for (b, g) in self.bias.iter_mut().zip(self.grad_bias.iter()) {
            *b -= learning_rate * g;
        }
        self.invalidate_plan();
        self.zero_gradients();
    }

    fn zero_gradients(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, DnnError> {
        let elements: usize = input_shape.iter().product();
        if elements != self.inputs {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.inputs],
                found: input_shape.to_vec(),
            });
        }
        Ok(vec![self.outputs])
    }

    fn multiplications(&self, _input_shape: &[usize]) -> u64 {
        (self.inputs * self.outputs) as u64
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_dense() -> Dense {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        layer.weights = vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5];
        layer.bias = vec![0.1, -0.1];
        layer
    }

    #[test]
    fn forward_matches_the_naive_reference_over_random_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for &(inputs, outputs) in &[(1usize, 1usize), (3, 7), (16, 5), (65, 33), (128, 10)] {
            let mut layer = Dense::new(inputs, outputs, &mut rng);
            layer
                .bias
                .iter_mut()
                .for_each(|b| *b = rng.gen::<f32>() - 0.5);
            let x: Vec<f32> = (0..inputs).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
            let input = Tensor::from_slice(&x);
            let fast = layer.forward(&input).unwrap();
            let naive =
                crate::reference::dense_forward(&x, &layer.weights, &layer.bias, inputs, outputs);
            for (i, (&a, &b)) in fast.data().iter().zip(naive.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-4,
                    "{inputs}->{outputs} element {i}: {a} vs {b}"
                );
            }
            assert_eq!(layer.infer(&input).unwrap(), fast);
        }
    }

    #[test]
    fn forward_computes_affine_map() {
        let mut layer = tiny_dense();
        let out = layer
            .forward(&Tensor::from_slice(&[1.0, 2.0, 3.0]))
            .unwrap();
        assert!((out.data()[0] - (1.0 - 3.0 + 0.1)).abs() < 1e-6);
        assert!((out.data()[1] - (0.5 + 1.0 + 1.5 - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn forward_rejects_wrong_input_size() {
        let mut layer = tiny_dense();
        assert!(layer.forward(&Tensor::from_slice(&[1.0, 2.0])).is_err());
        assert!(layer.output_shape(&[4]).is_err());
        assert_eq!(layer.output_shape(&[3]).unwrap(), vec![2]);
        assert_eq!(layer.multiplications(&[3]), 6);
        assert_eq!(layer.parameter_count(), 8);
    }

    #[test]
    fn numerical_gradient_check() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut layer = Dense::new(4, 3, &mut rng);
        let input = Tensor::from_slice(&[0.3, -0.2, 0.8, 0.1]);
        // Loss = sum(outputs); its gradient w.r.t. outputs is all ones.
        let output = layer.forward(&input).unwrap();
        let loss = |o: &Tensor| o.data().iter().sum::<f32>();
        let base_loss = loss(&output);
        let grad_input = layer
            .backward(&Tensor::from_slice(&[1.0, 1.0, 1.0]))
            .unwrap();

        let eps = 1e-3;
        for i in 0..4 {
            let mut perturbed = input.clone();
            perturbed.data_mut()[i] += eps;
            let mut probe = layer.clone();
            let new_loss = loss(&probe.forward(&perturbed).unwrap());
            let numeric = (new_loss - base_loss) / eps;
            assert!(
                (numeric - grad_input.data()[i]).abs() < 1e-2,
                "grad mismatch at {i}: analytic {} vs numeric {numeric}",
                grad_input.data()[i]
            );
        }
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut layer = Dense::new(2, 1, &mut rng);
        let input = Tensor::from_slice(&[1.0, -1.0]);
        let target = 2.0;
        let mut last_loss = f32::INFINITY;
        for _ in 0..50 {
            let out = layer.forward(&input).unwrap();
            let error = out.data()[0] - target;
            let loss = error * error;
            layer.backward(&Tensor::from_slice(&[2.0 * error])).unwrap();
            layer.apply_gradients(0.1);
            assert!(loss <= last_loss + 1e-4);
            last_loss = loss;
        }
        assert!(last_loss < 1e-3);
    }

    #[test]
    fn backward_before_forward_is_an_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut layer = Dense::new(2, 2, &mut rng);
        assert!(layer.backward(&Tensor::from_slice(&[1.0, 1.0])).is_err());
    }
}
