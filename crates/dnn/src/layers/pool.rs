//! Pooling layers: 2×2 max pooling and global average pooling.

use crate::error::DnnError;
use crate::layers::Layer;
use crate::scratch::KernelScratch;
use crate::tensor::Tensor;
use std::any::Any;

/// 2×2 max pooling with stride 2 over `[C, H, W]` tensors.
///
/// Odd trailing rows/columns are dropped (floor division), matching the
/// behaviour of typical CNN frameworks with default settings.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2d {
    input_shape: Vec<usize>,
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a 2×2 max-pooling layer.
    pub fn new() -> Self {
        MaxPool2d::default()
    }
}

/// One shared window scan for `forward` and `infer`: validates the shape
/// once, then indexes the flat slice directly (no per-element `at3` shape
/// asserts), reporting each window's maximum and its flat input index to
/// `record` so `forward` and `infer` cannot drift apart — not even in their
/// NaN tie-breaking.
fn max_pool_scan_into(
    input: &Tensor,
    output: &mut Tensor,
    mut record: impl FnMut(usize, f32),
) -> Result<(), DnnError> {
    let shape = input.shape();
    if shape.len() != 3 || shape[1] < 2 || shape[2] < 2 {
        return Err(DnnError::ShapeMismatch {
            expected: vec![0, 2, 2],
            found: shape.to_vec(),
        });
    }
    let (channels, height, width) = (shape[0], shape[1], shape[2]);
    let (out_h, out_w) = (height / 2, width / 2);
    let data = input.data();
    output.resize_to(&[channels, out_h, out_w]);
    let out = output.data_mut();
    for c in 0..channels {
        for y in 0..out_h {
            let top = (c * height + 2 * y) * width;
            let bottom = top + width;
            let out_row = (c * out_h + y) * out_w;
            for x in 0..out_w {
                let candidates = [
                    (top + 2 * x, data[top + 2 * x]),
                    (top + 2 * x + 1, data[top + 2 * x + 1]),
                    (bottom + 2 * x, data[bottom + 2 * x]),
                    (bottom + 2 * x + 1, data[bottom + 2 * x + 1]),
                ];
                let mut best = (0usize, f32::NEG_INFINITY);
                for &(index, value) in &candidates {
                    if value > best.1 {
                        best = (index, value);
                    }
                }
                out[out_row + x] = best.1;
                record(best.0, best.1);
            }
        }
    }
    Ok(())
}

/// Allocating wrapper over [`max_pool_scan_into`].
fn max_pool_scan(input: &Tensor, record: impl FnMut(usize, f32)) -> Result<Tensor, DnnError> {
    let mut output = Tensor::default();
    max_pool_scan_into(input, &mut output, record)?;
    Ok(output)
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, DnnError> {
        // Commit the cached state only after a successful scan: a failed
        // forward must not leave a stale input_shape paired with a cleared
        // argmax, which would make a later backward silently return zeros.
        let mut argmax = Vec::new();
        let output = max_pool_scan(input, |index, _| argmax.push(index))?;
        self.argmax = argmax;
        self.input_shape = input.shape().to_vec();
        Ok(output)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        max_pool_scan(input, |_, _| {})
    }

    fn infer_into(
        &self,
        input: &Tensor,
        output: &mut Tensor,
        _scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        max_pool_scan_into(input, output, |_, _| {})
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, DnnError> {
        if self.input_shape.is_empty() {
            return Err(DnnError::InvalidConfiguration {
                context: "maxpool backward called before forward".to_string(),
            });
        }
        let mut grad_input = Tensor::zeros(&self.input_shape);
        for (flat, &source) in self.argmax.iter().enumerate() {
            grad_input.data_mut()[source] += grad_output.data()[flat];
        }
        Ok(grad_input)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, DnnError> {
        if input_shape.len() != 3 {
            return Err(DnnError::ShapeMismatch {
                expected: vec![0, 2, 2],
                found: input_shape.to_vec(),
            });
        }
        Ok(vec![input_shape[0], input_shape[1] / 2, input_shape[2] / 2])
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Global average pooling: `[C, H, W]` → `[C]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, DnnError> {
        let output = self.infer(input)?;
        self.input_shape = input.shape().to_vec();
        Ok(output)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        // Validate the shape once, then average contiguous channel slices.
        let shape = input.shape();
        if shape.len() != 3 {
            return Err(DnnError::ShapeMismatch {
                expected: vec![0, 0, 0],
                found: shape.to_vec(),
            });
        }
        let (channels, height, width) = (shape[0], shape[1], shape[2]);
        let spatial = height * width;
        let out = input
            .data()
            .chunks_exact(spatial.max(1))
            .map(|channel| channel.iter().sum::<f32>() / spatial as f32)
            .collect::<Vec<f32>>();
        Tensor::from_vec(&[channels], out)
    }

    fn infer_into(
        &self,
        input: &Tensor,
        output: &mut Tensor,
        _scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        let shape = input.shape();
        if shape.len() != 3 {
            return Err(DnnError::ShapeMismatch {
                expected: vec![0, 0, 0],
                found: shape.to_vec(),
            });
        }
        let (channels, height, width) = (shape[0], shape[1], shape[2]);
        let spatial = height * width;
        // Degenerate zero-spatial tensors take the allocating path so both
        // paths report the identical shape error.
        if channels != 0 && spatial == 0 {
            let result = self.infer(input)?;
            output.copy_from(&result);
            return Ok(());
        }
        output.resize_to(&[channels]);
        for (slot, channel) in output
            .data_mut()
            .iter_mut()
            .zip(input.data().chunks_exact(spatial.max(1)))
        {
            *slot = channel.iter().sum::<f32>() / spatial as f32;
        }
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, DnnError> {
        if self.input_shape.is_empty() {
            return Err(DnnError::InvalidConfiguration {
                context: "global average pool backward called before forward".to_string(),
            });
        }
        if grad_output.len() != self.input_shape[0] {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.input_shape[0]],
                found: grad_output.shape().to_vec(),
            });
        }
        let (height, width) = (self.input_shape[1], self.input_shape[2]);
        let spatial = height * width;
        let mut grad_input = Tensor::zeros(&self.input_shape);
        for (channel, &g) in grad_input
            .data_mut()
            .chunks_exact_mut(spatial.max(1))
            .zip(grad_output.data().iter())
        {
            channel.fill(g / spatial as f32);
        }
        Ok(grad_input)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, DnnError> {
        if input_shape.len() != 3 {
            return Err(DnnError::ShapeMismatch {
                expected: vec![0, 0, 0],
                found: input_shape.to_vec(),
            });
        }
        Ok(vec![input_shape[0]])
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_selects_maxima_and_routes_gradients() {
        let mut pool = MaxPool2d::new();
        let input =
            Tensor::from_vec(&[1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 8.0, 1.0]).unwrap();
        let output = pool.forward(&input).unwrap();
        assert_eq!(output.shape(), &[1, 1, 2]);
        assert_eq!(output.data(), &[5.0, 8.0]);
        let grad = pool
            .backward(&Tensor::from_vec(&[1, 1, 2], vec![1.0, 2.0]).unwrap())
            .unwrap();
        assert_eq!(grad.data(), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn maxpool_validates_shapes() {
        let mut pool = MaxPool2d::new();
        assert!(pool.forward(&Tensor::zeros(&[4])).is_err());
        assert!(pool.forward(&Tensor::zeros(&[1, 1, 1])).is_err());
        assert_eq!(pool.output_shape(&[3, 8, 8]).unwrap(), vec![3, 4, 4]);
        assert!(pool.output_shape(&[8]).is_err());
        let mut fresh = MaxPool2d::new();
        assert!(fresh.backward(&Tensor::zeros(&[1, 1, 1])).is_err());
    }

    #[test]
    fn global_avg_pool_averages_and_spreads_gradient() {
        let mut pool = GlobalAvgPool::new();
        let input = Tensor::from_vec(&[2, 1, 2], vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let output = pool.forward(&input).unwrap();
        assert_eq!(output.data(), &[2.0, 6.0]);
        let grad = pool.backward(&Tensor::from_slice(&[1.0, 2.0])).unwrap();
        assert_eq!(grad.data(), &[0.5, 0.5, 1.0, 1.0]);
        assert_eq!(pool.output_shape(&[2, 1, 2]).unwrap(), vec![2]);
        let mut fresh = GlobalAvgPool::new();
        assert!(fresh.backward(&Tensor::from_slice(&[1.0])).is_err());
        assert!(fresh.forward(&Tensor::zeros(&[4])).is_err());
    }
}
