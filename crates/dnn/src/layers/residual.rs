//! Residual block (two convolutions with an identity skip connection).
//!
//! The ResNet-style models of [`crate::models`] are built from these blocks,
//! mirroring (at reduced scale) the bottleneck blocks of ResNet-50/101 used
//! in the paper's Table II/III experiments.

use crate::error::DnnError;
use crate::layers::conv::Conv2d;
use crate::layers::{Layer, Relu};
use crate::scratch::KernelScratch;
use crate::tensor::Tensor;
use rand::Rng;
use std::any::Any;

/// `y = relu(conv2(relu(conv1(x))) + x)` with channel-preserving convolutions.
#[derive(Debug)]
pub struct ResidualBlock {
    conv1: Conv2d,
    relu1: Relu,
    conv2: Conv2d,
    relu_out: Relu,
    forward_ran: bool,
}

impl ResidualBlock {
    /// Creates a residual block operating on `channels` feature maps.
    pub fn new<R: Rng + ?Sized>(channels: usize, kernel: usize, rng: &mut R) -> Self {
        ResidualBlock {
            conv1: Conv2d::new(channels, channels, kernel, rng),
            relu1: Relu::new(),
            conv2: Conv2d::new(channels, channels, kernel, rng),
            relu_out: Relu::new(),
            forward_ran: false,
        }
    }

    /// The two inner convolutions (used by the INT4 quantizer).
    pub fn convolutions(&self) -> (&Conv2d, &Conv2d) {
        (&self.conv1, &self.conv2)
    }
}

impl Layer for ResidualBlock {
    fn name(&self) -> &'static str {
        "residual_block"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, DnnError> {
        // The branch tensors are threaded through by value (in-place ReLU,
        // accumulating skip add); the input is never cloned.
        let branch = self.conv1.forward(input)?;
        let branch = self.relu1.forward_owned(branch)?;
        let mut branch = self.conv2.forward(&branch)?;
        branch.add_assign(input)?;
        self.forward_ran = true;
        self.relu_out.forward_owned(branch)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        let mut branch = self.conv1.infer(input)?;
        branch.map_inplace(|v| v.max(0.0));
        let mut branch = self.conv2.infer(&branch)?;
        branch.add_assign(input)?;
        branch.map_inplace(|v| v.max(0.0));
        Ok(branch)
    }

    fn infer_into(
        &self,
        input: &Tensor,
        output: &mut Tensor,
        scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        // The branch activation lives in a leased pool tensor so the block
        // allocates nothing once the pool has warmed up.
        let mut branch = scratch.lease();
        let result = (|| {
            self.conv1.infer_into(input, &mut branch, scratch)?;
            branch.map_inplace(|v| v.max(0.0));
            self.conv2.infer_into(&branch, output, scratch)?;
            output.add_assign(input)?;
            output.map_inplace(|v| v.max(0.0));
            Ok(())
        })();
        scratch.release(branch);
        result
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, DnnError> {
        if !self.forward_ran {
            return Err(DnnError::InvalidConfiguration {
                context: "residual backward called before forward".to_string(),
            });
        }
        let grad_sum = self.relu_out.backward(grad_output)?;
        // The sum node fans the gradient out to the branch and the skip path.
        let grad_branch = self.conv2.backward(&grad_sum)?;
        let grad_branch = self.relu1.backward_owned(grad_branch)?;
        let mut grad_input = self.conv1.backward(&grad_branch)?;
        grad_input.add_assign(&grad_sum)?;
        Ok(grad_input)
    }

    fn apply_gradients(&mut self, learning_rate: f32) {
        self.conv1.apply_gradients(learning_rate);
        self.conv2.apply_gradients(learning_rate);
    }

    fn zero_gradients(&mut self) {
        self.conv1.zero_gradients();
        self.conv2.zero_gradients();
    }

    fn parameter_count(&self) -> usize {
        self.conv1.parameter_count() + self.conv2.parameter_count()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, DnnError> {
        // Channel-preserving: output shape equals input shape.
        self.conv1.output_shape(input_shape)?;
        Ok(input_shape.to_vec())
    }

    fn multiplications(&self, input_shape: &[usize]) -> u64 {
        self.conv1.multiplications(input_shape) + self.conv2.multiplications(input_shape)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_preserves_shape_and_uses_the_skip_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut block = ResidualBlock::new(2, 3, &mut rng);
        // Zero out the convolutions so the block reduces to relu(x).
        let zero_weights = vec![0.0; block.conv1.weights().len()];
        block.conv1.set_weights(&zero_weights).unwrap();
        block.conv2.set_weights(&zero_weights).unwrap();
        block.conv1.set_bias(&[0.0, 0.0]).unwrap();
        block.conv2.set_bias(&[0.0, 0.0]).unwrap();
        let input =
            Tensor::from_vec(&[2, 2, 2], vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, 8.0]).unwrap();
        let output = block.forward(&input).unwrap();
        assert_eq!(output.shape(), input.shape());
        assert_eq!(output.data()[0], 1.0);
        assert_eq!(output.data()[1], 0.0); // negative input clipped by the output relu
    }

    #[test]
    fn numerical_gradient_check_through_the_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut block = ResidualBlock::new(1, 3, &mut rng);
        let input =
            Tensor::from_vec(&[1, 3, 3], (0..9).map(|i| 0.1 * i as f32 + 0.05).collect()).unwrap();
        let output = block.forward(&input).unwrap();
        let base_loss: f32 = output.data().iter().sum();
        let ones = Tensor::from_vec(output.shape(), vec![1.0; output.len()]).unwrap();
        let grad_input = block.backward(&ones).unwrap();

        let eps = 1e-3;
        for probe in [0usize, 4, 8] {
            let mut perturbed = input.clone();
            perturbed.data_mut()[probe] += eps;
            let mut rng2 = ChaCha8Rng::seed_from_u64(5);
            let mut fresh = ResidualBlock::new(1, 3, &mut rng2);
            let new_loss: f32 = fresh.forward(&perturbed).unwrap().data().iter().sum();
            let numeric = (new_loss - base_loss) / eps;
            let analytic = grad_input.data()[probe];
            assert!(
                (numeric - analytic).abs() < 5e-2,
                "grad mismatch at {probe}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn shape_and_multiplication_accounting() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let block = ResidualBlock::new(4, 3, &mut rng);
        assert_eq!(block.output_shape(&[4, 8, 8]).unwrap(), vec![4, 8, 8]);
        assert!(block.output_shape(&[3, 8, 8]).is_err());
        assert_eq!(block.multiplications(&[4, 8, 8]), 2 * 8 * 8 * 4 * 4 * 9);
        assert_eq!(block.parameter_count(), 2 * (4 * 4 * 9 + 4));
        let (c1, c2) = block.convolutions();
        assert_eq!(c1.out_channels(), 4);
        assert_eq!(c2.in_channels(), 4);
    }

    #[test]
    fn backward_before_forward_is_an_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut block = ResidualBlock::new(1, 3, &mut rng);
        assert!(block.backward(&Tensor::zeros(&[1, 2, 2])).is_err());
    }
}
