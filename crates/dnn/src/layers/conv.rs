//! 2-D convolution layer (same padding, stride 1).
//!
//! The forward and backward passes are lowered onto im2col + GEMM (see
//! [`crate::im2col`] and [`optima_math::gemm`]): the input is unrolled into
//! a `[in_c·k², h·w]` patch matrix once, after which the convolution is a
//! single dense matrix product over contiguous memory.  The forward product
//! runs on the packed-panel 8-wide micro-kernel: the weight matrix is
//! packed **once** into a [`PackedGemm`] plan that is cached on the layer
//! and invalidated whenever the weights change, so a whole batch of images
//! reuses one packing.  The patch matrix is cached between forward and
//! backward — the backward pass needs exactly the same patches for the
//! weight gradient — so the layer never clones its input tensor.  The
//! original six-deep scalar loop survives as
//! [`crate::reference::conv2d_forward`] for the equivalence tests and
//! benches.

use crate::error::DnnError;
use crate::im2col::{col2im_add, im2col};
use crate::layers::Layer;
use crate::scratch::KernelScratch;
use crate::tensor::Tensor;
use optima_math::gemm::{gemm_nt, gemm_tn, GemmScratch, PackedGemm};
use rand::Rng;
use std::any::Any;
use std::sync::OnceLock;

/// A 2-D convolution over `[C, H, W]` tensors with "same" padding and stride 1.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// Weights in `[out_c, in_c, k, k]` order.
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    /// im2col patches of the last forward input (reused by `backward`).
    cols: Vec<f32>,
    /// Scratch for the patch-space gradient in `backward`.
    grad_cols: Vec<f32>,
    /// Spatial size of the last forward input; `None` before any forward.
    cached_spatial: Option<(usize, usize)>,
    /// Packed-panel GEMM plan over the current weights, built lazily on the
    /// first forward and reset by any weight mutation.
    plan: OnceLock<PackedGemm>,
    /// Packed-`B` arena for the `&mut self` training path (the immutable
    /// inference paths draw theirs from the caller's [`KernelScratch`]).
    gemm_scratch: GemmScratch,
}

impl Conv2d {
    /// Creates a convolution layer with He-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even or zero (only odd kernels keep "same"
    /// padding symmetric).
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel % 2 == 1 && kernel > 0, "kernel size must be odd");
        let fan_in = in_channels * kernel * kernel;
        let scale = (2.0 / fan_in as f32).sqrt();
        let weights = (0..out_channels * fan_in)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            weights,
            bias: vec![0.0; out_channels],
            grad_weights: vec![0.0; out_channels * fan_in],
            grad_bias: vec![0.0; out_channels],
            cols: Vec::new(),
            grad_cols: Vec::new(),
            cached_spatial: None,
            plan: OnceLock::new(),
            gemm_scratch: GemmScratch::new(),
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Weights in `[out_c, in_c, k, k]` order.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Bias per output channel.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Overwrites the weights (e.g. to load externally trained parameters).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when the length differs from the
    /// layer's weight count.
    pub fn set_weights(&mut self, weights: &[f32]) -> Result<(), DnnError> {
        if weights.len() != self.weights.len() {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.weights.len()],
                found: vec![weights.len()],
            });
        }
        self.weights.copy_from_slice(weights);
        self.invalidate_plan();
        Ok(())
    }

    /// Overwrites the bias vector.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when the length differs from the
    /// number of output channels.
    pub fn set_bias(&mut self, bias: &[f32]) -> Result<(), DnnError> {
        if bias.len() != self.bias.len() {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.bias.len()],
                found: vec![bias.len()],
            });
        }
        self.bias.copy_from_slice(bias);
        Ok(())
    }

    /// Drops the cached packed-weight plan; the next forward repacks.
    fn invalidate_plan(&mut self) {
        self.plan = OnceLock::new();
    }

    /// Packed-panel plan over the current weights, built on first use.
    ///
    /// Packing happens at most once per weight version: `forward`, `infer`
    /// and `infer_into` all share this plan, so a whole evaluation batch
    /// pays the packing cost a single time.
    fn plan(&self) -> &PackedGemm {
        self.plan.get_or_init(|| {
            let patch = self.in_channels * self.kernel * self.kernel;
            PackedGemm::pack(self.out_channels, patch, &self.weights)
        })
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize), DnnError> {
        let shape = input.shape();
        if shape.len() != 3 || shape[0] != self.in_channels {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.in_channels, 0, 0],
                found: shape.to_vec(),
            });
        }
        Ok((shape[1], shape[2]))
    }

    /// im2col + packed GEMM forward; `cols` receives the patch matrix.
    fn run_forward(
        &self,
        input: &Tensor,
        cols: &mut Vec<f32>,
        gemm_scratch: &mut GemmScratch,
    ) -> Result<Tensor, DnnError> {
        let (height, width) = self.check_input(input)?;
        let hw = height * width;
        im2col(
            input.data(),
            0.0,
            self.in_channels,
            height,
            width,
            self.kernel,
            cols,
        );
        let mut output = Vec::with_capacity(self.out_channels * hw);
        for &b in &self.bias {
            output.extend(std::iter::repeat_n(b, hw));
        }
        self.plan().gemm_into(hw, cols, &mut output, gemm_scratch);
        Tensor::from_vec(&[self.out_channels, height, width], output)
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, DnnError> {
        let mut cols = std::mem::take(&mut self.cols);
        let mut gemm_scratch = std::mem::take(&mut self.gemm_scratch);
        let result = self.run_forward(input, &mut cols, &mut gemm_scratch);
        self.cols = cols;
        self.gemm_scratch = gemm_scratch;
        let output = result?;
        self.cached_spatial = Some((output.shape()[1], output.shape()[2]));
        Ok(output)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        let mut cols = Vec::new();
        let mut gemm_scratch = GemmScratch::new();
        self.run_forward(input, &mut cols, &mut gemm_scratch)
    }

    fn infer_into(
        &self,
        input: &Tensor,
        output: &mut Tensor,
        scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        let (height, width) = self.check_input(input)?;
        let hw = height * width;
        im2col(
            input.data(),
            0.0,
            self.in_channels,
            height,
            width,
            self.kernel,
            &mut scratch.cols,
        );
        output.resize_to(&[self.out_channels, height, width]);
        let out = output.data_mut();
        for (row, &b) in out.chunks_exact_mut(hw).zip(self.bias.iter()) {
            row.fill(b);
        }
        self.plan()
            .gemm_into(hw, &scratch.cols, out, &mut scratch.gemm);
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, DnnError> {
        let (height, width) =
            self.cached_spatial
                .ok_or_else(|| DnnError::InvalidConfiguration {
                    context: "conv2d backward called before forward".to_string(),
                })?;
        if grad_output.shape() != [self.out_channels, height, width] {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.out_channels, height, width],
                found: grad_output.shape().to_vec(),
            });
        }
        let hw = height * width;
        let patch = self.in_channels * self.kernel * self.kernel;
        let grad = grad_output.data();

        // ∂L/∂bias: one row-sum per output channel.
        for (oc, grad_bias) in self.grad_bias.iter_mut().enumerate() {
            *grad_bias += grad[oc * hw..(oc + 1) * hw].iter().sum::<f32>();
        }
        // ∂L/∂W += G · colsᵀ — the cached forward patches are the activations.
        gemm_nt(
            self.out_channels,
            hw,
            patch,
            grad,
            &self.cols,
            &mut self.grad_weights,
        );
        // ∂L/∂cols = Wᵀ · G, then scatter back to image layout.
        self.grad_cols.clear();
        self.grad_cols.resize(patch * hw, 0.0);
        gemm_tn(
            patch,
            self.out_channels,
            hw,
            &self.weights,
            grad,
            &mut self.grad_cols,
        );
        let mut grad_input = Tensor::zeros(&[self.in_channels, height, width]);
        col2im_add(
            &self.grad_cols,
            self.in_channels,
            height,
            width,
            self.kernel,
            grad_input.data_mut(),
        );
        Ok(grad_input)
    }

    fn apply_gradients(&mut self, learning_rate: f32) {
        for (w, g) in self.weights.iter_mut().zip(self.grad_weights.iter()) {
            *w -= learning_rate * g;
        }
        for (b, g) in self.bias.iter_mut().zip(self.grad_bias.iter()) {
            *b -= learning_rate * g;
        }
        self.invalidate_plan();
        self.zero_gradients();
    }

    fn zero_gradients(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, DnnError> {
        if input_shape.len() != 3 || input_shape[0] != self.in_channels {
            return Err(DnnError::ShapeMismatch {
                expected: vec![self.in_channels, 0, 0],
                found: input_shape.to_vec(),
            });
        }
        Ok(vec![self.out_channels, input_shape[1], input_shape[2]])
    }

    fn multiplications(&self, input_shape: &[usize]) -> u64 {
        if input_shape.len() != 3 {
            return 0;
        }
        let spatial = (input_shape[1] * input_shape[2]) as u64;
        spatial
            * self.out_channels as u64
            * self.in_channels as u64
            * (self.kernel * self.kernel) as u64
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_kernel_preserves_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 1, 3, &mut rng);
        conv.weights.iter_mut().for_each(|w| *w = 0.0);
        conv.weights[4] = 1.0; // centre tap
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let output = conv.forward(&input).unwrap();
        assert_eq!(output.data(), input.data());
    }

    #[test]
    fn forward_matches_the_naive_reference_over_random_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for case in 0..40u64 {
            let mut shape_rng = ChaCha8Rng::seed_from_u64(case);
            let in_channels = shape_rng.gen_range(1..4usize);
            let out_channels = shape_rng.gen_range(1..5usize);
            let kernel = [1, 3, 5][shape_rng.gen_range(0..3usize)];
            let height = shape_rng.gen_range(1..9usize);
            let width = shape_rng.gen_range(1..9usize);
            let mut conv = Conv2d::new(in_channels, out_channels, kernel, &mut rng);
            conv.bias
                .iter_mut()
                .for_each(|b| *b = rng.gen::<f32>() - 0.5);
            let input = Tensor::from_vec(
                &[in_channels, height, width],
                (0..in_channels * height * width)
                    .map(|_| rng.gen::<f32>() * 2.0 - 1.0)
                    .collect(),
            )
            .unwrap();
            let fast = conv.forward(&input).unwrap();
            let naive = reference::conv2d_forward(
                input.data(),
                in_channels,
                height,
                width,
                &conv.weights,
                &conv.bias,
                out_channels,
                kernel,
            );
            for (i, (&a, &b)) in fast.data().iter().zip(naive.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-4,
                    "case {case} ({in_channels}x{height}x{width} k{kernel}) element {i}: {a} vs {b}"
                );
            }
            // The immutable inference path computes the same output.
            assert_eq!(conv.infer(&input).unwrap(), fast);
        }
    }

    #[test]
    fn shape_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut conv = Conv2d::new(3, 8, 3, &mut rng);
        assert!(conv.forward(&Tensor::zeros(&[1, 4, 4])).is_err());
        assert_eq!(conv.output_shape(&[3, 8, 8]).unwrap(), vec![8, 8, 8]);
        assert!(conv.output_shape(&[2, 8, 8]).is_err());
        assert_eq!(conv.multiplications(&[3, 8, 8]), 8 * 8 * 8 * 3 * 9);
        assert_eq!(conv.parameter_count(), 8 * 3 * 9 + 8);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = Conv2d::new(1, 1, 2, &mut rng);
    }

    #[test]
    fn numerical_gradient_check() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut conv = Conv2d::new(2, 2, 3, &mut rng);
        let input = Tensor::from_vec(
            &[2, 3, 3],
            (0..18).map(|i| (i as f32 * 0.13).sin()).collect(),
        )
        .unwrap();
        let output = conv.forward(&input).unwrap();
        let base_loss: f32 = output.data().iter().sum();
        let ones = Tensor::from_vec(output.shape(), vec![1.0; output.len()]).unwrap();
        let grad_input = conv.backward(&ones).unwrap();

        let eps = 1e-3;
        for probe_index in [0usize, 5, 9, 17] {
            let mut perturbed = input.clone();
            perturbed.data_mut()[probe_index] += eps;
            let mut fresh = conv.clone();
            let new_loss: f32 = fresh.forward(&perturbed).unwrap().data().iter().sum();
            let numeric = (new_loss - base_loss) / eps;
            let analytic = grad_input.data()[probe_index];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "grad mismatch at {probe_index}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn backward_before_forward_is_an_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 3, &mut rng);
        assert!(conv.backward(&Tensor::zeros(&[1, 2, 2])).is_err());
    }

    #[test]
    fn training_reduces_loss_on_a_tiny_target() {
        // Learn to double the input with a 1x1-channel conv.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut conv = Conv2d::new(1, 1, 3, &mut rng);
        let input =
            Tensor::from_vec(&[1, 3, 3], (1..=9).map(|v| v as f32 * 0.1).collect()).unwrap();
        let target: Vec<f32> = input.data().iter().map(|v| v * 2.0).collect();
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            let out = conv.forward(&input).unwrap();
            let grad: Vec<f32> = out
                .data()
                .iter()
                .zip(target.iter())
                .map(|(o, t)| 2.0 * (o - t))
                .collect();
            let loss: f32 = out
                .data()
                .iter()
                .zip(target.iter())
                .map(|(o, t)| (o - t) * (o - t))
                .sum();
            conv.backward(&Tensor::from_vec(out.shape(), grad).unwrap())
                .unwrap();
            conv.apply_gradients(0.05);
            last = loss;
        }
        assert!(last < 0.05, "loss did not decrease enough: {last}");
    }
}
