//! Procedurally generated image-classification datasets.
//!
//! The paper evaluates on ImageNet and CIFAR-10, neither of which can be
//! bundled here.  Instead, this module generates synthetic multi-class image
//! datasets whose difficulty can be tuned (class count, noise level): each
//! class is defined by a random low-frequency prototype pattern, and samples
//! are noisy, slightly shifted instances of their class prototype.  The
//! mechanism the paper measures — multiplier error degrading classification
//! accuracy — is preserved (see DESIGN.md, substitution table).

use crate::tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic image dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticImageConfig {
    /// Number of classes.
    pub classes: usize,
    /// Height and width of the square images.
    pub image_size: usize,
    /// Number of channels (1 = grayscale, 3 = RGB-like).
    pub channels: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Standard deviation of the additive noise (relative to unit contrast).
    pub noise_level: f32,
    /// RNG seed (datasets are fully deterministic given the seed).
    pub seed: u64,
}

impl SyntheticImageConfig {
    /// A reduced stand-in for the ImageNet experiment: more classes,
    /// 16×16 RGB-like images.
    pub fn imagenet_like() -> Self {
        SyntheticImageConfig {
            classes: 16,
            image_size: 16,
            channels: 3,
            train_per_class: 30,
            test_per_class: 10,
            noise_level: 0.25,
            seed: 2024,
        }
    }

    /// A reduced stand-in for the CIFAR-10 experiment: 10 classes,
    /// 16×16 RGB-like images.
    pub fn cifar_like() -> Self {
        SyntheticImageConfig {
            classes: 10,
            image_size: 16,
            channels: 3,
            train_per_class: 30,
            test_per_class: 10,
            noise_level: 0.2,
            seed: 10,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        SyntheticImageConfig {
            classes: 3,
            image_size: 8,
            channels: 1,
            train_per_class: 10,
            test_per_class: 4,
            noise_level: 0.15,
            seed: 1,
        }
    }
}

/// An in-memory image-classification dataset with train/test splits.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    classes: usize,
    image_shape: Vec<usize>,
    train_images: Vec<Tensor>,
    train_labels: Vec<usize>,
    test_images: Vec<Tensor>,
    test_labels: Vec<usize>,
}

impl Dataset {
    /// Generates a synthetic dataset from the given configuration.
    pub fn synthetic(config: SyntheticImageConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let image_shape = vec![config.channels, config.image_size, config.image_size];

        // One smooth prototype pattern per class.
        let prototypes: Vec<Tensor> = (0..config.classes)
            .map(|_| Self::prototype(&image_shape, &mut rng))
            .collect();

        let mut train_images = Vec::new();
        let mut train_labels = Vec::new();
        let mut test_images = Vec::new();
        let mut test_labels = Vec::new();

        for (label, prototype) in prototypes.iter().enumerate() {
            for _ in 0..config.train_per_class {
                train_images.push(Self::perturb(prototype, config.noise_level, &mut rng));
                train_labels.push(label);
            }
            for _ in 0..config.test_per_class {
                test_images.push(Self::perturb(prototype, config.noise_level, &mut rng));
                test_labels.push(label);
            }
        }

        Dataset {
            classes: config.classes,
            image_shape,
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }

    /// Random low-frequency pattern in `[0, 1]`.
    fn prototype(shape: &[usize], rng: &mut ChaCha8Rng) -> Tensor {
        let (channels, height, width) = (shape[0], shape[1], shape[2]);
        let mut tensor = Tensor::zeros(shape);
        let pixels = tensor.data_mut();
        for c in 0..channels {
            // Sum of a few random sinusoids gives a smooth, class-specific texture.
            let fx: f32 = rng.gen_range(0.5..2.5);
            let fy: f32 = rng.gen_range(0.5..2.5);
            let phase_x: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let phase_y: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            for y in 0..height {
                let row = &mut pixels[(c * height + y) * width..(c * height + y + 1) * width];
                for (x, pixel) in row.iter_mut().enumerate() {
                    let value = 0.5
                        + 0.25
                            * ((x as f32 / width as f32 * std::f32::consts::TAU * fx + phase_x)
                                .sin()
                                + (y as f32 / height as f32 * std::f32::consts::TAU * fy
                                    + phase_y)
                                    .cos());
                    *pixel = value.clamp(0.0, 1.0);
                }
            }
        }
        tensor
    }

    /// Adds uniform noise and a small global brightness shift.
    fn perturb(prototype: &Tensor, noise: f32, rng: &mut ChaCha8Rng) -> Tensor {
        let brightness: f32 = rng.gen_range(-0.05..0.05);
        let mut sample = prototype.clone();
        for value in sample.data_mut() {
            *value = (*value + brightness + rng.gen_range(-noise..noise)).clamp(0.0, 1.0);
        }
        sample
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Shape of every image (`[C, H, W]`).
    pub fn image_shape(&self) -> &[usize] {
        &self.image_shape
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_images.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_images.len()
    }

    /// Iterator over `(image, label)` pairs of the training split.
    pub fn train_iter(&self) -> impl Iterator<Item = (&Tensor, &usize)> {
        self.train_images.iter().zip(self.train_labels.iter())
    }

    /// Iterator over `(image, label)` pairs of the test split.
    pub fn test_iter(&self) -> impl Iterator<Item = (&Tensor, &usize)> {
        self.test_images.iter().zip(self.test_labels.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_sizes_match_configuration() {
        let config = SyntheticImageConfig::tiny();
        let dataset = Dataset::synthetic(config);
        assert_eq!(dataset.classes(), 3);
        assert_eq!(dataset.train_len(), 3 * 10);
        assert_eq!(dataset.test_len(), 3 * 4);
        assert_eq!(dataset.image_shape(), &[1, 8, 8]);
        assert_eq!(dataset.train_iter().count(), 30);
        assert_eq!(dataset.test_iter().count(), 12);
    }

    #[test]
    fn generation_is_deterministic_for_equal_seeds() {
        let a = Dataset::synthetic(SyntheticImageConfig::tiny());
        let b = Dataset::synthetic(SyntheticImageConfig::tiny());
        assert_eq!(a, b);
        let c = Dataset::synthetic(SyntheticImageConfig {
            seed: 2,
            ..SyntheticImageConfig::tiny()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn pixel_values_stay_in_unit_range() {
        let dataset = Dataset::synthetic(SyntheticImageConfig::tiny());
        for (image, _) in dataset.train_iter().chain(dataset.test_iter()) {
            assert!(image.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn classes_are_distinguishable() {
        // Same-class samples must be closer to each other than to other classes
        // on average, otherwise no network could ever learn the task.
        let dataset = Dataset::synthetic(SyntheticImageConfig::tiny());
        let distance = |a: &Tensor, b: &Tensor| -> f32 {
            a.data()
                .iter()
                .zip(b.data().iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum()
        };
        let samples: Vec<(&Tensor, &usize)> = dataset.train_iter().collect();
        let mut same = Vec::new();
        let mut different = Vec::new();
        for (i, (img_a, label_a)) in samples.iter().enumerate() {
            for (img_b, label_b) in samples.iter().skip(i + 1) {
                if label_a == label_b {
                    same.push(distance(img_a, img_b));
                } else {
                    different.push(distance(img_a, img_b));
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&same) < mean(&different));
    }

    #[test]
    fn preset_configurations_are_reasonable() {
        let imagenet = SyntheticImageConfig::imagenet_like();
        let cifar = SyntheticImageConfig::cifar_like();
        assert!(imagenet.classes > cifar.classes);
        assert_eq!(cifar.classes, 10);
        assert_eq!(imagenet.channels, 3);
    }
}
