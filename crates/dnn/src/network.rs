//! Sequential networks of layers.

use crate::error::DnnError;
use crate::layers::Layer;
use crate::scratch::KernelScratch;
use crate::tensor::Tensor;

/// A sequential feed-forward network.
///
/// # Example
///
/// ```rust
/// use optima_dnn::layers::{Dense, Relu};
/// use optima_dnn::network::Network;
/// use optima_dnn::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut net = Network::new(vec![
///     Box::new(Dense::new(4, 8, &mut rng)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(8, 2, &mut rng)),
/// ]);
/// let logits = net.forward(&Tensor::from_slice(&[0.1, 0.2, 0.3, 0.4])).unwrap();
/// assert_eq!(logits.len(), 2);
/// ```
#[derive(Debug)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Creates a network from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Network { layers }
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layers (used by transfer learning to swap the head).
    pub fn layers_mut(&mut self) -> &mut Vec<Box<dyn Layer>> {
        &mut self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` for an empty network.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs a forward pass through every layer.
    ///
    /// The first layer borrows `input`; after that the activation tensor is
    /// threaded through the stack *by value*, so shape-preserving layers
    /// (ReLU, flatten) run in place and no layer ever clones a tensor.  The
    /// zero-clone property is pinned by a regression test against
    /// [`crate::tensor::clone_count`].
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, DnnError> {
        let mut layers = self.layers.iter_mut();
        let mut current = match layers.next() {
            Some(first) => first.forward(input)?,
            None => return Ok(input.clone()),
        };
        for layer in layers {
            current = layer.forward_owned(current)?;
        }
        Ok(current)
    }

    /// Runs an inference-only forward pass without mutating any layer state.
    ///
    /// Unlike [`Network::forward`] this takes `&self`, which is what allows
    /// one network to be shared across the threads of the batched dataset
    /// evaluator ([`crate::eval::evaluate_batched`]).  No backward pass is
    /// possible afterwards because nothing is cached.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn infer(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        let mut layers = self.layers.iter();
        let mut current = match layers.next() {
            Some(first) => first.infer(input)?,
            None => return Ok(input.clone()),
        };
        for layer in layers {
            current = layer.infer(&current)?;
        }
        Ok(current)
    }

    /// Runs an inference pass with every buffer drawn from `scratch`.
    ///
    /// Numerically identical to [`Network::infer`] — the activations
    /// ping-pong between two pool tensors instead of being freshly
    /// allocated per layer, and the result is parked in the arena and
    /// returned by reference (valid until the next call that borrows the
    /// same scratch).  After the first few calls have grown the buffers to
    /// the network's high-water mark, the steady state performs **zero**
    /// heap allocations per image; the workspace's counting-allocator test
    /// pins that property.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors (leased buffers are returned to the
    /// pool on the error path, so a failed call leaks nothing).
    pub fn infer_with<'s>(
        &self,
        input: &Tensor,
        scratch: &'s mut KernelScratch,
    ) -> Result<&'s Tensor, DnnError> {
        let mut current = scratch.lease();
        let mut next = scratch.lease();
        let result = self.infer_ping_pong(input, &mut current, &mut next, scratch);
        scratch.release(next);
        match result {
            Ok(()) => Ok(scratch.store_result(current)),
            Err(error) => {
                scratch.release(current);
                Err(error)
            }
        }
    }

    /// Runs a batch of images through one scratch-arena pass.
    ///
    /// Every image streams through the same packed weight panels (packed
    /// once, on first use, and cached on the layers) and the same
    /// [`KernelScratch`] arena, so an N-image batch costs one warm-up and
    /// then zero heap allocations — the per-call arena churn of N separate
    /// [`Network::infer_with`] calls with N cold scratches is gone, and the
    /// results are **bit-identical** to N independent single-image calls
    /// (pinned by a regression test).  This is the entry point the
    /// `optima_serve` shard workers and the serving benchmarks build on.
    ///
    /// `outputs` is resized to `inputs.len()` and each slot is overwritten
    /// in place; recycled tensors keep their capacity, so reusing one
    /// output vector across bursts allocates nothing in the steady state.
    ///
    /// # Errors
    ///
    /// Wraps the first failing image's error as
    /// [`DnnError::EvaluationFailed`] with its batch index.  Earlier slots
    /// hold valid logits; later slots are untouched.
    pub fn infer_batch_with(
        &self,
        inputs: &[&Tensor],
        outputs: &mut Vec<Tensor>,
        scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        outputs.resize_with(inputs.len(), Tensor::default);
        for (index, (input, output)) in inputs.iter().zip(outputs.iter_mut()).enumerate() {
            match self.infer_with(input, scratch) {
                Ok(logits) => output.copy_from(logits),
                Err(error) => {
                    return Err(DnnError::EvaluationFailed {
                        image_index: index,
                        source: Box::new(error),
                    })
                }
            }
        }
        Ok(())
    }

    /// The layer loop of [`Network::infer_with`]: `current` holds the layer
    /// input, `next` receives the output, and the two swap roles each step.
    fn infer_ping_pong(
        &self,
        input: &Tensor,
        current: &mut Tensor,
        next: &mut Tensor,
        scratch: &mut KernelScratch,
    ) -> Result<(), DnnError> {
        let mut layers = self.layers.iter();
        match layers.next() {
            Some(first) => first.infer_into(input, current, scratch)?,
            None => current.copy_from(input),
        }
        for layer in layers {
            layer.infer_into(current, next, scratch)?;
            std::mem::swap(current, next);
        }
        Ok(())
    }

    /// Runs a backward pass (after a forward pass) and accumulates gradients.
    ///
    /// Like [`Network::forward`], the gradient tensor is threaded through by
    /// value so in-place layers avoid allocating.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (e.g. backward before forward).
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, DnnError> {
        let mut layers = self.layers.iter_mut().rev();
        let mut grad = match layers.next() {
            Some(last) => last.backward(grad_output)?,
            None => return Ok(grad_output.clone()),
        };
        for layer in layers {
            grad = layer.backward_owned(grad)?;
        }
        Ok(grad)
    }

    /// Applies accumulated gradients to every layer.
    pub fn apply_gradients(&mut self, learning_rate: f32) {
        for layer in &mut self.layers {
            layer.apply_gradients(learning_rate);
        }
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_gradients(&mut self) {
        for layer in &mut self.layers {
            layer.zero_gradients();
        }
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Total number of scalar multiplications of one forward pass for an
    /// input of the given shape (the multiplication counts of Table II).
    ///
    /// # Errors
    ///
    /// Propagates shape-propagation errors.
    pub fn multiplications(&self, input_shape: &[usize]) -> Result<u64, DnnError> {
        let mut shape = input_shape.to_vec();
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.multiplications(&shape);
            shape = layer.output_shape(&shape)?;
        }
        Ok(total)
    }

    /// Output shape of the network for the given input shape.
    ///
    /// # Errors
    ///
    /// Propagates shape-propagation errors.
    pub fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, DnnError> {
        let mut shape = input_shape.to_vec();
        for layer in &self.layers {
            shape = layer.output_shape(&shape)?;
        }
        Ok(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn tiny_cnn() -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        Network::new(vec![
            Box::new(Conv2d::new(1, 2, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(2 * 2 * 2, 3, &mut rng)),
        ])
    }

    #[test]
    fn forward_produces_the_expected_output_shape() {
        let mut net = tiny_cnn();
        assert_eq!(net.len(), 5);
        assert!(!net.is_empty());
        assert_eq!(net.output_shape(&[1, 4, 4]).unwrap(), vec![3]);
        let out = net.forward(&Tensor::zeros(&[1, 4, 4])).unwrap();
        assert_eq!(out.shape(), &[3]);
    }

    #[test]
    fn multiplication_count_matches_layer_sums() {
        let net = tiny_cnn();
        // conv: 4*4*2*1*9 = 288, dense: 8*3 = 24
        assert_eq!(net.multiplications(&[1, 4, 4]).unwrap(), 288 + 24);
        assert!(net.parameter_count() > 0);
    }

    #[test]
    fn backward_and_gradient_application_run_end_to_end() {
        let mut net = tiny_cnn();
        let input =
            Tensor::from_vec(&[1, 4, 4], (0..16).map(|i| i as f32 * 0.05).collect()).unwrap();
        let out = net.forward(&input).unwrap();
        let grad = Tensor::from_vec(out.shape(), vec![1.0; out.len()]).unwrap();
        let grad_input = net.backward(&grad).unwrap();
        assert_eq!(grad_input.shape(), input.shape());
        net.apply_gradients(0.01);
        net.zero_gradients();
    }

    #[test]
    fn shape_errors_propagate() {
        let mut net = tiny_cnn();
        assert!(net.forward(&Tensor::zeros(&[2, 4, 4])).is_err());
        assert!(net.multiplications(&[2, 4, 4]).is_err());
    }

    #[test]
    fn infer_matches_forward_and_leaves_no_backward_state() {
        let mut net = tiny_cnn();
        let input =
            Tensor::from_vec(&[1, 4, 4], (0..16).map(|i| i as f32 * 0.07).collect()).unwrap();
        let inferred = net.infer(&input).unwrap();
        let forwarded = net.forward(&input).unwrap();
        assert_eq!(inferred, forwarded);
        // infer must not enable a backward pass on a fresh network.
        let mut fresh = tiny_cnn();
        let _ = fresh.infer(&input).unwrap();
        assert!(fresh.backward(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn infer_with_matches_infer_bit_for_bit() {
        use crate::layers::{GlobalAvgPool, ResidualBlock};
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        // One of every layer kind, so the scratch path covers the whole zoo.
        let net = Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new()),
            Box::new(ResidualBlock::new(4, 3, &mut rng)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4, 3, &mut rng)),
        ]);
        let mut scratch = crate::scratch::KernelScratch::new();
        for seed in 0..4u64 {
            let mut data_rng = ChaCha8Rng::seed_from_u64(seed);
            let input = Tensor::from_vec(
                &[1, 8, 8],
                (0..64).map(|_| data_rng.gen::<f32>() * 2.0 - 1.0).collect(),
            )
            .unwrap();
            let plain = net.infer(&input).unwrap();
            let pooled = net.infer_with(&input, &mut scratch).unwrap();
            assert_eq!(&plain, pooled, "seed {seed}");
        }
    }

    #[test]
    fn infer_with_recovers_after_a_shape_error() {
        let net = tiny_cnn();
        let mut scratch = crate::scratch::KernelScratch::new();
        assert!(net
            .infer_with(&Tensor::zeros(&[2, 4, 4]), &mut scratch)
            .is_err());
        let input =
            Tensor::from_vec(&[1, 4, 4], (0..16).map(|i| i as f32 * 0.07).collect()).unwrap();
        let expected = net.infer(&input).unwrap();
        assert_eq!(&expected, net.infer_with(&input, &mut scratch).unwrap());
    }

    #[test]
    fn infer_batch_with_is_bit_identical_to_independent_single_image_calls() {
        use crate::layers::{GlobalAvgPool, ResidualBlock};
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        // One of every layer kind, so the batch path covers the whole zoo.
        let net = Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new()),
            Box::new(ResidualBlock::new(4, 3, &mut rng)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4, 3, &mut rng)),
        ]);
        let mut data_rng = ChaCha8Rng::seed_from_u64(99);
        let images: Vec<Tensor> = (0..6)
            .map(|_| {
                Tensor::from_vec(
                    &[1, 8, 8],
                    (0..64).map(|_| data_rng.gen::<f32>() * 2.0 - 1.0).collect(),
                )
                .unwrap()
            })
            .collect();
        let refs: Vec<&Tensor> = images.iter().collect();
        let mut batch_scratch = crate::scratch::KernelScratch::new();
        let mut outputs = Vec::new();
        net.infer_batch_with(&refs, &mut outputs, &mut batch_scratch)
            .unwrap();
        assert_eq!(outputs.len(), images.len());
        for (index, image) in images.iter().enumerate() {
            // Each reference call gets its own cold scratch: bit-identity
            // must not depend on shared arena history.
            let mut single = crate::scratch::KernelScratch::new();
            let expected = net.infer_with(image, &mut single).unwrap();
            assert_eq!(expected, &outputs[index], "image {index}");
        }
        // A second burst overwrites the recycled output slots in place.
        net.infer_batch_with(&refs, &mut outputs, &mut batch_scratch)
            .unwrap();
        let mut single = crate::scratch::KernelScratch::new();
        assert_eq!(
            net.infer_with(&images[0], &mut single).unwrap(),
            &outputs[0]
        );
    }

    #[test]
    fn infer_batch_with_names_the_failing_image_index() {
        let net = tiny_cnn();
        let good = Tensor::zeros(&[1, 4, 4]);
        let bad = Tensor::zeros(&[2, 4, 4]);
        let inputs = [&good, &good, &bad];
        let mut outputs = Vec::new();
        let mut scratch = crate::scratch::KernelScratch::new();
        match net.infer_batch_with(&inputs, &mut outputs, &mut scratch) {
            Err(DnnError::EvaluationFailed { image_index, .. }) => assert_eq!(image_index, 2),
            other => panic!("expected EvaluationFailed, got {other:?}"),
        }
        // The slots before the failure hold valid logits.
        assert_eq!(outputs[0].len(), 3);
        assert_eq!(outputs[1].len(), 3);
    }

    #[test]
    fn infer_batch_with_on_an_empty_batch_clears_the_outputs() {
        let net = tiny_cnn();
        let mut outputs = vec![Tensor::from_slice(&[1.0])];
        let mut scratch = crate::scratch::KernelScratch::new();
        net.infer_batch_with(&[], &mut outputs, &mut scratch)
            .unwrap();
        assert!(outputs.is_empty());
    }

    #[test]
    fn infer_with_on_an_empty_network_copies_the_input() {
        let net = Network::new(Vec::new());
        let mut scratch = crate::scratch::KernelScratch::new();
        let input = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(&input, net.infer_with(&input, &mut scratch).unwrap());
    }

    #[test]
    fn forward_and_backward_perform_zero_tensor_clones() {
        use crate::layers::{GlobalAvgPool, ResidualBlock};
        use crate::tensor::clone_count;
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        // One of every layer kind, so the audit covers the whole zoo.
        let mut net = Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new()),
            Box::new(ResidualBlock::new(4, 3, &mut rng)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4, 3, &mut rng)),
        ]);
        let input = Tensor::from_vec(
            &[1, 8, 8],
            (0..64).map(|i| (i as f32 * 0.11).sin()).collect(),
        )
        .unwrap();
        // Warm up scratch buffers, then measure a full training step.
        let out = net.forward(&input).unwrap();
        let grad = Tensor::from_vec(out.shape(), vec![1.0; out.len()]).unwrap();
        net.backward(&grad).unwrap();

        let before = clone_count();
        let out = net.forward(&input).unwrap();
        let grad = Tensor::from_vec(out.shape(), vec![1.0; out.len()]).unwrap();
        net.backward(&grad).unwrap();
        assert_eq!(
            clone_count(),
            before,
            "forward/backward must perform zero intermediate Tensor clones"
        );
    }
}
