//! Scaled-down VGG-style and ResNet-style model zoo.
//!
//! The paper evaluates VGG16, VGG19, ResNet50 and ResNet101.  Training those
//! architectures from scratch at full size is far outside the scope of this
//! reproduction, so the zoo provides *style-faithful, scaled-down* analogues
//! (see DESIGN.md): VGG-style models stack plain convolution blocks with max
//! pooling and a dense classifier; ResNet-style models use a convolutional
//! stem followed by identity residual blocks and global average pooling.  The
//! deeper variant of each family has more convolutions/blocks, mirroring the
//! 16→19 and 50→101 relationships.

use crate::layers::{Conv2d, Dense, Flatten, GlobalAvgPool, Layer, MaxPool2d, Relu, ResidualBlock};
use crate::network::Network;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which published architecture a model is the scaled-down analogue of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// VGG16-style: two convolutions per block.
    Vgg16Style,
    /// VGG19-style: three convolutions per block.
    Vgg19Style,
    /// ResNet50-style: two residual blocks per stage.
    ResNet50Style,
    /// ResNet101-style: four residual blocks per stage.
    ResNet101Style,
}

impl ModelKind {
    /// All four model kinds in the order of the paper's tables.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Vgg16Style,
        ModelKind::Vgg19Style,
        ModelKind::ResNet50Style,
        ModelKind::ResNet101Style,
    ];
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModelKind::Vgg16Style => "VGG16-style",
            ModelKind::Vgg19Style => "VGG19-style",
            ModelKind::ResNet50Style => "ResNet50-style",
            ModelKind::ResNet101Style => "ResNet101-style",
        };
        write!(f, "{name}")
    }
}

/// Builds a VGG-style network for `[channels, size, size]` inputs.
///
/// `convs_per_block` is 2 for the VGG16 analogue and 3 for the VGG19 analogue.
pub fn vgg_style(
    input_channels: usize,
    convs_per_block: usize,
    classes: usize,
    image_size: usize,
    seed: u64,
) -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let widths = [8usize, 16usize];
    let mut in_channels = input_channels;
    let mut spatial = image_size;
    for &width in &widths {
        for conv_index in 0..convs_per_block {
            let inputs = if conv_index == 0 { in_channels } else { width };
            layers.push(Box::new(Conv2d::new(inputs, width, 3, &mut rng)));
            layers.push(Box::new(Relu::new()));
        }
        layers.push(Box::new(MaxPool2d::new()));
        in_channels = width;
        spatial /= 2;
    }
    layers.push(Box::new(Flatten::new()));
    let flat = in_channels * spatial * spatial;
    layers.push(Box::new(Dense::new(flat, 32, &mut rng)));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(Dense::new(32, classes, &mut rng)));
    Network::new(layers)
}

/// Builds a ResNet-style network for `[channels, size, size]` inputs.
///
/// `blocks` is 2 for the ResNet50 analogue and 4 for the ResNet101 analogue.
pub fn resnet_style(input_channels: usize, blocks: usize, classes: usize, seed: u64) -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let stem_width = 12usize;
    let mut layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(input_channels, stem_width, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
    ];
    for _ in 0..blocks {
        layers.push(Box::new(ResidualBlock::new(stem_width, 3, &mut rng)));
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Dense::new(stem_width, classes, &mut rng)));
    Network::new(layers)
}

/// Builds the scaled-down analogue of `kind` for square images of
/// `image_size` with `input_channels` channels and `classes` output classes.
pub fn build_model(
    kind: ModelKind,
    input_channels: usize,
    image_size: usize,
    classes: usize,
    seed: u64,
) -> Network {
    match kind {
        ModelKind::Vgg16Style => vgg_style(input_channels, 2, classes, image_size, seed),
        ModelKind::Vgg19Style => vgg_style(input_channels, 3, classes, image_size, seed),
        ModelKind::ResNet50Style => resnet_style(input_channels, 2, classes, seed),
        ModelKind::ResNet101Style => resnet_style(input_channels, 4, classes, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn all_model_kinds_build_and_produce_class_logits() {
        for kind in ModelKind::ALL {
            let mut network = build_model(kind, 1, 8, 5, 3);
            let logits = network.forward(&Tensor::zeros(&[1, 8, 8])).unwrap();
            assert_eq!(logits.len(), 5, "{kind} produced the wrong output size");
        }
    }

    #[test]
    fn deeper_variants_have_more_parameters_and_multiplications() {
        let vgg16 = build_model(ModelKind::Vgg16Style, 1, 8, 5, 3);
        let vgg19 = build_model(ModelKind::Vgg19Style, 1, 8, 5, 3);
        assert!(vgg19.parameter_count() > vgg16.parameter_count());
        assert!(
            vgg19.multiplications(&[1, 8, 8]).unwrap() > vgg16.multiplications(&[1, 8, 8]).unwrap()
        );
        let resnet50 = build_model(ModelKind::ResNet50Style, 1, 8, 5, 3);
        let resnet101 = build_model(ModelKind::ResNet101Style, 1, 8, 5, 3);
        assert!(resnet101.parameter_count() > resnet50.parameter_count());
        assert!(
            resnet101.multiplications(&[1, 8, 8]).unwrap()
                > resnet50.multiplications(&[1, 8, 8]).unwrap()
        );
    }

    #[test]
    fn vgg_models_have_fewer_multiplications_per_block_than_paper_but_same_ordering() {
        // The paper's Table II lists VGG19 > VGG16 and ResNet101 > ResNet50 in
        // multiplication count; verify the analogues preserve that ordering.
        let counts: Vec<u64> = ModelKind::ALL
            .iter()
            .map(|&kind| {
                build_model(kind, 3, 16, 10, 7)
                    .multiplications(&[3, 16, 16])
                    .unwrap()
            })
            .collect();
        assert!(counts[1] > counts[0], "VGG19-style must exceed VGG16-style");
        assert!(
            counts[3] > counts[2],
            "ResNet101-style must exceed ResNet50-style"
        );
    }

    #[test]
    fn model_kind_display_names() {
        assert_eq!(ModelKind::Vgg16Style.to_string(), "VGG16-style");
        assert_eq!(ModelKind::ResNet101Style.to_string(), "ResNet101-style");
        assert_eq!(ModelKind::ALL.len(), 4);
    }
}
