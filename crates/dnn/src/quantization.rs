//! INT4 post-training quantization.
//!
//! The paper quantizes pre-trained FLOAT32 networks to an INT4 representation
//! following the TensorFlow-Lite scheme with INT8 replaced by INT4.  This
//! module implements the corresponding per-tensor affine quantizers:
//! symmetric signed quantization for weights (range −7…7) and unsigned
//! quantization for (non-negative, post-ReLU) activations (range 0…15).

use serde::{Deserialize, Serialize};

/// Largest magnitude of a symmetric signed 4-bit value.
pub const INT4_SIGNED_MAX: i8 = 7;

/// Largest unsigned 4-bit value.
pub const INT4_UNSIGNED_MAX: u8 = 15;

/// Per-tensor quantization parameters (scale only; zero point is always 0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantizationParams {
    /// Real value represented by one integer step.
    pub scale: f32,
}

impl QuantizationParams {
    /// Parameters for symmetric signed quantization of `data` to 4 bits.
    pub fn symmetric_for(data: &[f32]) -> Self {
        let max_abs = data.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
        QuantizationParams {
            scale: if max_abs > 0.0 {
                max_abs / INT4_SIGNED_MAX as f32
            } else {
                1.0
            },
        }
    }

    /// Parameters for unsigned quantization of non-negative `data` to 4 bits.
    pub fn unsigned_for(data: &[f32]) -> Self {
        let max = data.iter().fold(0.0f32, |acc, v| acc.max(*v));
        QuantizationParams {
            scale: if max > 0.0 {
                max / INT4_UNSIGNED_MAX as f32
            } else {
                1.0
            },
        }
    }

    /// Quantizes one value to a signed 4-bit integer.
    pub fn quantize_signed(&self, value: f32) -> i8 {
        (value / self.scale)
            .round()
            .clamp(-(INT4_SIGNED_MAX as f32), INT4_SIGNED_MAX as f32) as i8
    }

    /// Quantizes one (non-negative) value to an unsigned 4-bit integer.
    pub fn quantize_unsigned(&self, value: f32) -> u8 {
        (value.max(0.0) / self.scale)
            .round()
            .clamp(0.0, INT4_UNSIGNED_MAX as f32) as u8
    }

    /// Reconstructs the real value of a signed quantized integer.
    pub fn dequantize(&self, value: i32) -> f32 {
        value as f32 * self.scale
    }
}

/// Quantizes a weight slice symmetrically to INT4, returning the integers and
/// the shared parameters.
pub fn quantize_weights(weights: &[f32]) -> (Vec<i8>, QuantizationParams) {
    let params = QuantizationParams::symmetric_for(weights);
    let quantized = weights.iter().map(|&w| params.quantize_signed(w)).collect();
    (quantized, params)
}

/// Quantizes an activation slice (clamped at zero) to unsigned INT4.
pub fn quantize_activations(activations: &[f32]) -> (Vec<u8>, QuantizationParams) {
    let params = QuantizationParams::unsigned_for(activations);
    let quantized = activations
        .iter()
        .map(|&a| params.quantize_unsigned(a))
        .collect();
    (quantized, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_quantization_round_trips_within_half_step() {
        let weights = [-0.9, -0.3, 0.0, 0.45, 0.9];
        let (quantized, params) = quantize_weights(&weights);
        assert_eq!(quantized.len(), weights.len());
        assert!(quantized.iter().all(|&q| (-7..=7).contains(&q)));
        for (&w, &q) in weights.iter().zip(quantized.iter()) {
            let reconstructed = params.dequantize(q as i32);
            assert!((reconstructed - w).abs() <= params.scale * 0.5 + 1e-6);
        }
        // The extreme value maps to the extreme code.
        assert_eq!(quantized[0], -7);
        assert_eq!(quantized[4], 7);
    }

    #[test]
    fn unsigned_quantization_clamps_negatives() {
        let activations = [-0.2, 0.0, 0.5, 1.0];
        let (quantized, params) = quantize_activations(&activations);
        assert_eq!(quantized[0], 0);
        assert_eq!(quantized[3], 15);
        assert!((params.dequantize(quantized[2] as i32) - 0.5).abs() < params.scale);
    }

    #[test]
    fn all_zero_input_uses_unit_scale() {
        let (quantized, params) = quantize_weights(&[0.0, 0.0]);
        assert_eq!(quantized, vec![0, 0]);
        assert_eq!(params.scale, 1.0);
        let (quantized, params) = quantize_activations(&[0.0]);
        assert_eq!(quantized, vec![0]);
        assert_eq!(params.scale, 1.0);
    }

    #[test]
    fn quantization_error_shrinks_for_narrow_ranges() {
        let wide = QuantizationParams::symmetric_for(&[-2.0, 2.0]);
        let narrow = QuantizationParams::symmetric_for(&[-0.1, 0.1]);
        assert!(narrow.scale < wide.scale);
    }
}
