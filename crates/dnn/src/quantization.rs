//! Post-training quantization to narrow integer widths.
//!
//! The paper quantizes pre-trained FLOAT32 networks to an INT4 representation
//! following the TensorFlow-Lite scheme with INT8 replaced by INT4.  This
//! module implements the corresponding per-tensor affine quantizers:
//! symmetric signed quantization for weights (range −7…7 at 4 bits) and
//! unsigned quantization for (non-negative, post-ReLU) activations (range
//! 0…15 at 4 bits).
//!
//! The operand width is a parameter (1..=8 bits) so the same quantizers serve
//! any [`optima_circuit::array::ArrayConfig`] geometry — the INT4 entry
//! points below delegate to the width-parameterized ones with `bits = 4` and
//! stay bit-identical to the original hard-wired implementation.

use serde::{Deserialize, Serialize};

/// Operand width of the paper's default INT4 pipeline.
pub const INT4_BITS: u8 = 4;

/// Largest magnitude of a symmetric signed 4-bit value.
pub const INT4_SIGNED_MAX: i8 = 7;

/// Largest unsigned 4-bit value.
pub const INT4_UNSIGNED_MAX: u8 = 15;

/// Largest magnitude of a symmetric signed `bits`-wide value,
/// `2^(bits−1) − 1` (e.g. 7 at 4 bits, 127 at 8 bits).
pub fn signed_max(bits: u8) -> i8 {
    debug_assert!((1..=8).contains(&bits));
    ((1u16 << (bits - 1)) - 1) as i8
}

/// Largest unsigned `bits`-wide value, `2^bits − 1` (e.g. 15 at 4 bits).
pub fn unsigned_max(bits: u8) -> u8 {
    debug_assert!((1..=8).contains(&bits));
    ((1u16 << bits) - 1) as u8
}

/// Per-tensor quantization parameters (scale only; zero point is always 0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantizationParams {
    /// Real value represented by one integer step.
    pub scale: f32,
    /// Operand width in bits; sets the clamping range of the quantizers.
    pub bits: u8,
}

impl QuantizationParams {
    /// Parameters for symmetric signed quantization of `data` to 4 bits.
    pub fn symmetric_for(data: &[f32]) -> Self {
        Self::symmetric_for_bits(data, INT4_BITS)
    }

    /// Parameters for unsigned quantization of non-negative `data` to 4 bits.
    pub fn unsigned_for(data: &[f32]) -> Self {
        Self::unsigned_for_bits(data, INT4_BITS)
    }

    /// Parameters for symmetric signed quantization of `data` to `bits` bits.
    pub fn symmetric_for_bits(data: &[f32], bits: u8) -> Self {
        let max_abs = data.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
        QuantizationParams {
            scale: if max_abs > 0.0 {
                max_abs / signed_max(bits) as f32
            } else {
                1.0
            },
            bits,
        }
    }

    /// Parameters for unsigned quantization of non-negative `data` to `bits`
    /// bits.
    pub fn unsigned_for_bits(data: &[f32], bits: u8) -> Self {
        let max = data.iter().fold(0.0f32, |acc, v| acc.max(*v));
        QuantizationParams {
            scale: if max > 0.0 {
                max / unsigned_max(bits) as f32
            } else {
                1.0
            },
            bits,
        }
    }

    /// Quantizes one value to a signed `bits`-wide integer.
    pub fn quantize_signed(&self, value: f32) -> i8 {
        let max = signed_max(self.bits) as f32;
        (value / self.scale).round().clamp(-max, max) as i8
    }

    /// Quantizes one (non-negative) value to an unsigned `bits`-wide integer.
    pub fn quantize_unsigned(&self, value: f32) -> u8 {
        let max = unsigned_max(self.bits) as f32;
        (value.max(0.0) / self.scale).round().clamp(0.0, max) as u8
    }

    /// Reconstructs the real value of a signed quantized integer.
    pub fn dequantize(&self, value: i32) -> f32 {
        value as f32 * self.scale
    }
}

/// Quantizes a weight slice symmetrically to INT4, returning the integers and
/// the shared parameters.
pub fn quantize_weights(weights: &[f32]) -> (Vec<i8>, QuantizationParams) {
    quantize_weights_bits(weights, INT4_BITS)
}

/// Quantizes an activation slice (clamped at zero) to unsigned INT4.
pub fn quantize_activations(activations: &[f32]) -> (Vec<u8>, QuantizationParams) {
    quantize_activations_bits(activations, INT4_BITS)
}

/// Quantizes a weight slice symmetrically to `bits` bits.
pub fn quantize_weights_bits(weights: &[f32], bits: u8) -> (Vec<i8>, QuantizationParams) {
    let params = QuantizationParams::symmetric_for_bits(weights, bits);
    let quantized = weights.iter().map(|&w| params.quantize_signed(w)).collect();
    (quantized, params)
}

/// Quantizes an activation slice (clamped at zero) to unsigned `bits` bits.
pub fn quantize_activations_bits(activations: &[f32], bits: u8) -> (Vec<u8>, QuantizationParams) {
    let mut quantized = Vec::with_capacity(activations.len());
    let params = quantize_activations_bits_into(activations, bits, &mut quantized);
    (quantized, params)
}

/// Quantizes an activation slice into a caller-provided buffer, reusing its
/// capacity — the allocation-free twin of [`quantize_activations_bits`]
/// used by the scratch-arena inference path.
pub fn quantize_activations_bits_into(
    activations: &[f32],
    bits: u8,
    out: &mut Vec<u8>,
) -> QuantizationParams {
    let params = QuantizationParams::unsigned_for_bits(activations, bits);
    out.clear();
    out.extend(activations.iter().map(|&a| params.quantize_unsigned(a)));
    params
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_quantization_round_trips_within_half_step() {
        let weights = [-0.9, -0.3, 0.0, 0.45, 0.9];
        let (quantized, params) = quantize_weights(&weights);
        assert_eq!(quantized.len(), weights.len());
        assert!(quantized.iter().all(|&q| (-7..=7).contains(&q)));
        for (&w, &q) in weights.iter().zip(quantized.iter()) {
            let reconstructed = params.dequantize(q as i32);
            assert!((reconstructed - w).abs() <= params.scale * 0.5 + 1e-6);
        }
        // The extreme value maps to the extreme code.
        assert_eq!(quantized[0], -7);
        assert_eq!(quantized[4], 7);
    }

    #[test]
    fn unsigned_quantization_clamps_negatives() {
        let activations = [-0.2, 0.0, 0.5, 1.0];
        let (quantized, params) = quantize_activations(&activations);
        assert_eq!(quantized[0], 0);
        assert_eq!(quantized[3], 15);
        assert!((params.dequantize(quantized[2] as i32) - 0.5).abs() < params.scale);
    }

    #[test]
    fn all_zero_input_uses_unit_scale() {
        let (quantized, params) = quantize_weights(&[0.0, 0.0]);
        assert_eq!(quantized, vec![0, 0]);
        assert_eq!(params.scale, 1.0);
        let (quantized, params) = quantize_activations(&[0.0]);
        assert_eq!(quantized, vec![0]);
        assert_eq!(params.scale, 1.0);
    }

    #[test]
    fn quantization_error_shrinks_for_narrow_ranges() {
        let wide = QuantizationParams::symmetric_for(&[-2.0, 2.0]);
        let narrow = QuantizationParams::symmetric_for(&[-0.1, 0.1]);
        assert!(narrow.scale < wide.scale);
    }

    #[test]
    fn width_limits_follow_the_bit_count() {
        assert_eq!(signed_max(4), INT4_SIGNED_MAX);
        assert_eq!(unsigned_max(4), INT4_UNSIGNED_MAX);
        assert_eq!(signed_max(8), 127);
        assert_eq!(unsigned_max(8), 255);
        assert_eq!(signed_max(1), 0);
        assert_eq!(unsigned_max(1), 1);
    }

    #[test]
    fn four_bit_entry_points_are_bit_identical_to_the_explicit_width() {
        let data = [-0.9, -0.3, 0.0, 0.45, 0.9, 1.7];
        let (q4, p4) = quantize_weights(&data);
        let (qb, pb) = quantize_weights_bits(&data, 4);
        assert_eq!(q4, qb);
        assert_eq!(p4.scale.to_bits(), pb.scale.to_bits());
        let (a4, ap4) = quantize_activations(&data);
        let (ab, apb) = quantize_activations_bits(&data, 4);
        assert_eq!(a4, ab);
        assert_eq!(ap4.scale.to_bits(), apb.scale.to_bits());
    }

    #[test]
    fn eight_bit_quantization_uses_the_wider_range() {
        let weights = [-1.0, 1.0, 0.5];
        let (quantized, params) = quantize_weights_bits(&weights, 8);
        assert_eq!(quantized[0], -127);
        assert_eq!(quantized[1], 127);
        assert!(params.scale < QuantizationParams::symmetric_for(&weights).scale);
        let activations = [0.0, 1.0, 0.25];
        let (quantized, _) = quantize_activations_bits(&activations, 8);
        assert_eq!(quantized[1], 255);
    }
}
