//! Loss functions and a simple SGD trainer.

use crate::data::Dataset;
use crate::error::DnnError;
use crate::multiplier::ProductTable;
use crate::network::Network;
use crate::quantized::QuantizedNetwork;
use crate::tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Deterministic per-epoch visit order of the training split.
///
/// The synthetic datasets store their samples grouped by class; per-sample
/// SGD over that order leaves the network biased towards the last class of
/// every epoch, so training must shuffle. A fixed seed mixed with the epoch
/// keeps runs reproducible.
fn epoch_order(samples: usize, epoch: usize) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0000 ^ epoch as u64);
    let mut order: Vec<usize> = (0..samples).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    order
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter()
        .map(|&e| e / sum.max(f32::MIN_POSITIVE))
        .collect()
}

/// Cross-entropy loss of `logits` against a class label, together with the
/// gradient of the loss with respect to the logits.
///
/// # Errors
///
/// Returns [`DnnError::InvalidLabel`] when the label is out of range.
pub fn cross_entropy_with_gradient(
    logits: &Tensor,
    label: usize,
) -> Result<(f32, Tensor), DnnError> {
    if label >= logits.len() {
        return Err(DnnError::InvalidLabel {
            label,
            classes: logits.len(),
        });
    }
    let probabilities = softmax(logits.data());
    let loss = -probabilities[label].max(1e-12).ln();
    let mut grad = probabilities;
    grad[label] -= 1.0;
    Ok((loss, Tensor::from_slice(&grad)))
}

/// Configuration of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Multiplicative learning-rate decay applied after every epoch.
    pub learning_rate_decay: f32,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            epochs: 10,
            learning_rate: 0.02,
            learning_rate_decay: 0.9,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Average cross-entropy loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy per epoch.
    pub epoch_accuracies: Vec<f64>,
}

impl TrainingHistory {
    /// Loss of the final epoch (`None` before any training).
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }
}

/// Plain stochastic-gradient-descent trainer.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainingConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainingConfig) -> Self {
        Trainer { config }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Trains `network` on `dataset`'s training split.
    ///
    /// # Errors
    ///
    /// Propagates forward/backward shape errors and invalid labels.
    pub fn train(
        &self,
        network: &mut Network,
        dataset: &Dataset,
    ) -> Result<TrainingHistory, DnnError> {
        self.run_epochs(network, dataset, |network, learning_rate| {
            network.apply_gradients(learning_rate)
        })
    }

    /// Trains only the final layer of `network` (transfer-learning head
    /// retraining): gradients are propagated but only the last layer's
    /// parameters are updated.
    ///
    /// # Errors
    ///
    /// Propagates forward/backward shape errors and invalid labels.
    pub fn train_head_only(
        &self,
        network: &mut Network,
        dataset: &Dataset,
    ) -> Result<TrainingHistory, DnnError> {
        self.run_epochs(network, dataset, |network, learning_rate| {
            // Only the head learns; everything else keeps its weights.
            let last = network.len() - 1;
            for (index, layer) in network.layers_mut().iter_mut().enumerate() {
                if index == last {
                    layer.apply_gradients(learning_rate);
                } else {
                    layer.zero_gradients();
                }
            }
        })
    }

    /// Noise-aware fine-tuning against a (possibly faulted) product table:
    /// each epoch re-quantises the float network through `products`, computes
    /// the loss from the *quantised* logits (so the head sees exactly the
    /// errors the deployed faulted multiplier makes) and back-propagates it
    /// through the float network with a straight-through estimator, updating
    /// only the head.  This is the standard recovery step for in-memory
    /// compute accelerators whose arrays degrade in the field: the backbone
    /// keeps its pre-trained features, the head learns around the fault
    /// pattern.
    ///
    /// # Errors
    ///
    /// Propagates quantisation, forward/backward shape and label errors.
    pub fn fine_tune_quantized(
        &self,
        network: &mut Network,
        dataset: &Dataset,
        products: &Arc<dyn ProductTable>,
    ) -> Result<TrainingHistory, DnnError> {
        let mut history = TrainingHistory::default();
        let mut learning_rate = self.config.learning_rate;
        let samples: Vec<(&Tensor, &usize)> = dataset.train_iter().collect();
        for epoch in 0..self.config.epochs {
            // Re-quantise once per epoch so the quantised view tracks the
            // head updates of the previous epoch.
            let quantized = QuantizedNetwork::from_network(network, Arc::clone(products))?;
            let mut losses = Vec::with_capacity(dataset.train_len());
            let mut correct = 0usize;
            for &index in &epoch_order(samples.len(), epoch) {
                let (image, label) = samples[index];
                let noisy_logits = quantized.forward(image)?;
                if noisy_logits.argmax() == Some(*label) {
                    correct += 1;
                }
                let (loss, grad) = cross_entropy_with_gradient(&noisy_logits, *label)?;
                losses.push(loss);
                // Straight-through estimator: the float forward populates the
                // layer caches, the gradient of the noisy loss flows back
                // through them, and only the head applies it.
                let _ = network.forward(image)?;
                network.backward(&grad)?;
                let last = network.len() - 1;
                for (layer_index, layer) in network.layers_mut().iter_mut().enumerate() {
                    if layer_index == last {
                        layer.apply_gradients(learning_rate);
                    } else {
                        layer.zero_gradients();
                    }
                }
            }
            history
                .epoch_losses
                .push(losses.iter().sum::<f32>() / losses.len().max(1) as f32);
            history
                .epoch_accuracies
                .push(correct as f64 / dataset.train_len().max(1) as f64);
            learning_rate *= self.config.learning_rate_decay;
        }
        Ok(history)
    }

    /// The shared SGD epoch loop; `apply` consumes the accumulated gradients
    /// after each sample's backward pass.
    fn run_epochs(
        &self,
        network: &mut Network,
        dataset: &Dataset,
        mut apply: impl FnMut(&mut Network, f32),
    ) -> Result<TrainingHistory, DnnError> {
        let mut history = TrainingHistory::default();
        let mut learning_rate = self.config.learning_rate;
        let samples: Vec<(&Tensor, &usize)> = dataset.train_iter().collect();
        for epoch in 0..self.config.epochs {
            let mut losses = Vec::with_capacity(dataset.train_len());
            let mut correct = 0usize;
            for &index in &epoch_order(samples.len(), epoch) {
                let (image, label) = samples[index];
                let logits = network.forward(image)?;
                if logits.argmax() == Some(*label) {
                    correct += 1;
                }
                let (loss, grad) = cross_entropy_with_gradient(&logits, *label)?;
                losses.push(loss);
                network.backward(&grad)?;
                apply(network, learning_rate);
            }
            history
                .epoch_losses
                .push(losses.iter().sum::<f32>() / losses.len().max(1) as f32);
            history
                .epoch_accuracies
                .push(correct as f64 / dataset.train_len().max(1) as f64);
            learning_rate *= self.config.learning_rate_decay;
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, SyntheticImageConfig};
    use crate::layers::{Dense, Flatten, Relu};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn softmax_normalises_and_orders() {
        let probabilities = softmax(&[1.0, 2.0, 3.0]);
        assert!((probabilities.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(probabilities[2] > probabilities[1]);
        assert!(probabilities[1] > probabilities[0]);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let logits = Tensor::from_slice(&[0.5, -0.2, 1.0]);
        let (loss, grad) = cross_entropy_with_gradient(&logits, 2).unwrap();
        assert!(loss > 0.0);
        assert!(grad.data().iter().sum::<f32>().abs() < 1e-6);
        assert!(grad.data()[2] < 0.0);
        assert!(cross_entropy_with_gradient(&logits, 5).is_err());
    }

    fn tiny_dataset() -> Dataset {
        Dataset::synthetic(SyntheticImageConfig {
            classes: 3,
            image_size: 6,
            channels: 1,
            train_per_class: 12,
            test_per_class: 4,
            noise_level: 0.1,
            seed: 7,
        })
    }

    fn mlp(classes: usize) -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        Network::new(vec![
            Box::new(Flatten::new()),
            Box::new(Dense::new(36, 24, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(24, classes, &mut rng)),
        ])
    }

    #[test]
    fn training_reduces_loss_and_reaches_good_accuracy() {
        let dataset = tiny_dataset();
        let mut network = mlp(3);
        let trainer = Trainer::new(TrainingConfig {
            epochs: 15,
            learning_rate: 0.05,
            learning_rate_decay: 0.95,
        });
        let history = trainer.train(&mut network, &dataset).unwrap();
        assert_eq!(history.epoch_losses.len(), 15);
        assert!(history.final_loss().unwrap() < history.epoch_losses[0]);
        assert!(
            *history.epoch_accuracies.last().unwrap() > 0.8,
            "training accuracy too low: {:?}",
            history.epoch_accuracies.last()
        );
    }

    #[test]
    fn noise_aware_fine_tuning_recovers_accuracy() {
        use crate::multiplier::ProductTable;
        use crate::quantized::QuantizedNetwork;
        use std::sync::Arc;

        /// A product table whose MSB weight column is stuck at zero — the
        /// kind of systematic error a defective array column produces.
        struct StuckMsbProducts;
        impl ProductTable for StuckMsbProducts {
            fn product(&self, a: u8, b: u8) -> u16 {
                (a & 0x7) as u16 * b as u16
            }
            fn name(&self) -> String {
                "stuck-msb".to_string()
            }
        }

        fn quantized_test_accuracy(network: &Network, products: &Arc<dyn ProductTable>) -> f64 {
            let quantized = QuantizedNetwork::from_network(network, Arc::clone(products)).unwrap();
            let dataset = tiny_dataset();
            let mut correct = 0usize;
            let mut total = 0usize;
            for (image, label) in dataset.test_iter() {
                if quantized.forward(image).unwrap().argmax() == Some(*label) {
                    correct += 1;
                }
                total += 1;
            }
            correct as f64 / total as f64
        }

        let dataset = tiny_dataset();
        let mut network = mlp(3);
        let trainer = Trainer::new(TrainingConfig {
            epochs: 12,
            learning_rate: 0.05,
            learning_rate_decay: 0.95,
        });
        trainer.train(&mut network, &dataset).unwrap();
        let faulted: Arc<dyn ProductTable> = Arc::new(StuckMsbProducts);
        let before = quantized_test_accuracy(&network, &faulted);

        // Capture backbone weights, fine-tune the head against the faulted
        // products, then measure again with the same faulted table.
        let backbone_before: Vec<f32> = network.layers()[1]
            .as_any()
            .downcast_ref::<Dense>()
            .unwrap()
            .weights()
            .to_vec();
        let tuner = Trainer::new(TrainingConfig {
            epochs: 6,
            learning_rate: 0.05,
            learning_rate_decay: 0.95,
        });
        let history = tuner
            .fine_tune_quantized(&mut network, &dataset, &faulted)
            .unwrap();
        assert_eq!(history.epoch_losses.len(), 6);
        let backbone_after: Vec<f32> = network.layers()[1]
            .as_any()
            .downcast_ref::<Dense>()
            .unwrap()
            .weights()
            .to_vec();
        assert_eq!(
            backbone_before, backbone_after,
            "fine-tuning must leave the backbone frozen"
        );
        let after = quantized_test_accuracy(&network, &faulted);
        assert!(
            after >= before,
            "fine-tuning must not hurt faulted accuracy: {before} -> {after}"
        );
    }

    #[test]
    fn head_only_training_leaves_backbone_untouched() {
        let dataset = tiny_dataset();
        let mut network = mlp(3);
        // Capture the first dense layer's weights before head training.
        let before: Vec<f32> = network.layers()[1]
            .as_any()
            .downcast_ref::<Dense>()
            .unwrap()
            .weights()
            .to_vec();
        let trainer = Trainer::new(TrainingConfig {
            epochs: 2,
            learning_rate: 0.05,
            learning_rate_decay: 1.0,
        });
        trainer.train_head_only(&mut network, &dataset).unwrap();
        let after: Vec<f32> = network.layers()[1]
            .as_any()
            .downcast_ref::<Dense>()
            .unwrap()
            .weights()
            .to_vec();
        assert_eq!(before, after, "backbone weights must stay frozen");
    }
}
