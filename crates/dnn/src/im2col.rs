//! im2col / col2im lowering for "same"-padded, stride-1 convolutions.
//!
//! [`im2col`] unrolls a `[C, H, W]` input into a patch matrix of shape
//! `[C·K·K, H·W]` (row `(c·K + ky)·K + kx`, column `y·W + x`), so that a
//! convolution becomes one dense GEMM `output = weights · cols` over
//! contiguous memory — the classic lowering that replaces the six-deep
//! scalar loop of a naive convolution.  Out-of-image taps are materialised
//! as the caller-supplied `zero` value, which keeps the GEMM branch-free;
//! the function is generic over the element type so the FLOAT32 (`f32`) and
//! INT4 (`u8`) inference paths share one implementation.
//!
//! [`col2im_add`] is the transpose scatter used by the convolution backward
//! pass: it accumulates a patch-matrix gradient back into image layout.
//!
//! Both functions copy whole `W`-row segments at a time (two slice bounds
//! per row, not one per element).

/// Unrolls `input` (`[channels, height, width]`, flat) into `cols`
/// (`[channels·kernel², height·width]`, flat), padding with `zero`.
///
/// `cols` is cleared and resized; its previous contents are discarded but
/// its allocation is reused, so a caller that keeps the buffer around pays
/// no per-call allocation.
///
/// # Panics
///
/// Panics when `input` is shorter than `channels·height·width`.
pub fn im2col<T: Copy>(
    input: &[T],
    zero: T,
    channels: usize,
    height: usize,
    width: usize,
    kernel: usize,
    cols: &mut Vec<T>,
) {
    let pad = kernel / 2;
    let hw = height * width;
    assert!(input.len() >= channels * hw, "input buffer too short");
    cols.clear();
    cols.resize(channels * kernel * kernel * hw, zero);
    for ic in 0..channels {
        let channel = &input[ic * hw..(ic + 1) * hw];
        for ky in 0..kernel {
            for kx in 0..kernel {
                let row_base = ((ic * kernel + ky) * kernel + kx) * hw;
                // Valid output columns x satisfy 0 <= x + kx - pad < width.
                let x_lo = (pad as isize - kx as isize).max(0) as usize;
                let x_hi =
                    (width as isize + pad as isize - kx as isize).clamp(0, width as isize) as usize;
                if x_lo >= x_hi {
                    continue;
                }
                let src_x = x_lo + kx - pad;
                for y in 0..height {
                    let iy = y as isize + ky as isize - pad as isize;
                    if iy < 0 || iy >= height as isize {
                        continue; // stays `zero`
                    }
                    let src = iy as usize * width + src_x;
                    let dst = row_base + y * width + x_lo;
                    cols[dst..dst + (x_hi - x_lo)]
                        .copy_from_slice(&channel[src..src + (x_hi - x_lo)]);
                }
            }
        }
    }
}

/// Accumulates a patch-matrix gradient (`[channels·kernel², height·width]`)
/// back into image layout (`[channels, height, width]`): the adjoint of
/// [`im2col`].  Out-of-image taps are dropped, matching the zero padding.
///
/// # Panics
///
/// Panics when the buffers are shorter than their implied sizes.
pub fn col2im_add(
    cols: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    kernel: usize,
    image: &mut [f32],
) {
    let pad = kernel / 2;
    let hw = height * width;
    assert!(
        cols.len() >= channels * kernel * kernel * hw,
        "cols too short"
    );
    assert!(image.len() >= channels * hw, "image buffer too short");
    for ic in 0..channels {
        let channel = &mut image[ic * hw..(ic + 1) * hw];
        for ky in 0..kernel {
            for kx in 0..kernel {
                let row_base = ((ic * kernel + ky) * kernel + kx) * hw;
                let x_lo = (pad as isize - kx as isize).max(0) as usize;
                let x_hi =
                    (width as isize + pad as isize - kx as isize).clamp(0, width as isize) as usize;
                if x_lo >= x_hi {
                    continue;
                }
                let src_x = x_lo + kx - pad;
                for y in 0..height {
                    let iy = y as isize + ky as isize - pad as isize;
                    if iy < 0 || iy >= height as isize {
                        continue;
                    }
                    let dst = iy as usize * width + src_x;
                    let src = row_base + y * width + x_lo;
                    for (image_value, col_value) in channel[dst..dst + (x_hi - x_lo)]
                        .iter_mut()
                        .zip(&cols[src..src + (x_hi - x_lo)])
                    {
                        *image_value += col_value;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference: cols[(c,ky,kx),(y,x)] = input[c, y+ky-pad, x+kx-pad].
    fn im2col_reference(
        input: &[f32],
        channels: usize,
        height: usize,
        width: usize,
        kernel: usize,
    ) -> Vec<f32> {
        let pad = kernel as isize / 2;
        let mut cols = vec![0.0; channels * kernel * kernel * height * width];
        for ic in 0..channels {
            for ky in 0..kernel {
                for kx in 0..kernel {
                    for y in 0..height {
                        for x in 0..width {
                            let iy = y as isize + ky as isize - pad;
                            let ix = x as isize + kx as isize - pad;
                            if iy < 0 || ix < 0 || iy >= height as isize || ix >= width as isize {
                                continue;
                            }
                            cols[(((ic * kernel + ky) * kernel + kx) * height + y) * width + x] =
                                input[(ic * height + iy as usize) * width + ix as usize];
                        }
                    }
                }
            }
        }
        cols
    }

    #[test]
    fn im2col_matches_the_scalar_reference() {
        for &(channels, height, width, kernel) in &[
            (1, 1, 1, 1),
            (1, 4, 4, 3),
            (2, 5, 3, 3),
            (3, 3, 3, 5),
            (2, 2, 7, 3),
        ] {
            let input: Vec<f32> = (0..channels * height * width)
                .map(|i| i as f32 + 1.0)
                .collect();
            let mut cols = Vec::new();
            im2col(&input, 0.0, channels, height, width, kernel, &mut cols);
            assert_eq!(
                cols,
                im2col_reference(&input, channels, height, width, kernel),
                "c={channels} h={height} w={width} k={kernel}"
            );
        }
    }

    #[test]
    fn col2im_is_the_adjoint_of_im2col() {
        // <im2col(x), g> == <x, col2im(g)> for any x, g.
        let (channels, height, width, kernel) = (2, 4, 3, 3);
        let x: Vec<f32> = (0..channels * height * width)
            .map(|i| (i as f32 * 0.37).sin())
            .collect();
        let g: Vec<f32> = (0..channels * kernel * kernel * height * width)
            .map(|i| (i as f32 * 0.11).cos())
            .collect();
        let mut cols = Vec::new();
        im2col(&x, 0.0, channels, height, width, kernel, &mut cols);
        let lhs: f64 = cols.iter().zip(&g).map(|(a, b)| (a * b) as f64).sum();
        let mut back = vec![0.0f32; channels * height * width];
        col2im_add(&g, channels, height, width, kernel, &mut back);
        let rhs: f64 = x.iter().zip(&back).map(|(a, b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn buffer_allocation_is_reused_across_calls() {
        let input = vec![1.0f32; 9];
        let mut cols = Vec::new();
        im2col(&input, 0.0, 1, 3, 3, 3, &mut cols);
        let capacity = cols.capacity();
        im2col(&input, 0.0, 1, 3, 3, 3, &mut cols);
        assert_eq!(cols.capacity(), capacity);
    }
}
