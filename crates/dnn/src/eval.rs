//! Accuracy evaluation: top-1 / top-5 classification accuracy.
//!
//! Both the FLOAT32 [`Network`] and the INT4 [`QuantizedNetwork`] implement
//! [`InferenceModel`], so the same evaluation loop produces every column of
//! the paper's Tables II and III.
//!
//! Dataset evaluation is embarrassingly parallel over images, so
//! [`evaluate_batched`] fans the test split out over
//! [`optima_core::sweep::par_map_sweep_with`] — the workspace's
//! error-strict, deterministic parallel sweep engine — with one prediction
//! per sweep item and one [`KernelScratch`] arena per worker thread.
//! Models implement the shared-reference [`BatchInferenceModel`] trait
//! (immutable `predict`, `Sync`), which is what lets every worker thread
//! read the same network without cloning it; predictions run through
//! [`BatchInferenceModel::predict_with`], so once each worker's arena has
//! warmed up, the steady state performs zero heap allocations per image
//! (pinned by the workspace's counting-allocator test).

use crate::data::Dataset;
use crate::error::DnnError;
use crate::network::Network;
use crate::quantized::QuantizedNetwork;
use crate::scratch::KernelScratch;
use crate::tensor::Tensor;
use optima_core::sweep::par_map_sweep_with;
use serde::{Deserialize, Serialize};

/// Anything that can classify one image.
pub trait InferenceModel {
    /// Produces class logits for one image.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    fn predict(&mut self, image: &Tensor) -> Result<Tensor, DnnError>;
}

impl InferenceModel for Network {
    fn predict(&mut self, image: &Tensor) -> Result<Tensor, DnnError> {
        self.forward(image)
    }
}

impl InferenceModel for QuantizedNetwork {
    fn predict(&mut self, image: &Tensor) -> Result<Tensor, DnnError> {
        self.forward(image)
    }
}

/// Anything that can classify one image through a shared reference, making
/// it usable from several evaluation threads at once.
pub trait BatchInferenceModel: Sync {
    /// Produces class logits for one image without mutating the model.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    fn predict(&self, image: &Tensor) -> Result<Tensor, DnnError>;

    /// Like [`BatchInferenceModel::predict`], but draws every intermediate
    /// buffer from the caller's scratch arena and returns the logits by
    /// reference into it (valid until the next call that borrows the same
    /// scratch).  Numerically identical to `predict`.  The default
    /// delegates to `predict` (allocating); the workspace networks
    /// override it with their zero-allocation steady-state paths.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    fn predict_with<'s>(
        &self,
        image: &Tensor,
        scratch: &'s mut KernelScratch,
    ) -> Result<&'s Tensor, DnnError> {
        let logits = self.predict(image)?;
        Ok(scratch.store_result(logits))
    }
}

impl BatchInferenceModel for Network {
    fn predict(&self, image: &Tensor) -> Result<Tensor, DnnError> {
        self.infer(image)
    }

    fn predict_with<'s>(
        &self,
        image: &Tensor,
        scratch: &'s mut KernelScratch,
    ) -> Result<&'s Tensor, DnnError> {
        self.infer_with(image, scratch)
    }
}

impl BatchInferenceModel for QuantizedNetwork {
    fn predict(&self, image: &Tensor) -> Result<Tensor, DnnError> {
        self.forward(image)
    }

    fn predict_with<'s>(
        &self,
        image: &Tensor,
        scratch: &'s mut KernelScratch,
    ) -> Result<&'s Tensor, DnnError> {
        self.forward_with(image, scratch)
    }
}

/// Result of evaluating a model on a dataset's test split.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Fraction of samples whose top prediction is the true class.
    pub top1: f64,
    /// Fraction of samples whose true class is among the five highest logits.
    pub top5: f64,
    /// Number of evaluated samples.
    pub samples: usize,
}

impl EvaluationReport {
    /// Top-1 accuracy in percent.
    pub fn top1_percent(&self) -> f64 {
        self.top1 * 100.0
    }

    /// Top-5 accuracy in percent.
    pub fn top5_percent(&self) -> f64 {
        self.top5 * 100.0
    }
}

/// Per-sample hit flags, reduced into an [`EvaluationReport`].
///
/// The top-5 check counts the elements ranking ahead of the label under
/// [`Tensor::top_k`]'s total order (descending [`f32::total_cmp`], ties
/// broken by ascending index) instead of materialising the top-5 index
/// vector — semantically identical (pinned by a test) but allocation-free,
/// which keeps the batched evaluator's steady state at zero allocations
/// per image.
fn score(logits: &Tensor, label: usize) -> (bool, bool) {
    let top1 = logits.argmax() == Some(label);
    let top5 = match logits.data().get(label) {
        None => false,
        Some(target) => {
            let ahead = logits
                .data()
                .iter()
                .enumerate()
                .filter(|&(i, v)| match v.total_cmp(target) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => i < label,
                    std::cmp::Ordering::Less => false,
                })
                .count();
            ahead < 5
        }
    };
    (top1, top5)
}

fn reduce(hits: impl IntoIterator<Item = (bool, bool)>) -> EvaluationReport {
    let mut top1_hits = 0usize;
    let mut top5_hits = 0usize;
    let mut samples = 0usize;
    for (top1, top5) in hits {
        top1_hits += usize::from(top1);
        top5_hits += usize::from(top5);
        samples += 1;
    }
    let denominator = samples.max(1) as f64;
    EvaluationReport {
        top1: top1_hits as f64 / denominator,
        top5: top5_hits as f64 / denominator,
        samples,
    }
}

/// Evaluates a model on the test split of `dataset`, one image at a time.
///
/// # Errors
///
/// Propagates inference errors.
pub fn evaluate(
    model: &mut dyn InferenceModel,
    dataset: &Dataset,
) -> Result<EvaluationReport, DnnError> {
    let mut hits = Vec::with_capacity(dataset.test_len());
    for (image, &label) in dataset.test_iter() {
        hits.push(score(&model.predict(image)?, label));
    }
    Ok(reduce(hits))
}

/// Evaluates a model on the test split of `dataset` with a per-image
/// parallel fan-out over [`optima_core::sweep::par_map_sweep_with`].
///
/// `threads = 0` selects the automatic thread count (the
/// `OPTIMA_SWEEP_THREADS` environment variable, then the machine's
/// available parallelism).  The sweep engine reassembles per-image results
/// in dataset order and fails on the lowest failing image index, so the
/// report is identical to [`evaluate`]'s at any thread count.  Each worker
/// thread owns one [`KernelScratch`] arena reused across its whole chunk of
/// images, so the steady state allocates nothing per image.
///
/// # Errors
///
/// Returns [`DnnError::EvaluationFailed`] naming the first (lowest) failing
/// image index, wrapping the underlying inference error.
pub fn evaluate_batched(
    model: &(impl BatchInferenceModel + ?Sized),
    dataset: &Dataset,
    threads: usize,
) -> Result<EvaluationReport, DnnError> {
    let samples: Vec<(&Tensor, usize)> = dataset
        .test_iter()
        .map(|(image, &label)| (image, label))
        .collect();
    let hits = par_map_sweep_with(
        &samples,
        threads,
        KernelScratch::new,
        |scratch, _, &(image, label)| {
            Ok::<_, DnnError>(score(model.predict_with(image, scratch)?, label))
        },
    )
    .map_err(|failure| DnnError::EvaluationFailed {
        image_index: failure.index,
        source: Box::new(failure.source),
    })?;
    Ok(reduce(hits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticImageConfig;
    use crate::layers::{Dense, Flatten, Relu};
    use crate::multiplier::ExactInt4Products;
    use crate::training::{Trainer, TrainingConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn trained_setup() -> (Network, Dataset) {
        let dataset = Dataset::synthetic(SyntheticImageConfig::tiny());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut network = Network::new(vec![
            Box::new(Flatten::new()),
            Box::new(Dense::new(64, 32, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(32, 3, &mut rng)),
        ]);
        Trainer::new(TrainingConfig {
            epochs: 12,
            learning_rate: 0.05,
            learning_rate_decay: 0.95,
        })
        .train(&mut network, &dataset)
        .unwrap();
        (network, dataset)
    }

    #[test]
    fn trained_network_beats_chance_and_top5_dominates_top1() {
        let (mut network, dataset) = trained_setup();
        let report = evaluate(&mut network, &dataset).unwrap();
        assert_eq!(report.samples, dataset.test_len());
        assert!(report.top1 > 0.5, "top-1 {} too low", report.top1);
        assert!(report.top5 >= report.top1);
        assert!((report.top1_percent() - report.top1 * 100.0).abs() < 1e-9);
        assert!((report.top5_percent() - report.top5 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn batched_evaluation_matches_the_serial_loop_at_any_thread_count() {
        let (mut network, dataset) = trained_setup();
        let serial = evaluate(&mut network, &dataset).unwrap();
        for threads in [1, 2, 3, 8] {
            let batched = evaluate_batched(&network, &dataset, threads).unwrap();
            assert_eq!(batched, serial, "threads = {threads}");
        }
        let quantized =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        let mut reference =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        assert_eq!(
            evaluate_batched(&quantized, &dataset, 4).unwrap(),
            evaluate(&mut reference, &dataset).unwrap()
        );
    }

    #[test]
    fn batched_evaluation_reports_inference_errors() {
        let dataset = Dataset::synthetic(SyntheticImageConfig::tiny());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        // Wrong input width: every image fails with a shape mismatch.
        let network = Network::new(vec![
            Box::new(Flatten::new()),
            Box::new(Dense::new(63, 3, &mut rng)),
        ]);
        assert!(evaluate_batched(&network, &dataset, 2).is_err());
    }

    #[test]
    fn quantized_network_evaluates_through_the_same_interface() {
        let (network, dataset) = trained_setup();
        let mut quantized =
            QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
        let report = evaluate(&mut quantized, &dataset).unwrap();
        assert!(report.top1 > 0.4, "quantized top-1 {} too low", report.top1);
    }

    #[test]
    fn score_rank_count_matches_the_top_k_semantics() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for case in 0..200 {
            let len = rng.gen_range(1..12usize);
            let mut data: Vec<f32> = (0..len)
                .map(|_| {
                    // Coarse values force frequent exact ties.
                    (rng.gen_range(-3i32..4) as f32) * 0.5
                })
                .collect();
            if case % 7 == 0 {
                let nan_at = rng.gen_range(0..len);
                data[nan_at] = f32::NAN;
            }
            let logits = Tensor::from_slice(&data);
            for label in 0..len {
                let (_, top5) = score(&logits, label);
                assert_eq!(
                    top5,
                    logits.top_k(5).contains(&label),
                    "case {case}, label {label}, data {data:?}"
                );
            }
            // An out-of-range label is never a hit.
            assert_eq!(score(&logits, len), (false, false));
        }
    }

    #[test]
    fn empty_test_split_yields_zero_accuracies() {
        let dataset = Dataset::synthetic(SyntheticImageConfig {
            test_per_class: 0,
            ..SyntheticImageConfig::tiny()
        });
        let (mut network, _) = trained_setup();
        let report = evaluate(&mut network, &dataset).unwrap();
        assert_eq!(report.samples, 0);
        assert_eq!(report.top1, 0.0);
    }
}
