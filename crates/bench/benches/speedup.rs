//! Criterion bench for the paper's Section V speed-up claim: evaluating one
//! discharge with the golden-reference circuit simulator vs. with the fitted
//! OPTIMA models.

use criterion::{criterion_group, criterion_main, Criterion};
use optima_bench::calibrated_models;
use optima_circuit::montecarlo::MismatchSample;
use optima_circuit::pvt::PvtConditions;
use optima_circuit::transient::{DischargeStimulus, TransientSimulator};
use optima_math::units::{Celsius, Seconds, Volts};
use std::hint::black_box;

fn bench_speedup(c: &mut Criterion) {
    let (technology, models) = calibrated_models(true);
    let simulator = TransientSimulator::new(technology.clone());
    let pvt = PvtConditions::nominal(&technology);
    let stimulus = DischargeStimulus {
        word_line_voltage: Volts(0.85),
        duration: Seconds(2e-9),
        time_steps: 400,
        ..DischargeStimulus::default()
    };

    let mut group = c.benchmark_group("speedup");
    group.sample_size(20);
    group.bench_function("circuit_transient_discharge", |b| {
        b.iter(|| {
            simulator
                .discharge_delta(black_box(&stimulus), &pvt, &MismatchSample::none())
                .unwrap()
        })
    });
    group.bench_function("optima_model_discharge", |b| {
        b.iter(|| {
            models
                .discharge(
                    black_box(Seconds(2e-9)),
                    Volts(0.85),
                    true,
                    Volts(1.0),
                    Celsius(25.0),
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
