//! Criterion benches for the DNN kernel rewrite: naive scalar loops vs. the
//! im2col + blocked-GEMM hot path, and per-product dynamic dispatch vs. the
//! flattened 256-entry product LUT.

use criterion::{criterion_group, criterion_main, Criterion};
use optima_bench::experiments::Profile;
use optima_bench::DynDispatchProducts;
use optima_dnn::layers::{Conv2d, Dense, Flatten, Layer, MaxPool2d, Relu};
use optima_dnn::multiplier::ExactInt4Products;
use optima_dnn::network::Network;
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::reference;
use optima_dnn::tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Arc;

/// Timed iterations per benchmark; `OPTIMA_PROFILE=fast` (CI) uses fewer.
fn samples() -> usize {
    if Profile::from_env().is_fast() {
        5
    } else {
        20
    }
}

fn conv_image(channels: usize, size: usize, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_vec(
        &[channels, size, size],
        (0..channels * size * size)
            .map(|_| rng.gen::<f32>())
            .collect(),
    )
    .unwrap()
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let conv = Conv2d::new(8, 16, 3, &mut rng);
    let image = conv_image(8, 16, 1);

    let mut group = c.benchmark_group("conv2d_forward_8to16_16x16_k3");
    group.sample_size(samples());
    group.bench_function("naive_scalar", |b| {
        b.iter(|| {
            reference::conv2d_forward(
                black_box(image.data()),
                8,
                16,
                16,
                conv.weights(),
                conv.bias(),
                16,
                3,
            )
        })
    });
    group.bench_function("im2col_gemm", |b| {
        b.iter(|| conv.infer(black_box(&image)).unwrap())
    });
    group.finish();
}

fn bench_dense_forward(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let dense = Dense::new(1024, 256, &mut rng);
    let input = conv_image(1, 32, 2).reshaped(&[1024]).unwrap();

    let mut group = c.benchmark_group("dense_forward_1024to256");
    group.sample_size(samples());
    group.bench_function("naive_scalar", |b| {
        b.iter(|| {
            reference::dense_forward(
                black_box(input.data()),
                dense.weights(),
                dense.bias(),
                1024,
                256,
            )
        })
    });
    group.bench_function("gemv", |b| {
        b.iter(|| dense.infer(black_box(&input)).unwrap())
    });
    group.finish();
}

fn bench_quantized_conv(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let network = Network::new(vec![
        Box::new(Conv2d::new(3, 8, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(8 * 8 * 8, 10, &mut rng)),
    ]);
    let lut = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
    let dyn_dispatch = QuantizedNetwork::from_network(
        &network,
        Arc::new(DynDispatchProducts(Arc::new(ExactInt4Products))),
    )
    .unwrap();
    assert!(lut.uses_snapshot());
    assert!(!dyn_dispatch.uses_snapshot());
    let image = conv_image(3, 16, 3);

    let mut group = c.benchmark_group("quantized_forward_3to8_16x16");
    group.sample_size(samples());
    group.bench_function("dyn_dispatch", |b| {
        b.iter(|| dyn_dispatch.forward(black_box(&image)).unwrap())
    });
    group.bench_function("flat_lut", |b| {
        b.iter(|| lut.forward(black_box(&image)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_conv_forward,
    bench_dense_forward,
    bench_quantized_conv
);
criterion_main!(benches);
