//! Criterion bench for the design-space exploration: one multiplier
//! evaluation over the full 16×16 input space and one small-grid exploration.

use criterion::{criterion_group, criterion_main, Criterion};
use optima_bench::calibrated_models;
use optima_circuit::array::ArrayConfig;
use optima_imc::dse::{DesignPoint, DesignSpace, DesignSpaceExplorer};
use optima_imc::metrics::evaluate_multiplier;
use optima_imc::multiplier::{InSramMultiplier, MultiplierConfig};
use optima_math::units::{Seconds, Volts};
use std::hint::black_box;

fn bench_dse(c: &mut Criterion) {
    let (_technology, models) = calibrated_models(true);
    let multiplier = InSramMultiplier::new(models.clone(), MultiplierConfig::paper_fom_corner())
        .expect("corner configuration is valid");
    let explorer = DesignSpaceExplorer::new(models).with_threads(2);

    let mut group = c.benchmark_group("dse");
    group.sample_size(20);
    group.bench_function("single_multiplication", |b| {
        b.iter(|| multiplier.multiply(black_box(11), black_box(13)).unwrap())
    });
    group.bench_function("full_input_space_metrics", |b| {
        b.iter(|| evaluate_multiplier(black_box(&multiplier)).unwrap())
    });
    group.bench_function("evaluate_design_point", |b| {
        b.iter(|| {
            explorer
                .evaluate_point(black_box(DesignPoint {
                    tau0: Seconds(0.16e-9),
                    vdac_zero: Volts(0.3),
                    vdac_full_scale: Volts(1.0),
                    array: ArrayConfig::default(),
                }))
                .unwrap()
        })
    });
    group.bench_function("explore_small_space", |b| {
        b.iter(|| explorer.explore(black_box(&DesignSpace::small())).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
