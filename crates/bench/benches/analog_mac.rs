//! Criterion benches for the batched analog evaluation layer: multiplier
//! table construction and PVT corner sweeps, scalar per-pair path vs. the
//! batched analog-grid path (which is bit-identical by construction — see
//! the property tests in `tests/properties.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use optima_bench::experiments::Profile;
use optima_core::model::discharge::DischargeModel;
use optima_core::model::energy::{DischargeEnergyModel, WriteEnergyModel};
use optima_core::model::mismatch::MismatchSigmaModel;
use optima_core::model::suite::ModelSuite;
use optima_core::model::supply::SupplyModel;
use optima_core::model::temperature::TemperatureModel;
use optima_imc::metrics::{evaluate_multiplier_at, evaluate_multiplier_at_scalar};
use optima_imc::multiplier::{InSramMultiplier, MultiplierConfig, MultiplierTable, OperatingPoint};
use optima_math::units::{Celsius, Seconds, Volts};
use optima_math::Polynomial;
use std::hint::black_box;

/// Timed iterations per benchmark; `OPTIMA_PROFILE=fast` (CI) uses fewer.
fn samples() -> usize {
    if Profile::from_env().is_fast() {
        5
    } else {
        20
    }
}

/// A PVT-sensitive analytic suite (no calibration needed, so the bench
/// isolates the evaluation path itself).
fn suite() -> ModelSuite {
    ModelSuite::new(
        DischargeModel::new(
            Volts(1.0),
            Volts(0.45),
            Polynomial::new(vec![0.0, -0.25, 0.02, -0.003]),
            Polynomial::new(vec![0.0, 1.0, -0.05]),
            (0.0, 3.0),
            (0.0, 1.1),
        ),
        SupplyModel::new(Volts(1.0), Polynomial::new(vec![1.0, 0.6]), (0.9, 1.1)),
        TemperatureModel::new(Celsius(25.0), Polynomial::new(vec![1e-4]), (-40.0, 125.0)),
        MismatchSigmaModel::new(
            Polynomial::new(vec![0.0, 1.5e-3]),
            Polynomial::new(vec![0.0, 1.0]),
        ),
        WriteEnergyModel::new(
            Polynomial::new(vec![0.0, 0.0, 11.0]),
            Polynomial::new(vec![1.0, 4e-4]),
        ),
        DischargeEnergyModel::new(
            Polynomial::new(vec![0.0, 1.0]),
            Polynomial::new(vec![0.0, 45.0]),
            Polynomial::new(vec![1.0, 3e-4]),
        ),
    )
}

fn multiplier() -> InSramMultiplier {
    InSramMultiplier::new(
        suite(),
        MultiplierConfig::new(Seconds(0.16e-9), Volts(0.45), Volts(1.0)),
    )
    .expect("configuration is valid")
}

fn bench_table_build(c: &mut Criterion) {
    let multiplier = multiplier();
    let at = multiplier.nominal_operating_point();

    let mut group = c.benchmark_group("multiplier_table_build");
    group.sample_size(samples());
    group.bench_function("scalar_per_pair", |b| {
        b.iter(|| MultiplierTable::from_multiplier_scalar(black_box(&multiplier), at).unwrap())
    });
    group.bench_function("batched_analog_grid", |b| {
        b.iter(|| MultiplierTable::from_multiplier(black_box(&multiplier), at).unwrap())
    });
    group.finish();
}

fn bench_corner_sweep(c: &mut Criterion) {
    let multiplier = multiplier();
    // A small PVT corner sweep: 3 supplies × 3 temperatures, full 16×16
    // input space per corner (the Fig. 8 inner loop shape).
    let corners: Vec<OperatingPoint> = [0.95, 1.0, 1.05]
        .iter()
        .flat_map(|&vdd| {
            [0.0, 25.0, 60.0].iter().map(move |&t| OperatingPoint {
                vdd: Volts(vdd),
                temperature: Celsius(t),
            })
        })
        .collect();

    let mut group = c.benchmark_group("pvt_corner_sweep_9_corners");
    group.sample_size(samples());
    group.bench_function("scalar_per_pair", |b| {
        b.iter(|| {
            for &at in &corners {
                black_box(evaluate_multiplier_at_scalar(&multiplier, at).unwrap());
            }
        })
    });
    group.bench_function("batched_analog_grid", |b| {
        b.iter(|| {
            for &at in &corners {
                black_box(evaluate_multiplier_at(&multiplier, at).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table_build, bench_corner_sweep);
criterion_main!(benches);
