//! Criterion bench for the OPTIMA model primitives: one bit-line voltage
//! evaluation, one mismatch σ lookup and one full calibration on the fast grid.

use criterion::{criterion_group, criterion_main, Criterion};
use optima_bench::calibrated_models;
use optima_circuit::technology::Technology;
use optima_core::calibration::{CalibrationConfig, Calibrator};
use optima_math::units::{Celsius, Seconds, Volts};
use std::hint::black_box;

fn bench_model_eval(c: &mut Criterion) {
    let (_technology, models) = calibrated_models(true);

    let mut group = c.benchmark_group("model_eval");
    group.sample_size(30);
    group.bench_function("bitline_voltage", |b| {
        b.iter(|| {
            models.bitline_voltage_unchecked(
                black_box(Seconds(1.2e-9)),
                Volts(0.8),
                Volts(1.0),
                Celsius(25.0),
            )
        })
    });
    group.bench_function("mismatch_sigma", |b| {
        b.iter(|| models.mismatch_sigma(black_box(Seconds(1.2e-9)), Volts(0.8)))
    });
    group.bench_function("write_plus_discharge_energy", |b| {
        b.iter(|| models.operation_energy(black_box(Volts(0.25)), Volts(1.0), Celsius(25.0)))
    });
    group.finish();

    let mut calibration_group = c.benchmark_group("calibration");
    calibration_group.sample_size(10);
    calibration_group.bench_function("fast_grid_full_calibration", |b| {
        b.iter(|| {
            Calibrator::new(Technology::tsmc65_like(), CalibrationConfig::fast())
                .run()
                .unwrap()
        })
    });
    calibration_group.finish();
}

criterion_group!(benches, bench_model_eval);
criterion_main!(benches);
