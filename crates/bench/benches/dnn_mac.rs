//! Criterion bench for the DNN substrate: FLOAT32 inference vs. INT4
//! inference through the exact and in-SRAM product tables.

use criterion::{criterion_group, criterion_main, Criterion};
use optima_bench::calibrated_models;
use optima_dnn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use optima_dnn::multiplier::{ExactInt4Products, InMemoryProducts};
use optima_dnn::network::Network;
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::tensor::Tensor;
use optima_imc::multiplier::{InSramMultiplier, MultiplierConfig, MultiplierTable};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Arc;

fn small_cnn() -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    Network::new(vec![
        Box::new(Conv2d::new(3, 8, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(8 * 8 * 8, 10, &mut rng)),
    ])
}

fn bench_dnn_mac(c: &mut Criterion) {
    let (_technology, models) = calibrated_models(true);
    let mut float_network = small_cnn();
    let exact_quantized =
        QuantizedNetwork::from_network(&small_cnn(), Arc::new(ExactInt4Products)).unwrap();
    let fom_multiplier =
        InSramMultiplier::new(models, MultiplierConfig::paper_fom_corner()).unwrap();
    let fom_table =
        MultiplierTable::from_multiplier(&fom_multiplier, fom_multiplier.nominal_operating_point())
            .unwrap();
    let fom_quantized = QuantizedNetwork::from_network(
        &small_cnn(),
        Arc::new(InMemoryProducts::new(fom_table, "fom")),
    )
    .unwrap();
    let image = Tensor::from_vec(
        &[3, 16, 16],
        (0..3 * 16 * 16).map(|i| (i % 11) as f32 / 11.0).collect(),
    )
    .unwrap();

    let mut group = c.benchmark_group("dnn_inference");
    group.sample_size(20);
    group.bench_function("float32_forward", |b| {
        b.iter(|| float_network.forward(black_box(&image)).unwrap())
    });
    group.bench_function("int4_exact_forward", |b| {
        b.iter(|| exact_quantized.forward(black_box(&image)).unwrap())
    });
    group.bench_function("int4_in_memory_fom_forward", |b| {
        b.iter(|| fom_quantized.forward(black_box(&image)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_dnn_mac);
criterion_main!(benches);
