//! Table I — selected design corners.
//!
//! Explores the 48-corner design space, computes the figure of merit
//! (Eq. 9) and selects the *fom*, *power* and *variation* corners, printing
//! their parameters, ϵ_mul and E_mul next to the paper's values.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_imc::dse::{DesignSpace, DesignSpaceExplorer};
use optima_imc::fom::select_corners;
use optima_imc::pareto::pareto_front;

pub struct Table1Corners;

impl Experiment for Table1Corners {
    fn name(&self) -> &'static str {
        "table1_corners"
    }

    fn description(&self) -> &'static str {
        "Figure-of-merit corner selection over the 48-corner design space, plus the Pareto front"
    }

    fn paper_ref(&self) -> &'static str {
        "Table I"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let models = ctx.models();
        let explorer = DesignSpaceExplorer::new(models).with_threads(ctx.threads());
        let results = explorer.explore(&DesignSpace::paper_sweep())?;
        let selected = select_corners(&results)?;
        let mut report = Report::new();

        report
            .heading(1, "Table I — selected design corners")
            .blank();
        let mut table = Table::new(vec![
            Column::plain("Corner"),
            Column::unit("tau0", "ns"),
            Column::unit("V_DAC,0", "V"),
            Column::unit("V_DAC,FS", "V"),
            Column::unit("eps_mul", "LSB"),
            Column::unit("E_mul", "fJ"),
            Column::unit("sigma@max", "mV"),
            Column::plain("FOM"),
        ]);
        for (name, corner) in [
            ("fom", &selected.fom),
            ("power", &selected.power),
            ("variation", &selected.variation),
        ] {
            table.push_row(vec![
                Scalar::text(name),
                Scalar::Float(corner.point.tau0.0 * 1e9, 2),
                Scalar::Float(corner.point.vdac_zero.0, 1),
                Scalar::Float(corner.point.vdac_full_scale.0, 1),
                Scalar::Float(corner.metrics.epsilon_mul, 2),
                Scalar::Float(corner.metrics.energy_per_multiply.0, 1),
                Scalar::Float(corner.metrics.sigma_at_max_discharge.0 * 1e3, 2),
                Scalar::Float(corner.metrics.figure_of_merit(), 4),
            ]);
        }
        report.table(table);

        report.blank().note("Paper values for reference:");
        let mut paper = Table::new(vec![
            Column::plain("Corner"),
            Column::unit("tau0", "ns"),
            Column::unit("V_DAC,0", "V"),
            Column::unit("V_DAC,FS", "V"),
            Column::plain("eps_mul"),
            Column::plain("E_mul"),
        ]);
        for row in [
            ["fom", "0.16", "0.3", "1.0", "4.78", "44 fJ"],
            ["power", "0.16", "0.3", "0.7", "15", "37 fJ"],
            ["variation", "0.24", "0.4", "1.0", "9.6", "69.8 fJ"],
        ] {
            paper.push_row(row.iter().map(|cell| Scalar::text(*cell)).collect());
        }
        report.table(paper);

        let front = pareto_front(&results);
        report.blank().metric_line(
            "pareto_front_size",
            Scalar::Int(front.len() as i64),
            None,
            format!(
                "Pareto-optimal corners over (energy, error): {} of {}",
                front.len(),
                results.len()
            ),
        );
        let mut pareto = Table::new(vec![
            Column::unit("tau0", "ns"),
            Column::unit("V_DAC,0", "V"),
            Column::unit("V_DAC,FS", "V"),
            Column::unit("eps_mul", "LSB"),
            Column::unit("E_mul", "fJ"),
        ]);
        for corner in &front {
            pareto.push_row(vec![
                Scalar::Float(corner.point.tau0.0 * 1e9, 2),
                Scalar::Float(corner.point.vdac_zero.0, 1),
                Scalar::Float(corner.point.vdac_full_scale.0, 1),
                Scalar::Float(corner.metrics.epsilon_mul, 2),
                Scalar::Float(corner.metrics.energy_per_multiply.0, 1),
            ]);
        }
        report.table(pareto);
        Ok(report)
    }
}
