//! Table II — DNN classification accuracies (ImageNet experiment, scaled).
//!
//! The paper evaluates INT4-quantized VGG16/19 and ResNet50/101 on ImageNet
//! with the three in-SRAM multiplier corners.  Pre-trained Keras models and
//! ImageNet itself are not reproducible here, so scaled-down style-faithful
//! analogues are trained on a synthetic many-class dataset and then evaluated
//! with exactly the same multiplier-substitution pipeline (see DESIGN.md).
//! The quantity to compare against the paper is the *ordering and relative
//! degradation*: FLOAT32 ≈ INT4 ≈ fom > power ≫ variation.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_dnn::data::{Dataset, SyntheticImageConfig};
use optima_dnn::eval::evaluate_batched;
use optima_dnn::models::{build_model, ModelKind};
use optima_dnn::multiplier::{ExactInt4Products, InMemoryProducts, ProductTable};
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::training::{Trainer, TrainingConfig};
use optima_imc::multiplier::{InSramMultiplier, MultiplierTable};
use std::sync::Arc;

/// The named product tables evaluated by Tables II/III.
pub(super) type NamedProductTables = Vec<(String, Arc<dyn ProductTable>)>;

/// Builds the FLOAT32-reference product-table matrix of Tables II/III:
/// exact INT4 plus one in-memory table per Table I corner.
pub(super) fn corner_product_tables(
    ctx: &mut ExperimentContext,
) -> Result<NamedProductTables, BenchError> {
    let models = ctx.models();
    let mut product_tables: NamedProductTables =
        vec![("INT4".to_string(), Arc::new(ExactInt4Products))];
    for (name, config) in crate::paper_corners() {
        let multiplier = InSramMultiplier::new(models.clone(), config)?;
        let table =
            MultiplierTable::from_multiplier(&multiplier, multiplier.nominal_operating_point())?;
        product_tables.push((
            name.to_string(),
            Arc::new(InMemoryProducts::new(table, name)),
        ));
    }
    Ok(product_tables)
}

pub struct Table2Imagenet;

impl Experiment for Table2Imagenet {
    fn name(&self) -> &'static str {
        "table2_imagenet"
    }

    fn description(&self) -> &'static str {
        "DNN accuracies on the synthetic ImageNet stand-in across the multiplier corners"
    }

    fn paper_ref(&self) -> &'static str {
        "Table II"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let quick = ctx.is_fast();
        let product_tables = corner_product_tables(ctx)?;

        // Synthetic stand-in for ImageNet.
        let dataset_config = if quick {
            SyntheticImageConfig {
                classes: 8,
                train_per_class: 12,
                test_per_class: 5,
                ..SyntheticImageConfig::imagenet_like()
            }
        } else {
            SyntheticImageConfig::imagenet_like()
        };
        let dataset = Dataset::synthetic(dataset_config);
        let trainer = Trainer::new(TrainingConfig {
            epochs: if quick { 3 } else { 8 },
            learning_rate: 0.02,
            learning_rate_decay: 0.9,
        });

        let mut report = Report::new();
        report
            .heading(
                1,
                "Table II — classification accuracies (synthetic ImageNet stand-in)",
            )
            .blank()
            .note(format!(
                "{} classes, {} training / {} test samples, {}x{} RGB-like images",
                dataset.classes(),
                dataset.train_len(),
                dataset.test_len(),
                dataset.image_shape()[1],
                dataset.image_shape()[2]
            ))
            .blank();
        let mut table = Table::new(vec![
            Column::plain("Model"),
            Column::unit("Multiplications", "x10^6"),
            Column::unit("FLOAT32 top-1 / top-5", "%"),
            Column::unit("INT4 top-1 / top-5", "%"),
            Column::unit("fom top-1 / top-5", "%"),
            Column::unit("power top-1 / top-5", "%"),
            Column::unit("variation top-1 / top-5", "%"),
        ]);

        for kind in ModelKind::ALL {
            let shape = dataset.image_shape().to_vec();
            let mut network = build_model(kind, shape[0], shape[1], dataset.classes(), ctx.seed());
            trainer.train(&mut network, &dataset)?;

            let multiplications =
                network.multiplications(&shape)? as f64 * dataset.test_len() as f64 / 1.0e6;

            // Per-image parallel fan-out over the sweep engine.
            let float_report = evaluate_batched(&network, &dataset, ctx.threads())?;
            let mut cells = vec![
                Scalar::text(kind.to_string()),
                Scalar::Float(multiplications, 2),
                Scalar::text(format!(
                    "{:.1} / {:.1}",
                    float_report.top1_percent(),
                    float_report.top5_percent()
                )),
            ];
            for (_, products) in &product_tables {
                let quantized = QuantizedNetwork::from_network(&network, products.clone())?;
                let eval = evaluate_batched(&quantized, &dataset, ctx.threads())?;
                cells.push(Scalar::text(format!(
                    "{:.1} / {:.1}",
                    eval.top1_percent(),
                    eval.top5_percent()
                )));
            }
            table.push_row(cells);
        }
        report.table(table);

        report
            .blank()
            .note("Paper (full-scale ImageNet) for comparison: FLOAT32 top-1 70.3-76.4 %,")
            .note("INT4 69.3-75.1 %, fom within 0.2 % of INT4, power 59.8-64.5 %, variation 36.7-48.5 %.");
        Ok(report)
    }
}
