//! Calibration-snapshot smoke check: save → load must round-trip
//! bit-exactly, and the integrity gates (schema version, technology
//! fingerprint) must reject tampered files.
//!
//! Run by CI after the test suite; any violation is a [`BenchError`], so a
//! broken snapshot format can never silently ship.  Always uses the fast
//! calibration grid — the check exercises the snapshot format, not the
//! model fidelity.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Report, Scalar};
use optima_circuit::array::ArrayConfig;
use optima_circuit::technology::Technology;
use optima_core::calibration::{CalibrationConfig, Calibrator};
use optima_core::snapshot;
use optima_core::ModelError;
use optima_math::units::Volts;
use std::time::Instant;

pub struct SnapshotRoundtrip;

impl Experiment for SnapshotRoundtrip {
    fn name(&self) -> &'static str {
        "snapshot_roundtrip"
    }

    fn description(&self) -> &'static str {
        "Calibration-snapshot round-trip and integrity-gate smoke check"
    }

    fn paper_ref(&self) -> &'static str {
        "infrastructure"
    }

    fn run(&self, _ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let technology = Technology::tsmc65_like();
        let config = CalibrationConfig::fast();

        let calibrate_start = Instant::now();
        let outcome = Calibrator::new(technology.clone(), config.clone()).run()?;
        let calibrate_seconds = calibrate_start.elapsed().as_secs_f64();

        let dir =
            std::env::temp_dir().join(format!("optima-snapshot-smoke-{}", std::process::id()));
        // The gates below return early on violation; clean the scratch
        // directory up on every exit path, not just success.
        let result = Self::check_gates(&dir, &outcome, &technology, &config, calibrate_seconds);
        std::fs::remove_dir_all(&dir).ok();
        result
    }
}

impl SnapshotRoundtrip {
    fn check_gates(
        dir: &std::path::Path,
        outcome: &optima_core::calibration::CalibrationOutcome,
        technology: &Technology,
        config: &CalibrationConfig,
        calibrate_seconds: f64,
    ) -> Result<Report, BenchError> {
        let path = dir.join("calibration-fast.v1.snap");
        let array = ArrayConfig::default();

        snapshot::save(&path, outcome, technology, config, &array)?;
        let load_start = Instant::now();
        let loaded = snapshot::load(&path, technology, config, &array)?;
        let load_seconds = load_start.elapsed().as_secs_f64();
        if *outcome != loaded {
            return Err(BenchError::Failed(
                "snapshot round trip must be bit-exact".to_string(),
            ));
        }

        // Integrity gates: a different technology must be rejected...
        let mut other_tech = technology.clone();
        other_tech.nmos_vth = Volts(other_tech.nmos_vth.0 + 0.01);
        match snapshot::load(&path, &other_tech, config, &array) {
            Err(ModelError::SnapshotFingerprintMismatch { .. }) => {}
            other => {
                return Err(BenchError::Failed(format!(
                    "expected a technology-fingerprint rejection, got {other:?}"
                )))
            }
        }
        // ...and so must a different calibration grid...
        match snapshot::load(&path, technology, &CalibrationConfig::default(), &array) {
            Err(ModelError::SnapshotFingerprintMismatch { .. }) => {}
            other => {
                return Err(BenchError::Failed(format!(
                    "expected a config-fingerprint rejection, got {other:?}"
                )))
            }
        }
        // ...and so must a different array geometry: a stale 16×4 snapshot
        // must never silently serve an INT8 run.
        match snapshot::load(&path, technology, config, &ArrayConfig::int8()) {
            Err(ModelError::SnapshotFingerprintMismatch { .. }) => {}
            other => {
                return Err(BenchError::Failed(format!(
                    "expected a geometry-fingerprint rejection, got {other:?}"
                )))
            }
        }
        // A truncated file is corruption, not a mis-parse.
        let body = std::fs::read_to_string(&path).map_err(|source| BenchError::Io {
            path: path.display().to_string(),
            source,
        })?;
        let truncated = dir.join("truncated.snap");
        std::fs::write(&truncated, &body[..body.len() / 2]).map_err(|source| BenchError::Io {
            path: truncated.display().to_string(),
            source,
        })?;
        match snapshot::load(&truncated, technology, config, &array) {
            Err(ModelError::SnapshotCorrupt { .. }) => {}
            other => {
                return Err(BenchError::Failed(format!(
                    "expected a corruption rejection, got {other:?}"
                )))
            }
        }

        let mut report = Report::new();
        report
            .note("calibration snapshot round trip OK (bit-exact)")
            .metric_line(
                "calibrate_seconds",
                Scalar::Float(calibrate_seconds, 3),
                Some("s"),
                format!("  calibrate: {calibrate_seconds:.3} s"),
            )
            .metric_line(
                "load_seconds",
                Scalar::Float(load_seconds, 6),
                Some("s"),
                format!(
                    "  load:      {load_seconds:.6} s  ({:.0}x faster)",
                    calibrate_seconds / load_seconds.max(1e-9)
                ),
            )
            .note(
                "  rejected: wrong technology, wrong config grid, wrong geometry, truncated file",
            );
        Ok(report)
    }
}
