//! Ablation — linear vs. square-root pre-distorted word-line DAC.
//!
//! Section III-1 of the paper notes that the quadratic device current makes a
//! conventional (linear) DAC produce nonlinear multiplication results and
//! mentions the nonlinear DAC of ref. [15] as a potential fix.  This ablation
//! quantifies that effect with the OPTIMA models.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_circuit::dac::DacTransfer;
use optima_imc::metrics::evaluate_multiplier;
use optima_imc::multiplier::InSramMultiplier;

pub struct AblationDac;

impl Experiment for AblationDac {
    fn name(&self) -> &'static str {
        "ablation_dac"
    }

    fn description(&self) -> &'static str {
        "Linear vs. square-root pre-distorted word-line DAC across the Table I corners"
    }

    fn paper_ref(&self) -> &'static str {
        "ablation (Sec. III-1)"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let models = ctx.models();
        let mut report = Report::new();
        report
            .heading(1, "Ablation — DAC transfer curve vs. multiplier accuracy")
            .blank();
        let mut table = Table::new(vec![
            Column::plain("Corner"),
            Column::plain("DAC transfer"),
            Column::unit("eps_mul", "LSB"),
            Column::unit("max error", "LSB"),
            Column::unit("E_mul", "fJ"),
        ]);
        for (name, config) in crate::paper_corners() {
            for (label, transfer) in [
                ("linear", DacTransfer::Linear),
                ("sqrt pre-distortion", DacTransfer::SquareRootPredistortion),
            ] {
                let multiplier =
                    InSramMultiplier::new(models.clone(), config.with_dac_transfer(transfer))?;
                let metrics = evaluate_multiplier(&multiplier)?;
                table.push_row(vec![
                    Scalar::text(name),
                    Scalar::text(label),
                    Scalar::Float(metrics.epsilon_mul, 2),
                    Scalar::Float(metrics.max_error_lsb, 1),
                    Scalar::Float(metrics.energy_per_multiply.0, 1),
                ]);
            }
        }
        report.table(table);
        report
            .blank()
            .note("The square-root pre-distortion linearises the quadratic device current and")
            .note("reduces the multiplication error, at the cost of a harder DAC implementation")
            .note("(which is why the paper's main flow keeps the linear DAC).");
        Ok(report)
    }
}
