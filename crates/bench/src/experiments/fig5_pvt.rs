//! Fig. 5 — influence of PVT variations on the BLB discharge.
//!
//! (a) supply voltage, (b) temperature, (c) process corners,
//! (d) transistor mismatch (Monte Carlo).
//!
//! All four sweeps run on the error-strict parallel engine of
//! [`optima_core::sweep`]; a failing condition aborts the run naming the
//! condition instead of silently thinning the tables.  The deterministic
//! waveform tables (a–c) query the golden simulator through the unified
//! [`DischargeBackend`] interface — the same interface the fitted models
//! implement — while the mismatch panel (d) uses the simulator's
//! Monte-Carlo entry point, which deliberately sits below the interface.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_circuit::montecarlo::MismatchModel;
use optima_circuit::prelude::*;
use optima_core::backend::DischargeBackend;
use optima_core::sweep::par_map_sweep;
use optima_core::ModelError;
use optima_math::stats;

/// Offset from the context's base seed to the mismatch-sampling stream
/// (base seed 42 reproduces the historical seed 51).
const MISMATCH_SEED_OFFSET: u64 = 9;

fn stimulus(v_wl: f64, steps: usize) -> DischargeStimulus {
    DischargeStimulus {
        word_line_voltage: Volts(v_wl),
        duration: Seconds(2e-9),
        time_steps: steps,
        ..DischargeStimulus::default()
    }
}

pub struct Fig5Pvt;

impl Experiment for Fig5Pvt {
    fn name(&self) -> &'static str {
        "fig5_pvt"
    }

    fn description(&self) -> &'static str {
        "PVT and mismatch influence on the BLB discharge (supply, temperature, corners, MC)"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 5"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let tech = Technology::tsmc65_like();
        let sim = TransientSimulator::new(tech.clone());
        let nominal = PvtConditions::nominal(&tech);
        let steps = if ctx.is_fast() { 100 } else { 400 };
        let mc_samples = if ctx.is_fast() { 100 } else { 1000 };
        let threads = ctx.threads();
        let v_wl = 0.85;
        let sample_times = [
            Seconds(0.5e-9),
            Seconds(1.0e-9),
            Seconds(1.5e-9),
            Seconds(2.0e-9),
        ];
        let mut report = Report::new();
        report.note(format!(
            "(sweep engine: {} worker threads, results deterministic at any count; \
             waveforms via the '{}' discharge backend)",
            ctx.effective_threads(),
            sim.backend_name()
        ));

        let waveform_table = |rows: &[Vec<f64>], columns: Vec<Column>| {
            let mut table = Table::new(columns);
            for (i, &t) in sample_times.iter().enumerate() {
                let mut row = vec![Scalar::Float(t.0 * 1e9, 1)];
                for column in rows {
                    row.push(Scalar::Float(column[i], 4));
                }
                table.push_row(row);
            }
            table
        };

        report
            .blank()
            .heading(
                1,
                format!("Fig. 5a — supply voltage (V_BL [V] at V_WL = {v_wl} V)"),
            )
            .blank();
        let supply_points = [0.9, 1.0, 1.1];
        let supply_rows = par_map_sweep(&supply_points, threads, |_, &vdd| {
            sim.bitline_voltages(
                &stimulus(v_wl, steps),
                &nominal.with_vdd(Volts(vdd)),
                &sample_times,
            )
        })
        .map_err(|err| ModelError::from_sweep(err, "Fig. 5a supply sweep"))?;
        report.table(waveform_table(
            &supply_rows,
            vec![
                Column::unit("t", "ns"),
                Column::plain("VDD=0.9 V"),
                Column::plain("VDD=1.0 V"),
                Column::plain("VDD=1.1 V"),
            ],
        ));

        report.blank().heading(1, "Fig. 5b — temperature").blank();
        let temp_points = [-40.0, 25.0, 125.0];
        let temp_rows = par_map_sweep(&temp_points, threads, |_, &temp| {
            sim.bitline_voltages(
                &stimulus(v_wl, steps),
                &nominal.with_temperature(Celsius(temp)),
                &sample_times,
            )
        })
        .map_err(|err| ModelError::from_sweep(err, "Fig. 5b temperature sweep"))?;
        report.table(waveform_table(
            &temp_rows,
            vec![
                Column::unit("t", "ns"),
                Column::plain("-40 degC"),
                Column::plain("25 degC"),
                Column::plain("125 degC"),
            ],
        ));

        report
            .blank()
            .heading(1, "Fig. 5c — process corners")
            .blank();
        let corner_points = [
            ProcessCorner::FastFast,
            ProcessCorner::TypicalTypical,
            ProcessCorner::SlowSlow,
        ];
        let corner_rows = par_map_sweep(&corner_points, threads, |_, &corner| {
            sim.bitline_voltages(
                &stimulus(v_wl, steps),
                &nominal.with_corner(corner),
                &sample_times,
            )
        })
        .map_err(|err| ModelError::from_sweep(err, "Fig. 5c process-corner sweep"))?;
        report.table(waveform_table(
            &corner_rows,
            vec![
                Column::unit("t", "ns"),
                Column::plain("fast (FF)"),
                Column::plain("nominal (TT)"),
                Column::plain("slow (SS)"),
            ],
        ));

        report
            .blank()
            .heading(
                1,
                format!("Fig. 5d — transistor mismatch ({mc_samples} samples)"),
            )
            .blank();
        let mut table = Table::new(vec![
            Column::unit("V_WL", "V"),
            Column::unit("mean V_BL(2 ns)", "V"),
            Column::unit("sigma", "mV"),
            Column::unit("min", "V"),
            Column::unit("max", "V"),
        ]);
        let mismatch_model = MismatchModel::from_technology(&tech);
        let mismatch_seed = ctx.seed().wrapping_add(MISMATCH_SEED_OFFSET);
        for &v_wl in &[0.6, 0.8, 1.0] {
            let samples = mismatch_model.sample_n(mc_samples, mismatch_seed);
            // One transient per mismatch instance, reassembled in sample order,
            // so the statistics are bit-identical at any thread count.
            let voltages: Vec<f64> = par_map_sweep(&samples, threads, |_, sample| {
                let waveform = sim.discharge_waveform(&stimulus(v_wl, steps), &nominal, sample)?;
                Ok::<_, ModelError>(waveform.final_value())
            })
            .map_err(|err| ModelError::from_sweep(err, "Fig. 5d mismatch Monte-Carlo sweep"))?;
            table.push_row(vec![
                Scalar::Float(v_wl, 1),
                Scalar::Float(stats::mean(&voltages), 4),
                Scalar::Float(stats::std_dev(&voltages) * 1e3, 2),
                Scalar::Float(stats::min(&voltages), 4),
                Scalar::Float(stats::max(&voltages), 4),
            ]);
        }
        report.table(table);
        report
            .blank()
            .note("As in the paper: supply voltage and process corners move the curves strongly,")
            .note("temperature only slightly, and the mismatch-induced spread grows with V_WL.");
        Ok(report)
    }
}
