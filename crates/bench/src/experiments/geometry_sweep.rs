//! Parametric-geometry sweep: the same fom-corner multiplier evaluated at
//! the context's array geometry, end to end.
//!
//! The paper evaluates one fixed 16×4 INT4 macro; [`ArrayConfig`] lifts that
//! geometry into data.  This experiment demonstrates the whole stack at the
//! geometry selected on the CLI (`optima run geometry_sweep --operand-bits 8
//! ...`): geometry-keyed calibration, the (possibly multi-pass composed)
//! analog multiplier, its exhaustive input-space metrics, and a quantized
//! CNN forward pass whose product table comes from that multiplier.  When
//! the selected geometry is not the paper's default, the default is run too
//! so the report always shows the paper baseline next to the variant.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_circuit::array::ArrayConfig;
use optima_dnn::multiplier::InMemoryProducts;
use optima_dnn::network::Network;
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::scratch::KernelScratch;
use optima_dnn::Tensor;
use optima_imc::metrics::evaluate_multiplier;
use optima_imc::multiplier::{InSramMultiplier, MultiplierConfig, MultiplierTable};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

pub struct GeometrySweep;

impl Experiment for GeometrySweep {
    fn name(&self) -> &'static str {
        "geometry_sweep"
    }

    fn description(&self) -> &'static str {
        "Array-geometry sweep: fom-corner multiplier and quantized inference at the selected ArrayConfig (INT8 composition included)"
    }

    fn paper_ref(&self) -> &'static str {
        "Sec. III generalised"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let selected = ctx.array();
        let mut geometries = vec![ArrayConfig::default()];
        if !selected.is_paper() {
            geometries.push(selected);
        } else if ArrayConfig::int8().validate().is_ok() {
            // Default run: show the INT8 composition next to the paper macro
            // so the sweep always exercises a multi-pass geometry.
            geometries.push(ArrayConfig::int8());
        }

        let mut report = Report::new();
        report
            .heading(1, "Array-geometry sweep — fom corner across geometries")
            .blank();
        let mut table = Table::new(vec![
            Column::plain("Geometry"),
            Column::plain("Passes"),
            Column::unit("eps_mul", "LSB"),
            Column::unit("eps_rel", "%"),
            Column::unit("E_mul", "fJ"),
            Column::plain("LUT entries"),
            Column::plain("DNN argmax"),
        ]);

        for array in geometries {
            array.validate()?;
            let row = Self::run_geometry(ctx, array)?;
            table.push_row(row);
        }
        report.table(table);
        report.blank().note(
            "eps_rel normalises the absolute error by the geometry's product range; \
             DNN argmax is the predicted class of a fixed probe image.",
        );
        Ok(report)
    }
}

impl GeometrySweep {
    /// Evaluates one geometry end to end and returns its report row.
    fn run_geometry(
        ctx: &mut ExperimentContext,
        array: ArrayConfig,
    ) -> Result<Vec<Scalar>, BenchError> {
        // Re-key the context (and with it the calibration cache) to this
        // geometry for the duration of the evaluation.
        let previous = ctx.array();
        ctx.set_array(array);
        let models = ctx.models();

        let config = MultiplierConfig::paper_fom_corner().with_array(array);
        let multiplier = InSramMultiplier::new(models, config)?;
        let metrics = evaluate_multiplier(&multiplier)?;
        let table =
            MultiplierTable::from_multiplier(&multiplier, multiplier.nominal_operating_point())?;
        let products = Arc::new(InMemoryProducts::new(table, array.describe()));

        // A tiny deterministic CNN probe: the quantized forward pass must
        // run at the geometry's operand width and produce finite logits.
        let network = Self::probe_network(ctx.seed());
        let quantized = QuantizedNetwork::from_network(&network, products)?;
        if quantized.operand_bits() != array.operand_bits {
            return Err(BenchError::Failed(format!(
                "quantized network runs at {} bits, geometry is {} bits",
                quantized.operand_bits(),
                array.operand_bits
            )));
        }
        let probe = Self::probe_image(ctx.seed());
        let logits = quantized.forward(&probe)?;
        // The zero-allocation gather path must agree bit-for-bit with the
        // flat-LUT path at this geometry — including multi-pass composed
        // widths, where the slice-composed wide products feed the 8-pixel
        // gather kernels.
        let mut scratch = KernelScratch::new();
        if quantized.forward_with(&probe, &mut scratch)? != &logits {
            return Err(BenchError::Failed(format!(
                "scratch gather path diverges from the flat-LUT path at geometry {}",
                array.describe()
            )));
        }
        if logits.data().iter().any(|v| !v.is_finite()) {
            return Err(BenchError::Failed(format!(
                "non-finite logits at geometry {}",
                array.describe()
            )));
        }
        let argmax = logits.argmax().ok_or_else(|| {
            BenchError::Failed(format!("empty logits at geometry {}", array.describe()))
        })?;

        // Restore the context geometry for the caller.
        ctx.set_array(previous);

        let eps_rel = 100.0 * metrics.epsilon_mul / array.product_max() as f64;
        Ok(vec![
            Scalar::text(array.describe()),
            Scalar::Int(array.passes() as i64),
            Scalar::Float(metrics.epsilon_mul, 2),
            Scalar::Float(eps_rel, 3),
            Scalar::Float(metrics.energy_per_multiply.0, 1),
            Scalar::Int(array.lut_len() as i64),
            Scalar::Int(argmax as i64),
        ])
    }

    fn probe_network(seed: u64) -> Network {
        use optima_dnn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x09e0_6e7a);
        Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 4 * 4, 4, &mut rng)),
        ])
    }

    fn probe_image(seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0001_a49e);
        Tensor::from_vec(&[1, 8, 8], (0..64).map(|_| rng.gen::<f32>()).collect())
            .expect("probe image shape is static")
    }
}
