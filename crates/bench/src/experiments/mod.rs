//! The unified experiment API.
//!
//! Every paper figure, table and ablation is an [`Experiment`]: a named,
//! self-describing unit implementing
//! `run(&mut ExperimentContext) -> Result<Report, BenchError>`.  The static
//! [`registry`] enumerates all of them; the `optima` CLI binary lists and
//! runs them (text and/or JSON output), and the legacy per-figure binaries
//! are five-line shims over [`run_shim`] whose text output is byte-identical
//! to the pre-refactor harnesses (golden-tested).
//!
//! [`ExperimentContext`] carries the resolved execution [`Profile`]
//! (fast/full), the base RNG seed, the sweep-engine thread knob, and a
//! lazily-calibrated `(Technology, CalibrationOutcome)` handle backed by the
//! persistent snapshot cache of [`crate::calibrate`] — calibration runs at
//! most once per process even when every experiment executes.

use crate::report::Report;
use optima_circuit::array::ArrayConfig;
use optima_circuit::error::CircuitError;
use optima_circuit::technology::Technology;
use optima_core::calibration::CalibrationOutcome;
use optima_core::model::suite::ModelSuite;
use optima_core::sweep::default_threads;
use optima_core::ModelError;
use optima_dnn::DnnError;
use optima_imc::ImcError;
use optima_serve::ServeError;

mod ablation_dac;
mod ablation_poly_degree;
mod ablation_tau0;
mod fault_sweep;
mod fig1_sota;
mod fig4_nonideality;
mod fig5_pvt;
mod fig6_model_eval;
mod fig7_dse;
mod fig8_corner_pvt;
mod geometry_sweep;
mod lint_audit;
mod serving_load;
mod snapshot_roundtrip;
mod speedup;
mod table1_corners;
mod table2_imagenet;
mod table3_cifar;

/// Environment variable selecting the execution profile: `fast` or `full`.
pub const PROFILE_ENV_VAR: &str = "OPTIMA_PROFILE";

/// Deprecated alias for `OPTIMA_PROFILE=fast` (`OPTIMA_QUICK=1`), honoured
/// with a warning so existing scripts keep working.
pub const QUICK_ENV_VAR: &str = "OPTIMA_QUICK";

/// Execution profile of an experiment run.
///
/// `Fast` selects coarse sweep grids, fewer Monte-Carlo samples and fewer
/// training epochs (CI smoke runs); `Full` is the paper-fidelity
/// configuration and the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    Fast,
    Full,
}

impl Profile {
    pub fn is_fast(self) -> bool {
        self == Profile::Fast
    }

    /// The lowercase name used by the CLI, the environment knob and the
    /// JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Fast => "fast",
            Profile::Full => "full",
        }
    }

    /// Parses a profile name (case-insensitive `fast`/`full`).
    pub fn parse(value: &str) -> Option<Profile> {
        match value.to_ascii_lowercase().as_str() {
            "fast" => Some(Profile::Fast),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }

    /// Resolves the profile from the environment: `OPTIMA_PROFILE=fast|full`
    /// wins; the deprecated `OPTIMA_QUICK=1` alias is honoured with a
    /// warning; the default is `Full`.  An unrecognised `OPTIMA_PROFILE`
    /// value warns and falls back to the default rather than erroring, so a
    /// typo in CI degrades to the safe (full-fidelity) behaviour.
    pub fn from_env() -> Profile {
        if let Ok(value) = std::env::var(PROFILE_ENV_VAR) {
            let trimmed = value.trim();
            if !trimmed.is_empty() {
                match Profile::parse(trimmed) {
                    Some(profile) => return profile,
                    None => {
                        eprintln!(
                            "warning: unrecognised {PROFILE_ENV_VAR}={value:?} \
                             (expected 'fast' or 'full'); using the full profile"
                        );
                        return Profile::Full;
                    }
                }
            }
        }
        if std::env::var(QUICK_ENV_VAR)
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            eprintln!(
                "warning: {QUICK_ENV_VAR}=1 is deprecated; use {PROFILE_ENV_VAR}=fast instead"
            );
            return Profile::Fast;
        }
        Profile::Full
    }

    /// Resolves the effective profile: an explicit CLI choice takes
    /// precedence over the environment.
    pub fn resolve(cli: Option<Profile>) -> Profile {
        cli.unwrap_or_else(Profile::from_env)
    }
}

/// Error of a failed experiment run.
#[derive(Debug)]
pub enum BenchError {
    Model(ModelError),
    Imc(ImcError),
    Dnn(DnnError),
    Circuit(CircuitError),
    Serve(ServeError),
    Io {
        path: String,
        source: std::io::Error,
    },
    /// A violated experiment invariant (the experiment ran but its result
    /// fails a self-check, e.g. a snapshot round trip that is not
    /// bit-exact).
    Failed(String),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Model(e) => write!(f, "model error: {e}"),
            BenchError::Imc(e) => write!(f, "in-memory-computing error: {e}"),
            BenchError::Dnn(e) => write!(f, "DNN error: {e}"),
            BenchError::Circuit(e) => write!(f, "circuit error: {e}"),
            BenchError::Serve(e) => write!(f, "serving error: {e}"),
            BenchError::Io { path, source } => write!(f, "I/O error on {path}: {source}"),
            BenchError::Failed(message) => write!(f, "experiment failed: {message}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Model(e) => Some(e),
            BenchError::Imc(e) => Some(e),
            BenchError::Dnn(e) => Some(e),
            BenchError::Circuit(e) => Some(e),
            BenchError::Serve(e) => Some(e),
            BenchError::Io { source, .. } => Some(source),
            BenchError::Failed(_) => None,
        }
    }
}

impl From<ModelError> for BenchError {
    fn from(e: ModelError) -> Self {
        BenchError::Model(e)
    }
}

impl From<ImcError> for BenchError {
    fn from(e: ImcError) -> Self {
        BenchError::Imc(e)
    }
}

impl From<DnnError> for BenchError {
    fn from(e: DnnError) -> Self {
        BenchError::Dnn(e)
    }
}

impl From<CircuitError> for BenchError {
    fn from(e: CircuitError) -> Self {
        BenchError::Circuit(e)
    }
}

impl From<ServeError> for BenchError {
    fn from(e: ServeError) -> Self {
        BenchError::Serve(e)
    }
}

/// Execution context handed to every experiment.
pub struct ExperimentContext {
    profile: Profile,
    seed: u64,
    threads: usize,
    array: ArrayConfig,
    defect_rate: Option<f64>,
    lifetime_steps: Option<usize>,
    max_batch: Option<usize>,
    max_delay_us: Option<u64>,
    serve_shards: Option<usize>,
    calibration: Option<(Technology, CalibrationOutcome)>,
}

impl ExperimentContext {
    /// A context with the given profile, the default seed (42), the
    /// automatic thread count and the paper's default array geometry.
    pub fn new(profile: Profile) -> Self {
        ExperimentContext {
            profile,
            seed: 42,
            threads: 0,
            array: ArrayConfig::default(),
            defect_rate: None,
            lifetime_steps: None,
            max_batch: None,
            max_delay_us: None,
            serve_shards: None,
            calibration: None,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sweep-engine worker threads; `0` (the default) selects the machine's
    /// available parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Array geometry the experiments run at; calibration is re-keyed
    /// automatically ([`crate::calibrate_for`]).  Resets any calibration
    /// already computed for a previous geometry.
    pub fn with_array(mut self, array: ArrayConfig) -> Self {
        self.set_array(array);
        self
    }

    /// In-place variant of [`Self::with_array`] for experiments that
    /// evaluate several geometries within one run.
    pub fn set_array(&mut self, array: ArrayConfig) {
        if self.array != array {
            self.calibration = None;
        }
        self.array = array;
    }

    /// Pins the reliability experiments' peak defect rate (`--defect-rate`);
    /// without it the `fault_sweep` experiment uses its profile-default
    /// rate grid.
    pub fn with_defect_rate(mut self, rate: f64) -> Self {
        self.defect_rate = Some(rate);
        self
    }

    /// Pins the reliability experiments' deployed-lifetime horizon
    /// (`--lifetime-steps`); without it the `fault_sweep` experiment uses
    /// its profile-default step grid.
    pub fn with_lifetime_steps(mut self, steps: usize) -> Self {
        self.lifetime_steps = Some(steps);
        self
    }

    /// Pins the serving experiment's coalescing batch size (`--max-batch`);
    /// without it `serving_load` sweeps its profile-default policy grid.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = Some(max_batch);
        self
    }

    /// Pins the serving experiment's coalescing deadline (`--max-delay-us`).
    pub fn with_max_delay_us(mut self, max_delay_us: u64) -> Self {
        self.max_delay_us = Some(max_delay_us);
        self
    }

    /// Pins the serving experiment's worker-shard count (`--shards`).
    pub fn with_serve_shards(mut self, shards: usize) -> Self {
        self.serve_shards = Some(shards);
        self
    }

    /// CLI-pinned peak defect rate, if any.
    pub fn defect_rate(&self) -> Option<f64> {
        self.defect_rate
    }

    /// CLI-pinned coalescing batch size, if any.
    pub fn max_batch(&self) -> Option<usize> {
        self.max_batch
    }

    /// CLI-pinned coalescing deadline in microseconds, if any.
    pub fn max_delay_us(&self) -> Option<u64> {
        self.max_delay_us
    }

    /// CLI-pinned serving shard count, if any.
    pub fn serve_shards(&self) -> Option<usize> {
        self.serve_shards
    }

    /// CLI-pinned lifetime horizon in deployment steps, if any.
    pub fn lifetime_steps(&self) -> Option<usize> {
        self.lifetime_steps
    }

    pub fn profile(&self) -> Profile {
        self.profile
    }

    pub fn is_fast(&self) -> bool {
        self.profile.is_fast()
    }

    /// Base RNG seed; experiments derive their internal streams from it.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw thread knob (`0` = automatic).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The array geometry of this run (the paper's 16×4 INT4 by default).
    pub fn array(&self) -> ArrayConfig {
        self.array
    }

    /// The thread count actually used by the sweep engine.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
    }

    /// The calibrated technology and outcome for this profile and array
    /// geometry, computed on first use (backed by the persistent snapshot
    /// cache, so it costs milliseconds on a warm cache) and shared by every
    /// subsequent caller in the process.
    pub fn calibration(&mut self) -> &(Technology, CalibrationOutcome) {
        if self.calibration.is_none() {
            self.calibration = Some(crate::calibrate_for(self.is_fast(), &self.array));
        }
        self.calibration
            .as_ref()
            .expect("calibration was just populated")
    }

    /// A clone of the calibrated technology.
    pub fn technology(&mut self) -> Technology {
        self.calibration().0.clone()
    }

    /// A clone of the fitted model suite.
    pub fn models(&mut self) -> ModelSuite {
        self.calibration().1.models().clone()
    }
}

/// One paper figure/table/ablation reproduction.
///
/// Implementations are stateless unit structs registered in [`registry`];
/// all run-time configuration comes through the [`ExperimentContext`].
pub trait Experiment: Sync {
    /// Registry name — equal to the legacy binary name (e.g. `fig5_pvt`).
    fn name(&self) -> &'static str;

    /// One-line description for `optima list` and DESIGN.md.
    fn description(&self) -> &'static str;

    /// The paper artifact this reproduces (e.g. `Fig. 5`, `Table I`,
    /// `ablation`).
    fn paper_ref(&self) -> &'static str;

    /// Runs the experiment and returns its structured report.
    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError>;
}

/// The static registry of every experiment, in presentation order
/// (figures, tables, section V, infrastructure smoke, then ablations).
pub fn registry() -> &'static [&'static dyn Experiment] {
    static REGISTRY: [&dyn Experiment; 18] = [
        &fig1_sota::Fig1Sota,
        &fig4_nonideality::Fig4Nonideality,
        &fig5_pvt::Fig5Pvt,
        &fig6_model_eval::Fig6ModelEval,
        &fig7_dse::Fig7Dse,
        &fig8_corner_pvt::Fig8CornerPvt,
        &table1_corners::Table1Corners,
        &table2_imagenet::Table2Imagenet,
        &table3_cifar::Table3Cifar,
        &geometry_sweep::GeometrySweep,
        &fault_sweep::FaultSweep,
        &serving_load::ServingLoad,
        &speedup::Speedup,
        &snapshot_roundtrip::SnapshotRoundtrip,
        &lint_audit::LintAudit,
        &ablation_dac::AblationDac,
        &ablation_poly_degree::AblationPolyDegree,
        &ablation_tau0::AblationTau0,
    ];
    &REGISTRY
}

/// Looks an experiment up by its registry name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    registry().iter().copied().find(|e| e.name() == name)
}

/// The generated per-experiment index (the body of `DESIGN.md`), derived
/// from the registry so it cannot drift from the code.
pub fn design_md() -> String {
    let mut out = String::from(
        "# DESIGN — experiment index\n\
         \n\
         <!-- GENERATED from the experiment registry: run -->\n\
         <!--   cargo run -q -p optima_bench --bin optima -- design-md > DESIGN.md -->\n\
         <!-- A test (crates/bench/tests/experiment_api.rs) fails when this file drifts. -->\n\
         \n\
         Every figure, table and ablation of the paper is one implementation of\n\
         `optima_bench::experiments::Experiment`, registered in the static\n\
         registry and driven by the `optima` CLI (`optima list`, `optima run`).\n\
         The legacy per-experiment binaries in `crates/bench/src/bin/` are\n\
         shims over the same registry and print byte-identical text output.\n\
         \n\
         | experiment | paper artifact | shim binary | description |\n\
         |---|---|---|---|\n",
    );
    for experiment in registry() {
        out.push_str(&format!(
            "| `{name}` | {paper} | `cargo run -p optima_bench --bin {name}` | {desc} |\n",
            name = experiment.name(),
            paper = experiment.paper_ref(),
            desc = experiment.description(),
        ));
    }
    out.push_str(
        "\nRun everything: `cargo run -p optima_bench --bin optima -- run --all \
         --profile fast --json reports/`.\n\
         Profiles: `fast` (CI smoke grids) and `full` (paper fidelity); see\n\
         the \"Experiment runner\" section of README.md.\n",
    );
    out
}

/// Entry point of the legacy per-experiment shim binaries: resolves the
/// profile from the environment, runs the named experiment and prints its
/// text report (byte-identical to the pre-refactor binaries), exiting
/// non-zero on failure.
pub fn run_shim(name: &str) -> ! {
    let experiment = find(name).unwrap_or_else(|| {
        eprintln!("error: experiment {name:?} is not registered");
        std::process::exit(2);
    });
    let mut ctx = ExperimentContext::new(Profile::from_env());
    // The report is printed when the run completes; a stderr liveness line
    // (stdout stays byte-identical to the legacy binaries) tells a log
    // watcher that a long full-profile run is working, not hung.
    eprintln!(
        "running {} ({}, profile {}); report follows on completion",
        experiment.name(),
        experiment.paper_ref(),
        ctx.profile().name()
    );
    match experiment.run(&mut ctx) {
        Ok(report) => {
            print!("{}", report.render_text());
            std::process::exit(0);
        }
        Err(err) => {
            eprintln!("error: experiment {name} failed: {err}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
        assert!(!names.is_empty());
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(len, names.len(), "registry names must be unique");
    }

    #[test]
    fn find_resolves_registered_names_only() {
        assert!(find("fig5_pvt").is_some());
        assert!(find("no_such_experiment").is_none());
    }

    #[test]
    fn profile_parsing_is_case_insensitive_and_strict() {
        assert_eq!(Profile::parse("fast"), Some(Profile::Fast));
        assert_eq!(Profile::parse("FULL"), Some(Profile::Full));
        assert_eq!(Profile::parse("quick"), None);
        assert_eq!(Profile::resolve(Some(Profile::Fast)), Profile::Fast);
    }

    #[test]
    fn design_md_lists_every_registered_experiment() {
        let index = design_md();
        for experiment in registry() {
            assert!(
                index.contains(&format!("`{}`", experiment.name())),
                "DESIGN.md index is missing {}",
                experiment.name()
            );
        }
    }

    #[test]
    fn context_defaults_and_knobs() {
        let ctx = ExperimentContext::new(Profile::Fast)
            .with_seed(7)
            .with_threads(3);
        assert!(ctx.is_fast());
        assert_eq!(ctx.seed(), 7);
        assert_eq!(ctx.threads(), 3);
        assert_eq!(ctx.effective_threads(), 3);
        assert!(ctx.array().is_paper());
        let auto = ExperimentContext::new(Profile::Full);
        assert_eq!(auto.effective_threads(), default_threads());
    }

    #[test]
    fn context_geometry_rekeys_the_calibration() {
        let mut ctx = ExperimentContext::new(Profile::Fast).with_array(ArrayConfig::int8());
        assert_eq!(ctx.array(), ArrayConfig::int8());
        // Populate, then switch geometry: the cached calibration must drop.
        let _ = ctx.calibration();
        assert!(ctx.calibration.is_some());
        ctx.set_array(ArrayConfig::default());
        assert!(ctx.calibration.is_none());
        // Same geometry again: the cache survives.
        let _ = ctx.calibration();
        ctx.set_array(ArrayConfig::default());
        assert!(ctx.calibration.is_some());
    }
}
