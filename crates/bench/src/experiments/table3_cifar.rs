//! Table III — DNN classification accuracies (CIFAR-10 experiment, scaled).
//!
//! Reuses the backbones trained for the Table II experiment, replaces the
//! classifier head with a 10-neuron dense layer, retrains the head with
//! transfer learning on a 10-class synthetic dataset and evaluates the same
//! FLOAT32 / INT4 / fom / power / variation matrix (top-1 only, as in the
//! paper).

use super::table2_imagenet::corner_product_tables;
use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_dnn::data::{Dataset, SyntheticImageConfig};
use optima_dnn::eval::evaluate_batched;
use optima_dnn::models::{build_model, ModelKind};
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::training::{Trainer, TrainingConfig};
use optima_dnn::transfer::transfer_to_new_head;

/// RNG seed of the fresh transfer head (kept distinct from the backbone
/// seed so head and backbone never share an initialisation stream).
const HEAD_SEED: u64 = 7;

pub struct Table3Cifar;

impl Experiment for Table3Cifar {
    fn name(&self) -> &'static str {
        "table3_cifar"
    }

    fn description(&self) -> &'static str {
        "Transfer-learning accuracies on the synthetic CIFAR-10 stand-in across the corners"
    }

    fn paper_ref(&self) -> &'static str {
        "Table III"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let quick = ctx.is_fast();
        let product_tables = corner_product_tables(ctx)?;

        // Pre-training dataset (ImageNet stand-in) and transfer target
        // (CIFAR stand-in).
        let pretrain_config = if quick {
            SyntheticImageConfig {
                classes: 8,
                train_per_class: 10,
                test_per_class: 4,
                ..SyntheticImageConfig::imagenet_like()
            }
        } else {
            SyntheticImageConfig::imagenet_like()
        };
        let target_config = if quick {
            SyntheticImageConfig {
                train_per_class: 12,
                test_per_class: 5,
                ..SyntheticImageConfig::cifar_like()
            }
        } else {
            SyntheticImageConfig::cifar_like()
        };
        let pretrain = Dataset::synthetic(pretrain_config);
        let target = Dataset::synthetic(target_config);

        let trainer = Trainer::new(TrainingConfig {
            epochs: if quick { 3 } else { 8 },
            learning_rate: 0.02,
            learning_rate_decay: 0.9,
        });

        let mut report = Report::new();
        report
            .heading(
                1,
                "Table III — classification accuracies (synthetic CIFAR-10 stand-in)",
            )
            .blank()
            .note(format!(
                "transfer target: {} classes, {} training / {} test samples",
                target.classes(),
                target.train_len(),
                target.test_len()
            ))
            .blank();
        let mut table = Table::new(vec![
            Column::plain("Model"),
            Column::unit("FLOAT32 top-1", "%"),
            Column::unit("INT4 top-1", "%"),
            Column::unit("fom top-1", "%"),
            Column::unit("power top-1", "%"),
            Column::unit("variation top-1", "%"),
        ]);

        for kind in ModelKind::ALL {
            let shape = pretrain.image_shape().to_vec();
            let mut network = build_model(kind, shape[0], shape[1], pretrain.classes(), ctx.seed());
            trainer.train(&mut network, &pretrain)?;
            // Transfer learning: new 10-class head, retrain only the head.
            transfer_to_new_head(&mut network, target.classes(), HEAD_SEED)?;
            trainer.train_head_only(&mut network, &target)?;

            // Per-image parallel fan-out over the sweep engine.
            let float_report = evaluate_batched(&network, &target, ctx.threads())?;
            let mut cells = vec![
                Scalar::text(kind.to_string()),
                Scalar::Float(float_report.top1_percent(), 1),
            ];
            for (_, products) in &product_tables {
                let quantized = QuantizedNetwork::from_network(&network, products.clone())?;
                let eval = evaluate_batched(&quantized, &target, ctx.threads())?;
                cells.push(Scalar::Float(eval.top1_percent(), 1));
            }
            table.push_row(cells);
        }
        report.table(table);

        report
            .blank()
            .note("Paper (full-scale CIFAR-10) for comparison: FLOAT32 92.2-93.4 %, INT4 92.0-93.1 %,")
            .note("fom within 0.1 % of INT4, power 87.4-90.8 %, variation 66.9-73.8 %.");
        Ok(report)
    }
}
