//! Serving-engine load sweep: sustained throughput, batch-size
//! distribution and latency percentiles over arrival rate × batch policy.
//!
//! The 18th registry entry drives the `optima_serve` pipeline (bounded
//! queue → batch coalescer → worker-shard pool) with the deterministic
//! open-loop load generator and an INT4-quantized CNN probe, measuring
//! each grid point's wall-clock throughput and end-to-end latency
//! histogram.  The measurement core, the gate set and the
//! `BENCH_serving.json` schema live in [`crate::serving`], shared with the
//! `bench_report` serving section, so both harnesses emit the identical
//! machine-readable trajectory.
//!
//! The experiment gates itself on bit identity (every served request's
//! logits equal a lone `forward_with` call), the coalesce-wait bound, a
//! sustained-throughput floor and p50/p99 latency ceilings — the wall
//! thresholds relax in quick mode (floor halved, ceilings doubled), and
//! any violation returns [`BenchError::Failed`] so the `optima` runner
//! exits nonzero.  `--max-batch`, `--max-delay-us` and `--shards` pin the
//! grid to a single policy/shard point instead of the profile defaults.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use crate::serving::{self, SweepSpec};

pub struct ServingLoad;

impl Experiment for ServingLoad {
    fn name(&self) -> &'static str {
        "serving_load"
    }

    fn description(&self) -> &'static str {
        "batched serving engine under open-loop load: arrival rate x batch policy sweep with throughput and p50/p99 latency gates (writes BENCH_serving.json)"
    }

    fn paper_ref(&self) -> &'static str {
        "serving ext."
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let quick = ctx.is_fast();
        let defaults = SweepSpec::for_profile(quick);
        // CLI-pinned knobs collapse their grid axis to the pinned value;
        // a half-pinned policy borrows the other half from the default
        // balanced point.
        let policies = match (ctx.max_batch(), ctx.max_delay_us()) {
            (None, None) => defaults.policies,
            (max_batch, max_delay_us) => {
                vec![(max_batch.unwrap_or(8), max_delay_us.unwrap_or(500))]
            }
        };
        let shards = match ctx.serve_shards() {
            Some(shards) => vec![shards],
            None => defaults.shards,
        };
        let spec = SweepSpec {
            rates: defaults.rates,
            policies,
            shards,
            requests: defaults.requests,
        };

        let report = serving::run_and_write(&spec, ctx.seed(), quick, "serving_load")?;
        let gates = serving::gate_outcome(&report);

        let mut out = Report::new();
        out.heading(1, "Serving load — throughput and latency under batching")
            .blank()
            .note(format!(
                "INT4 CNN probe; {} bit-identity checks against the single-request \
                 path passed; sustained throughput {:.0} req/s (floor {:.0}), worst \
                 p50 {} us / p99 {} us (ceilings {} / {} us)",
                report.bit_identity_checks,
                gates.sustained_throughput_per_sec,
                gates.throughput_floor_per_sec,
                gates.worst_p50_us,
                gates.worst_p99_us,
                gates.p50_ceiling_us,
                gates.p99_ceiling_us,
            ))
            .blank();
        let mut table = Table::new(vec![
            Column::unit("Rate", "req/s"),
            Column::plain("Max batch"),
            Column::unit("Max delay", "us"),
            Column::plain("Shards"),
            Column::plain("Served"),
            Column::plain("Rejected"),
            Column::plain("Mean batch"),
            Column::unit("p50", "us"),
            Column::unit("p90", "us"),
            Column::unit("p99", "us"),
            Column::unit("Throughput", "req/s"),
        ]);
        for point in &report.points {
            table.push_row(vec![
                Scalar::Float(point.rate_per_sec, 0),
                Scalar::Int(point.max_batch as i64),
                Scalar::Int(point.max_delay_us as i64),
                Scalar::Int(point.shards as i64),
                Scalar::Int(point.served as i64),
                Scalar::Int(point.rejected as i64),
                Scalar::Float(point.mean_batch, 2),
                Scalar::Int(point.wall_p50_us as i64),
                Scalar::Int(point.wall_p90_us as i64),
                Scalar::Int(point.wall_p99_us as i64),
                Scalar::Float(point.wall_throughput_per_sec, 0),
            ]);
        }
        out.table(table);
        out.blank().note(format!(
            "machine-readable sweep written to {}",
            serving::REPORT_PATH
        ));
        Ok(out)
    }
}
