//! Workspace static-analysis audit: runs the `optima-lint` pass (R1
//! float-ordering, R2 nondeterminism, R3 panic-hygiene, R4 hot-path
//! allocation — see `lint.toml` and the README "Static analysis" section)
//! over the whole tree and fails on any finding.
//!
//! Registry-visible so `optima run --all` exercises the same invariants CI
//! enforces; the report records the scan size and the live suppression
//! count, which makes suppression creep visible in the JSON artifacts.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Report, Scalar};
use optima_lint::{report as lint_report, Config};
use std::path::PathBuf;

pub struct LintAudit;

impl Experiment for LintAudit {
    fn name(&self) -> &'static str {
        "lint_audit"
    }

    fn description(&self) -> &'static str {
        "Workspace optima-lint audit (determinism, NaN-ordering, hot-path rules)"
    }

    fn paper_ref(&self) -> &'static str {
        "infrastructure"
    }

    fn run(&self, _ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        // The audit is source-level: anchor on the crate's manifest dir so it
        // works from any process working directory.
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        let config_path = root.join("lint.toml");
        let config = Config::load(&config_path)
            .map_err(|e| BenchError::Failed(format!("lint config: {e}")))?;
        let outcome = optima_lint::run_workspace(&root, &config)
            .map_err(|e| BenchError::Failed(format!("lint scan: {e}")))?;

        if !outcome.findings.is_empty() {
            return Err(BenchError::Failed(format!(
                "workspace lint findings:\n{}",
                lint_report::render_human(&outcome)
            )));
        }

        let mut report = Report::new();
        report
            .note("workspace optima-lint audit OK (0 findings)")
            .metric_line(
                "files_scanned",
                Scalar::Int(outcome.files_scanned as i64),
                None,
                format!("  files scanned:  {}", outcome.files_scanned),
            )
            .metric_line(
                "suppressed",
                Scalar::Int(outcome.suppressed as i64),
                None,
                format!("  live allows:    {}", outcome.suppressed),
            )
            .note("  rules: R1 float-ordering, R2 nondeterminism, R3 panic-hygiene, R4 hot-path");
        Ok(report)
    }
}
