//! Fig. 8 — PVT and mismatch analysis of the selected corners.
//!
//! For the *fom*, *power* and *variation* corners of Table I: average
//! multiplication error and analog standard deviation as a function of the
//! expected result (left panels) and the influence of supply-voltage and
//! temperature variations on the error (right panels).

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_imc::multiplier::InSramMultiplier;
use optima_imc::pvt_analysis::{PvtAnalysis, PvtAnalysisConfig};

pub struct Fig8CornerPvt;

impl Experiment for Fig8CornerPvt {
    fn name(&self) -> &'static str {
        "fig8_corner_pvt"
    }

    fn description(&self) -> &'static str {
        "Per-corner PVT and mismatch Monte-Carlo analysis of the Table I corners"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 8"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let models = ctx.models();
        let config = if ctx.is_fast() {
            PvtAnalysisConfig::fast()
        } else {
            PvtAnalysisConfig::default()
        };
        let mut report = Report::new();

        report
            .heading(1, "Fig. 8 — corner PVT and mismatch analysis")
            .blank();
        for (name, corner_config) in crate::paper_corners() {
            let multiplier = InSramMultiplier::new(models.clone(), corner_config)?;
            let analysis = PvtAnalysis::run(&multiplier, &config)?;

            report.heading(2, format!("Corner `{name}`")).blank();
            report
                .metric_line(
                    format!("{name}.nominal_epsilon_mul_lsb"),
                    Scalar::Float(analysis.nominal_epsilon_mul, 2),
                    Some("LSB"),
                    format!(
                        "Average error: {:.2} LSB, worst-case analog sigma: {:.2} mV",
                        analysis.nominal_epsilon_mul,
                        analysis.worst_case_sigma * 1e3
                    ),
                )
                .hidden_metric(
                    format!("{name}.worst_case_sigma_mv"),
                    Scalar::Float(analysis.worst_case_sigma * 1e3, 2),
                    Some("mV"),
                )
                .blank();

            report
                .heading(3, "Error / sigma vs. expected result (left panel, binned)")
                .blank();
            let mut binned = Table::new(vec![
                Column::plain("expected result"),
                Column::unit("avg error", "LSB"),
                Column::unit("analog sigma", "mV"),
            ]);
            // Bin the 116 distinct expected results into coarse ranges for
            // readability.
            let profile = &analysis.result_profile;
            for range_start in (0..=200).step_by(50) {
                let range_end = range_start + 50;
                let indices: Vec<usize> = profile
                    .expected_results
                    .iter()
                    .enumerate()
                    .filter(|(_, &r)| (range_start..range_end).contains(&(r as usize)))
                    .map(|(i, _)| i)
                    .collect();
                if indices.is_empty() {
                    continue;
                }
                let avg_error = indices
                    .iter()
                    .map(|&i| profile.average_error_lsb[i])
                    .sum::<f64>()
                    / indices.len() as f64;
                let avg_sigma = indices
                    .iter()
                    .map(|&i| profile.analog_sigma[i])
                    .sum::<f64>()
                    / indices.len() as f64;
                binned.push_row(vec![
                    Scalar::text(format!("{range_start}..{range_end}")),
                    Scalar::Float(avg_error, 2),
                    Scalar::Float(avg_sigma * 1e3, 2),
                ]);
            }
            report.table(binned);

            report
                .blank()
                .heading(3, "Error vs. supply voltage (right panel)")
                .blank();
            let mut supply = Table::new(vec![
                Column::unit("VDD", "V"),
                Column::unit("avg error", "LSB"),
            ]);
            for (vdd, error) in analysis
                .supply_sweep
                .condition_values
                .iter()
                .zip(analysis.supply_sweep.average_error_lsb.iter())
            {
                supply.push_row(vec![Scalar::Float(*vdd, 2), Scalar::Float(*error, 2)]);
            }
            report.table(supply);

            report
                .blank()
                .heading(3, "Error vs. temperature (right panel)")
                .blank();
            let mut temperature = Table::new(vec![
                Column::unit("T", "degC"),
                Column::unit("avg error", "LSB"),
            ]);
            for (temp, error) in analysis
                .temperature_sweep
                .condition_values
                .iter()
                .zip(analysis.temperature_sweep.average_error_lsb.iter())
            {
                temperature.push_row(vec![Scalar::Float(*temp, 0), Scalar::Float(*error, 2)]);
            }
            report.table(temperature);

            let mc = &analysis.mismatch_monte_carlo;
            report
                .blank()
                .heading(
                    3,
                    format!(
                        "Mismatch Monte Carlo ({} instances)",
                        mc.per_sample_error_lsb.len()
                    ),
                )
                .blank();
            let mut monte_carlo = Table::new(vec![
                Column::unit("mean error", "LSB"),
                Column::unit("sigma", "LSB"),
                Column::unit("worst", "LSB"),
            ]);
            monte_carlo.push_row(vec![
                Scalar::Float(mc.mean_error_lsb, 3),
                Scalar::Float(mc.std_error_lsb, 3),
                Scalar::Float(mc.worst_error_lsb, 3),
            ]);
            report.table(monte_carlo);
            report.blank();
        }
        report
            .note("Expected shape (paper): the power corner struggles everywhere, the variation")
            .note("corner is poor for small expected results but robust for large ones, and the")
            .note("fom corner is the least susceptible to voltage and temperature variations.");
        Ok(report)
    }
}
