//! Reliability fault sweep: DNN accuracy vs. manufacturing defect rate and
//! deployed lifetime, with and without mitigation.
//!
//! For every `(defect rate, lifetime step)` grid point the experiment
//! samples a deterministic [`DefectMap`], ages it along an NBTI-like
//! [`LifetimeTrajectory`], rebuilds the analog product table through the
//! faulted multiplier and measures a trained CNN probe's test accuracy in
//! three arms:
//!
//! 1. **unmitigated** — the defects apply as-is,
//! 2. **redundancy** — replica spare columns remap the hard-faulted data
//!    columns ([`FaultState::with_redundancy`]); an unrepairable map falls
//!    back to the unmitigated arm and is reported as such,
//! 3. **redundancy + fine-tune** — the classifier head is additionally
//!    retrained against the faulted product table
//!    ([`Trainer::fine_tune_quantized`]), the standard noise-aware recovery
//!    step for degraded in-memory-compute arrays.
//!
//! The grid is fanned out over [`par_map_sweep`]; every per-item random
//! stream derives from `stream_seed(ctx.seed, item index)`, so the result is
//! bit-identical at any thread count.  Alongside the text report the
//! experiment writes `BENCH_reliability.json` (schema
//! `optima-reliability.v1`) and gates itself on two invariants: the
//! zero-defect fresh grid point must match the pristine baseline exactly,
//! and the mean mitigated accuracy must not fall below the mean unmitigated
//! accuracy.

use super::{BenchError, Experiment, ExperimentContext};
use crate::json::Json;
use crate::report::{Column, Report, Scalar, Table};
use optima_circuit::array::ArrayConfig;
use optima_circuit::defects::{DefectMap, DefectModel, LifetimeTrajectory};
use optima_core::sweep::par_map_sweep;
use optima_dnn::data::{Dataset, SyntheticImageConfig};
use optima_dnn::eval::evaluate_batched;
use optima_dnn::multiplier::{InMemoryProducts, ProductTable};
use optima_dnn::network::Network;
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::training::{Trainer, TrainingConfig};
use optima_imc::multiplier::{InSramMultiplier, MultiplierConfig, MultiplierTable, OperatingPoint};
use optima_imc::reliability::FaultState;
use optima_imc::ImcError;
use optima_math::seed::stream_seed;
use optima_math::units::Celsius;
use std::sync::Arc;

/// Array row holding the stored operand in the reliability model.
const STORED_ROW: u16 = 0;

/// File the machine-readable sweep lands in (current working directory,
/// next to `BENCH_dnn.json` / `BENCH_analog.json`).
const REPORT_PATH: &str = "BENCH_reliability.json";

pub struct FaultSweep;

/// One evaluated `(defect rate, lifetime step)` grid point.
struct SweepRow {
    rate: f64,
    step: usize,
    defects: usize,
    unmitigated: f64,
    redundancy: f64,
    repaired: bool,
    remapped: usize,
    fine_tuned: f64,
}

impl Experiment for FaultSweep {
    fn name(&self) -> &'static str {
        "fault_sweep"
    }

    fn description(&self) -> &'static str {
        "DNN accuracy vs. defect rate and lifetime aging, unmitigated vs. spare-column redundancy vs. noise-aware fine-tuning (writes BENCH_reliability.json)"
    }

    fn paper_ref(&self) -> &'static str {
        "robustness ext."
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let quick = ctx.is_fast();
        let array = mitigated_geometry(ctx.array())?;
        let models = ctx.models();
        let config = MultiplierConfig::paper_fom_corner().with_array(array);
        let pristine = InSramMultiplier::new(models, config)?;
        let nominal = pristine.nominal_operating_point();

        // The grid: CLI-pinned knobs override the profile defaults.
        let rates: Vec<f64> = match ctx.defect_rate() {
            Some(rate) => vec![0.0, rate],
            None if quick => vec![0.0, 0.05, 0.15],
            None => vec![0.0, 0.02, 0.05, 0.1, 0.2],
        };
        // The aging horizon stays at <= 2 steps (8 mV of V_th shift): the
        // fom corner drives the word line from V_DAC,0 = 0.3 V and the full
        // calibration grid only validates down to 0.35 V - 10 % margin, so
        // deeper aging would leave the calibrated model domain.  A pinned
        // `--lifetime-steps` beyond that fails loudly with the grid point
        // named in the error chain rather than silently extrapolating.
        let steps: Vec<usize> = match ctx.lifetime_steps() {
            Some(0) => vec![0],
            Some(horizon) => vec![0, horizon],
            None if quick => vec![0, 2],
            None => vec![0, 1, 2],
        };
        let trajectory = LifetimeTrajectory::nbti_like();
        trajectory.validate()?;

        // One trained float probe shared by every grid point.
        let dataset = probe_dataset(quick, ctx.seed());
        let network = trained_probe(&dataset, quick, ctx.seed())?;
        let baseline = pristine_accuracy(&pristine, nominal, &network, &dataset, &array)?;

        let grid: Vec<(f64, usize)> = rates
            .iter()
            .flat_map(|&rate| steps.iter().map(move |&step| (rate, step)))
            .collect();
        let seed = ctx.seed();
        let threads = ctx.threads();
        let rows: Vec<SweepRow> = par_map_sweep(&grid, threads, |index, &(rate, step)| {
            evaluate_grid_point(
                &pristine,
                nominal,
                &array,
                &network,
                &dataset,
                &trajectory,
                rate,
                step,
                stream_seed(seed, index as u64),
                seed,
                quick,
            )
        })
        .map_err(|failure| {
            let (rate, step) = grid[failure.index];
            BenchError::Imc(ImcError::from_sweep(
                optima_core::sweep::SweepError {
                    index: failure.index,
                    source: match failure.source {
                        BenchError::Imc(err) => err,
                        other => ImcError::InvalidConfiguration {
                            context: other.to_string(),
                        },
                    },
                },
                format!("defect rate {rate}, lifetime step {step}"),
            ))
        })?;

        // Gate 1: the zero-defect fresh grid point is the pristine baseline,
        // exactly — fault injection must cost nothing when nothing is broken.
        for row in rows.iter().filter(|r| r.rate == 0.0 && r.step == 0) {
            if row.unmitigated != baseline {
                return Err(BenchError::Failed(format!(
                    "zero-defect accuracy {} differs from the pristine baseline {}",
                    row.unmitigated, baseline
                )));
            }
        }
        // Gate 2 (accuracy floor): mitigation must not lose accuracy on
        // average — redundancy plus fine-tuning has to hold the floor the
        // unmitigated arm sets.
        let mean =
            |f: fn(&SweepRow) -> f64| rows.iter().map(f).sum::<f64>() / rows.len().max(1) as f64;
        let mean_unmitigated = mean(|r| r.unmitigated);
        let mean_fine_tuned = mean(|r| r.fine_tuned);
        if mean_fine_tuned < mean_unmitigated {
            return Err(BenchError::Failed(format!(
                "mean mitigated accuracy {mean_fine_tuned:.4} fell below the \
                 unmitigated floor {mean_unmitigated:.4}"
            )));
        }

        write_json_report(&rows, baseline, mean_unmitigated, mean_fine_tuned, quick)?;

        let mut report = Report::new();
        report
            .heading(1, "Fault sweep — accuracy vs. defect rate and lifetime")
            .blank()
            .note(format!(
                "geometry {}; pristine INT{} baseline accuracy {:.1} % \
                 ({} test images)",
                array.describe(),
                array.operand_bits,
                100.0 * baseline,
                dataset.test_len()
            ))
            .blank();
        let mut table = Table::new(vec![
            Column::plain("Defect rate"),
            Column::plain("Lifetime step"),
            Column::plain("Defects"),
            Column::unit("Unmitigated", "%"),
            Column::unit("Redundancy", "%"),
            Column::plain("Repaired"),
            Column::plain("Remapped"),
            Column::unit("Red.+fine-tune", "%"),
        ]);
        for row in &rows {
            table.push_row(vec![
                Scalar::Float(row.rate, 2),
                Scalar::Int(row.step as i64),
                Scalar::Int(row.defects as i64),
                Scalar::Float(100.0 * row.unmitigated, 1),
                Scalar::Float(100.0 * row.redundancy, 1),
                Scalar::text(if row.repaired { "yes" } else { "no" }),
                Scalar::Int(row.remapped as i64),
                Scalar::Float(100.0 * row.fine_tuned, 1),
            ]);
        }
        report.table(table);
        report.blank().note(format!(
            "mean accuracy: unmitigated {:.1} %, redundancy + fine-tune {:.1} %; \
             machine-readable sweep written to {}",
            100.0 * mean_unmitigated,
            100.0 * mean_fine_tuned,
            REPORT_PATH
        ));
        Ok(report)
    }
}

/// The geometry the sweep runs at: the context's array, grown by a whole
/// mux group of spare columns when it does not provide spares of its own.
fn mitigated_geometry(base: ArrayConfig) -> Result<ArrayConfig, BenchError> {
    let array = if base.spare_columns > 0 {
        base
    } else {
        base.with_spares((2 * base.column_mux as u16).min(base.columns))
    };
    array.validate()?;
    Ok(array)
}

/// The probe dataset: 4 classes of 1×8×8 images, matching the probe CNN.
fn probe_dataset(quick: bool, seed: u64) -> Dataset {
    Dataset::synthetic(SyntheticImageConfig {
        classes: 4,
        image_size: 8,
        channels: 1,
        train_per_class: if quick { 10 } else { 24 },
        test_per_class: if quick { 6 } else { 16 },
        noise_level: 0.1,
        seed: seed ^ 0x00fa_175e,
    })
}

/// Trains the float CNN probe the sweep quantizes at every grid point.
fn trained_probe(dataset: &Dataset, quick: bool, seed: u64) -> Result<Network, BenchError> {
    use optima_dnn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x0fa0_175e);
    let mut network = Network::new(vec![
        Box::new(Conv2d::new(1, 4, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(4 * 4 * 4, 4, &mut rng)),
    ]);
    Trainer::new(TrainingConfig {
        epochs: if quick { 6 } else { 12 },
        learning_rate: 0.05,
        learning_rate_decay: 0.95,
    })
    .train(&mut network, dataset)?;
    Ok(network)
}

/// Test accuracy of the probe quantized through a multiplier's product
/// table.  Evaluation runs serially (`threads = 1`) because the callers fan
/// out at the grid level already.
fn table_accuracy(
    table: MultiplierTable,
    label: String,
    network: &Network,
    dataset: &Dataset,
) -> Result<f64, BenchError> {
    let products: Arc<dyn ProductTable> = Arc::new(InMemoryProducts::new(table, label));
    let quantized = QuantizedNetwork::from_network(network, products)?;
    Ok(evaluate_batched(&quantized, dataset, 1)?.top1)
}

/// The pristine (no fault state) baseline accuracy.
fn pristine_accuracy(
    pristine: &InSramMultiplier,
    at: OperatingPoint,
    network: &Network,
    dataset: &Dataset,
    array: &ArrayConfig,
) -> Result<f64, BenchError> {
    let table = MultiplierTable::from_multiplier(pristine, at)?;
    table_accuracy(table, array.describe(), network, dataset)
}

/// Evaluates all three arms of one `(rate, step)` grid point.
#[allow(clippy::too_many_arguments)]
fn evaluate_grid_point(
    pristine: &InSramMultiplier,
    nominal: OperatingPoint,
    array: &ArrayConfig,
    network: &Network,
    dataset: &Dataset,
    trajectory: &LifetimeTrajectory,
    rate: f64,
    step: usize,
    item_seed: u64,
    probe_seed: u64,
    quick: bool,
) -> Result<SweepRow, BenchError> {
    let map = DefectMap::sample(array, &DefectModel::uniform(rate, item_seed))?;
    let defects = map.counts().total();
    let point = trajectory.at(step);
    // Self-heating raises the junction temperature; V_th aging and
    // retention growth ride in through the fault state.
    let at = OperatingPoint {
        vdd: nominal.vdd,
        temperature: Celsius(nominal.temperature.0 + point.temperature_delta.0),
    };

    // Arm 1: the defects apply as-is.
    let unmitigated_state =
        FaultState::unmitigated(array, map.clone(), STORED_ROW)?.with_lifetime(&point);
    let unmitigated_table =
        MultiplierTable::from_multiplier(&pristine.clone().with_faults(unmitigated_state)?, at)?;
    let unmitigated = table_accuracy(
        unmitigated_table.clone(),
        format!("unmitigated r={rate}"),
        network,
        dataset,
    )?;

    // Arm 2: replica-column redundancy; an unrepairable map (spares
    // exhausted) degrades to the unmitigated arm and is reported as such.
    let (redundancy_table, repaired, remapped) =
        match FaultState::with_redundancy(array, map, STORED_ROW) {
            Ok(state) => {
                let remapped = state.remap().remapped();
                let state = state.with_lifetime(&point);
                let table =
                    MultiplierTable::from_multiplier(&pristine.clone().with_faults(state)?, at)?;
                (table, true, remapped)
            }
            Err(ImcError::UnrepairableDefect { .. }) => (unmitigated_table, false, 0),
            Err(other) => return Err(other.into()),
        };
    let redundancy = table_accuracy(
        redundancy_table.clone(),
        format!("redundancy r={rate}"),
        network,
        dataset,
    )?;

    // Arm 3: noise-aware fine-tuning of the head on top of arm 2.  The
    // probe training is deterministic in its seed, so retraining rebuilds
    // the shared float network's exact weights as a private mutable copy.
    let products: Arc<dyn ProductTable> = Arc::new(InMemoryProducts::new(
        redundancy_table,
        format!("redundancy+ft r={rate}"),
    ));
    let mut tuned = trained_probe(dataset, quick, probe_seed)?;
    Trainer::new(TrainingConfig {
        epochs: if quick { 3 } else { 6 },
        learning_rate: 0.03,
        learning_rate_decay: 0.9,
    })
    .fine_tune_quantized(&mut tuned, dataset, &products)?;
    let quantized = QuantizedNetwork::from_network(&tuned, products)?;
    let fine_tuned = evaluate_batched(&quantized, dataset, 1)?.top1;

    Ok(SweepRow {
        rate,
        step,
        defects,
        unmitigated,
        redundancy,
        repaired,
        remapped,
        fine_tuned,
    })
}

/// Writes the machine-readable sweep (`optima-reliability.v1`).
fn write_json_report(
    rows: &[SweepRow],
    baseline: f64,
    mean_unmitigated: f64,
    mean_fine_tuned: f64,
    quick: bool,
) -> Result<(), BenchError> {
    let document = Json::object(vec![
        ("schema", Json::str("optima-reliability.v1")),
        ("report", Json::str("fault-sweep")),
        ("generated_by", Json::str("fault_sweep")),
        ("quick_mode", Json::Bool(quick)),
        ("pristine_accuracy", Json::Fixed(baseline, 4)),
        (
            "gates",
            Json::object(vec![
                ("zero_defect_matches_pristine", Json::Bool(true)),
                ("accuracy_floor", Json::Fixed(mean_unmitigated, 4)),
                ("mean_mitigated_accuracy", Json::Fixed(mean_fine_tuned, 4)),
                (
                    "mitigation_holds_floor",
                    Json::Bool(mean_fine_tuned >= mean_unmitigated),
                ),
            ]),
        ),
        (
            "rows",
            Json::Array(
                rows.iter()
                    .map(|row| {
                        Json::object(vec![
                            ("defect_rate", Json::Fixed(row.rate, 3)),
                            ("lifetime_step", Json::Int(row.step as i64)),
                            ("defects", Json::Int(row.defects as i64)),
                            ("unmitigated_accuracy", Json::Fixed(row.unmitigated, 4)),
                            ("redundancy_accuracy", Json::Fixed(row.redundancy, 4)),
                            ("repaired", Json::Bool(row.repaired)),
                            ("remapped_columns", Json::Int(row.remapped as i64)),
                            ("fine_tuned_accuracy", Json::Fixed(row.fine_tuned, 4)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(REPORT_PATH, document.render()).map_err(|source| BenchError::Io {
        path: REPORT_PATH.to_string(),
        source,
    })?;
    Ok(())
}
