//! Ablation — ADC sampling time τ0 vs. accuracy and energy.
//!
//! Section III-1: small τ0 keeps the pass transistors in saturation but
//! shrinks the voltage swing (worse SNR); large τ0 increases swing and energy
//! and eventually pushes the discharge into the linear region.  This ablation
//! sweeps τ0 beyond the paper's three values.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_imc::metrics::evaluate_multiplier;
use optima_imc::multiplier::{InSramMultiplier, MultiplierConfig};
use optima_math::units::{Seconds, Volts};

pub struct AblationTau0;

impl Experiment for AblationTau0 {
    fn name(&self) -> &'static str {
        "ablation_tau0"
    }

    fn description(&self) -> &'static str {
        "tau0 sweep beyond the paper's grid: accuracy, energy and FOM trade-off"
    }

    fn paper_ref(&self) -> &'static str {
        "ablation (Sec. III-1)"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let models = ctx.models();
        let mut report = Report::new();
        report
            .heading(
                1,
                "Ablation — tau0 sweep at V_DAC,0 = 0.3 V, V_DAC,FS = 1.0 V",
            )
            .blank();
        let mut table = Table::new(vec![
            Column::unit("tau0", "ns"),
            Column::unit("eps_mul", "LSB"),
            Column::unit("E_mul", "fJ"),
            Column::unit("sigma@max", "mV"),
            Column::plain("FOM"),
        ]);
        for tau0_ps in [80, 120, 160, 200, 240] {
            let tau0 = Seconds(tau0_ps as f64 * 1e-12);
            let config = MultiplierConfig::new(tau0, Volts(0.3), Volts(1.0));
            let multiplier = InSramMultiplier::new(models.clone(), config)?;
            let metrics = evaluate_multiplier(&multiplier)?;
            table.push_row(vec![
                Scalar::Float(tau0.0 * 1e9, 2),
                Scalar::Float(metrics.epsilon_mul, 2),
                Scalar::Float(metrics.energy_per_multiply.0, 1),
                Scalar::Float(metrics.sigma_at_max_discharge.0 * 1e3, 2),
                Scalar::Float(metrics.figure_of_merit(), 4),
            ]);
        }
        report.table(table);
        report
            .blank()
            .note("Energy grows monotonically with tau0 while the accuracy changes little —")
            .note("the paper's observation that tau0 'has minimal influence on accuracy'.");
        Ok(report)
    }
}
