//! Fig. 7 — design-space exploration of the 4-bit in-SRAM multiplier.
//!
//! Sweeps the paper's 48 design corners (τ0 × V_DAC,0 × V_DAC,FS) with the
//! OPTIMA models and prints the two panels of Fig. 7: error and energy as a
//! function of V_DAC,FS for several V_DAC,0 values (left, τ0 = 0.16 ns) and
//! as a function of τ0 for several V_DAC,FS values (right, V_DAC,0 = 0.4 V).
//!
//! When the context selects a non-default [`ArrayConfig`], the array geometry
//! becomes a fourth sweep axis co-explored with the electrical parameters
//! (the paper macro plus the selected geometry), and a third panel compares
//! the best corners per geometry.  At the default geometry the output is the
//! paper figure, unchanged.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_circuit::array::ArrayConfig;
use optima_imc::dse::{DesignSpace, DesignSpaceExplorer};

pub struct Fig7Dse;

impl Experiment for Fig7Dse {
    fn name(&self) -> &'static str {
        "fig7_dse"
    }

    fn description(&self) -> &'static str {
        "48-corner design-space exploration: error/energy vs. DAC span and tau0"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 7"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let models = ctx.models();
        // The sweep is error-strict (a failing corner aborts the run naming
        // the corner — corners are never silently dropped) and bit-identical
        // at any thread count.
        let explorer = DesignSpaceExplorer::new(models).with_threads(ctx.threads());
        let selected = ctx.array();
        let space = if selected.is_paper() {
            DesignSpace::paper_sweep()
        } else {
            // Geometry joins the electrical axes: every (tau0, DAC) corner is
            // evaluated on both the paper macro and the selected array.
            DesignSpace::paper_sweep().with_arrays(vec![ArrayConfig::default(), selected])
        };
        let mut report = Report::new();
        report
            .heading(
                1,
                format!(
                    "Fig. 7 — design-space exploration ({} corners, {} worker threads)",
                    space.len(),
                    ctx.effective_threads()
                ),
            )
            .blank();
        let results = explorer.explore(&space)?;
        if results.len() != space.len() {
            return Err(BenchError::Failed(format!(
                "error-strict sweep must cover every corner: got {} of {}",
                results.len(),
                space.len()
            )));
        }

        report
            .heading(
                2,
                "Left panel: sweep of V_DAC,FS for each V_DAC,0 (tau0 = 0.16 ns)",
            )
            .blank();
        let mut left = Table::new(vec![
            Column::unit("V_DAC,0", "V"),
            Column::unit("V_DAC,FS", "V"),
            Column::unit("avg error", "LSB"),
            Column::unit("avg energy/op", "fJ"),
        ]);
        for result in &results {
            if result.point.array.is_paper() && (result.point.tau0.0 - 0.16e-9).abs() < 1e-15 {
                left.push_row(vec![
                    Scalar::Float(result.point.vdac_zero.0, 1),
                    Scalar::Float(result.point.vdac_full_scale.0, 1),
                    Scalar::Float(result.metrics.epsilon_mul, 2),
                    Scalar::Float(result.metrics.energy_per_multiply.0, 2),
                ]);
            }
        }
        report.table(left);

        report
            .blank()
            .heading(
                2,
                "Right panel: sweep of tau0 for each V_DAC,FS (V_DAC,0 = 0.4 V)",
            )
            .blank();
        let mut right = Table::new(vec![
            Column::unit("tau0", "ns"),
            Column::unit("V_DAC,FS", "V"),
            Column::unit("avg error", "LSB"),
            Column::unit("avg energy/op", "fJ"),
        ]);
        for result in &results {
            if result.point.array.is_paper() && (result.point.vdac_zero.0 - 0.4).abs() < 1e-12 {
                right.push_row(vec![
                    Scalar::Float(result.point.tau0.0 * 1e9, 2),
                    Scalar::Float(result.point.vdac_full_scale.0, 1),
                    Scalar::Float(result.metrics.epsilon_mul, 2),
                    Scalar::Float(result.metrics.energy_per_multiply.0, 2),
                ]);
            }
        }
        report.table(right);

        if !selected.is_paper() {
            report
                .blank()
                .heading(2, "Geometry co-exploration: best corner per array")
                .blank();
            let mut best = Table::new(vec![
                Column::plain("Geometry"),
                Column::unit("tau0", "ns"),
                Column::unit("V_DAC,0", "V"),
                Column::unit("V_DAC,FS", "V"),
                Column::unit("min avg error", "LSB"),
                Column::unit("energy/op", "fJ"),
            ]);
            for array in [ArrayConfig::default(), selected] {
                let winner = results
                    .iter()
                    .filter(|r| r.point.array == array)
                    .min_by(|a, b| a.metrics.epsilon_mul.total_cmp(&b.metrics.epsilon_mul))
                    .ok_or_else(|| {
                        BenchError::Failed(format!(
                            "co-explored sweep has no corners for geometry {}",
                            array.describe()
                        ))
                    })?;
                best.push_row(vec![
                    Scalar::text(array.describe()),
                    Scalar::Float(winner.point.tau0.0 * 1e9, 2),
                    Scalar::Float(winner.point.vdac_zero.0, 1),
                    Scalar::Float(winner.point.vdac_full_scale.0, 1),
                    Scalar::Float(winner.metrics.epsilon_mul, 2),
                    Scalar::Float(winner.metrics.energy_per_multiply.0, 2),
                ]);
            }
            report.table(best);
        }

        report
            .blank()
            .note("Expected shape (paper): higher V_DAC,FS costs linearly more energy but improves")
            .note(
                "accuracy in most cases; raising V_DAC,0 or tau0 also costs energy, where V_DAC,0",
            )
            .note("helps the error and tau0 has little accuracy influence.");
        Ok(report)
    }
}
