//! Fig. 4 — BLB discharge non-idealities.
//!
//! (a) BLB voltage over time for several word-line voltages (including a
//!     sub-threshold one, showing the residual discharge), and
//! (b) the nonlinear word-line-voltage dependency sampled at t = τ0.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_circuit::prelude::*;
use optima_circuit::pvt::linspace;
use optima_core::sweep::par_map_sweep;

pub struct Fig4Nonideality;

impl Experiment for Fig4Nonideality {
    fn name(&self) -> &'static str {
        "fig4_nonideality"
    }

    fn description(&self) -> &'static str {
        "BLB discharge waveforms and the nonlinear word-line-voltage dependency"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 4"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let tech = Technology::tsmc65_like();
        let sim = TransientSimulator::new(tech.clone());
        let pvt = PvtConditions::nominal(&tech);
        let steps = if ctx.is_fast() { 100 } else { 400 };
        let threads = ctx.threads();
        let mut report = Report::new();

        report
            .heading(1, "Fig. 4a — BLB voltage over time (V_BL [V])")
            .blank();
        let wordlines = [0.3, 0.5, 0.7, 0.85, 1.0];
        let times = linspace(0.0, 2.0e-9, 11);
        let mut columns = vec![Column::unit("t", "ns")];
        columns.extend(
            wordlines
                .iter()
                .map(|v| Column::plain(format!("V_WL={v:.2} V"))),
        );
        let mut table = Table::new(columns);
        // One transient simulation per word-line voltage, fanned out over the
        // error-strict sweep engine (deterministic order at any thread count).
        let waveforms: Vec<Waveform> = par_map_sweep(&wordlines, threads, |_, &v_wl| {
            sim.discharge_waveform(
                &DischargeStimulus {
                    word_line_voltage: Volts(v_wl),
                    duration: Seconds(2e-9),
                    time_steps: steps,
                    ..DischargeStimulus::default()
                },
                &pvt,
                &MismatchSample::none(),
            )
        })
        .map_err(|err| {
            BenchError::Failed(format!(
                "Fig. 4a word-line sweep failed at index {}: {}",
                err.index, err.source
            ))
        })?;
        for &t in &times {
            let mut row = vec![Scalar::Float(t * 1e9, 2)];
            for waveform in &waveforms {
                row.push(Scalar::Float(waveform.sample_at(Seconds(t))?.0, 4));
            }
            table.push_row(row);
        }
        report.table(table);

        report
            .blank()
            .heading(
                1,
                "Fig. 4b — word-line voltage dependency at t = τ0 = 0.5 ns",
            )
            .blank();
        let mut table = Table::new(vec![
            Column::unit("V_WL", "V"),
            Column::unit("V_BL(τ0)", "V"),
            Column::unit("ΔV_BL", "mV"),
        ]);
        let grid = linspace(0.4, 1.0, 13);
        let sampled: Vec<f64> = par_map_sweep(&grid, threads, |_, &v_wl| {
            sim.discharge_waveform(
                &DischargeStimulus {
                    word_line_voltage: Volts(v_wl),
                    duration: Seconds(0.6e-9),
                    time_steps: steps,
                    ..DischargeStimulus::default()
                },
                &pvt,
                &MismatchSample::none(),
            )
            .and_then(|waveform| waveform.sample_at(Seconds(0.5e-9)))
            .map(|v| v.0)
        })
        .map_err(|err| {
            BenchError::Failed(format!(
                "Fig. 4b word-line sweep failed at index {}: {}",
                err.index, err.source
            ))
        })?;
        for (&v_wl, &v) in grid.iter().zip(sampled.iter()) {
            table.push_row(vec![
                Scalar::Float(v_wl, 2),
                Scalar::Float(v, 4),
                Scalar::Float((pvt.vdd.0 - v) * 1e3, 1),
            ]);
        }
        report.table(table);
        report
            .blank()
            .note("The discharge is visibly nonlinear in V_WL (quadratic device current)")
            .note("and a small residual discharge remains below the threshold voltage.");
        Ok(report)
    }
}
