//! Ablation — polynomial degrees of the Eq. 3 discharge model.
//!
//! The paper fixes `p4(V_od) · p2(t)`.  This ablation sweeps both degrees and
//! reports the training residual, showing why degree (4, 2) is a good
//! accuracy/complexity trade-off.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_circuit::technology::Technology;
use optima_core::calibration::{CalibrationConfig, Calibrator, ModelDegrees};

pub struct AblationPolyDegree;

impl Experiment for AblationPolyDegree {
    fn name(&self) -> &'static str {
        "ablation_poly_degree"
    }

    fn description(&self) -> &'static str {
        "Eq. 3 polynomial-degree sweep: training RMS vs. coefficient count"
    }

    fn paper_ref(&self) -> &'static str {
        "ablation (Eq. 3)"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let technology = Technology::tsmc65_like();
        let base = if ctx.is_fast() {
            CalibrationConfig::fast()
        } else {
            CalibrationConfig::default()
        };

        let mut report = Report::new();
        report
            .heading(
                1,
                "Ablation — Eq. 3 polynomial degrees vs. training RMS error",
            )
            .blank();
        let mut table = Table::new(vec![
            Column::plain("deg(V_od)"),
            Column::plain("deg(t)"),
            Column::unit("basic discharge RMS", "mV"),
            Column::plain("coefficients"),
        ]);
        for overdrive_degree in 1..=5 {
            for time_degree in 1..=3 {
                let config = CalibrationConfig {
                    degrees: ModelDegrees {
                        overdrive: overdrive_degree,
                        time: time_degree,
                        ..ModelDegrees::default()
                    },
                    ..base.clone()
                };
                let outcome = Calibrator::new(technology.clone(), config).run()?;
                table.push_row(vec![
                    Scalar::Int(overdrive_degree as i64),
                    Scalar::Int(time_degree as i64),
                    Scalar::Float(outcome.report().basic_discharge_rms_mv, 3),
                    Scalar::Int(((overdrive_degree + 1) * (time_degree + 1)) as i64),
                ]);
            }
        }
        report.table(table);
        report
            .blank()
            .note("The error drops steeply up to degree (4, 2) — the paper's choice — and")
            .note("flattens beyond it, while the coefficient count keeps growing.");
        Ok(report)
    }
}
