//! Fig. 1 — state-of-the-art in-SRAM multiplication design space.
//!
//! Prints the published design points ([8], [14], [15], [16]) that the paper
//! compares by energy per MAC, bit width and clock frequency.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_imc::sota::published_design_points;

pub struct Fig1Sota;

impl Experiment for Fig1Sota {
    fn name(&self) -> &'static str {
        "fig1_sota"
    }

    fn description(&self) -> &'static str {
        "Published in-SRAM multiplication design points (energy, bit width, clock)"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 1"
    }

    fn run(&self, _ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let mut report = Report::new();
        report
            .heading(
                1,
                "Fig. 1 — state-of-the-art in-SRAM multiplication design space",
            )
            .blank();
        let mut table = Table::new(vec![
            Column::plain("Reference"),
            Column::unit("Energy", "pJ"),
            Column::plain("Bit width"),
            Column::unit("Clock", "MHz"),
            Column::plain("Description"),
        ]);
        for point in published_design_points() {
            table.push_row(vec![
                Scalar::text(point.reference.to_string()),
                Scalar::Float(point.energy_pj, 3),
                Scalar::Int(point.bit_width as i64),
                Scalar::Float(point.clock_mhz, 0),
                Scalar::text(point.description.to_string()),
            ]);
        }
        report.table(table);
        let min_energy = published_design_points()
            .iter()
            .map(|p| p.energy_pj)
            .fold(f64::INFINITY, f64::min);
        report
            .blank()
            .note("MAC energy reduction potential: lowest published energy is")
            .metric_line(
                "min_published_energy_pj",
                Scalar::Float(min_energy, 3),
                Some("pJ"),
                format!("{min_energy:.3} pJ; bit widths remain limited to 4-8 bits."),
            );
        Ok(report)
    }
}
