//! Fig. 6 — OPTIMA discharge/energy model evaluation.
//!
//! Calibrates the models against the golden-reference circuit simulator and
//! reports the held-out RMS modeling errors of all six models (the paper
//! reports 0.76 mV, 0.88 mV, 0.76 mV, 0.59 mV, 0.15 fJ and 0.74 fJ for its
//! TSMC 65 nm reference; ours differ in absolute value because the golden
//! reference is a different simulator, but they must stay well below an ADC
//! LSB).

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_core::evaluation::ModelEvaluator;

pub struct Fig6ModelEval;

impl Experiment for Fig6ModelEval {
    fn name(&self) -> &'static str {
        "fig6_model_eval"
    }

    fn description(&self) -> &'static str {
        "Training residuals and held-out RMS errors of the six fitted models (Eqs. 3-8)"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 6"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let fast = ctx.is_fast();
        let (technology, outcome) = ctx.calibration().clone();
        let cal_report = *outcome.report();
        let mut report = Report::new();

        report
            .heading(1, "Fig. 6 — OPTIMA model calibration and evaluation")
            .blank()
            .note(format!(
                "Calibration used {} transient circuit simulations and {} training samples.",
                cal_report.circuit_simulations, cal_report.training_samples
            ))
            .blank()
            .heading(2, "Training residuals")
            .blank();

        let mut training = Table::new(vec![Column::plain("Model"), Column::plain("Training RMS")]);
        for (model, rms, unit) in [
            (
                "basic discharge (Eq. 3)",
                cal_report.basic_discharge_rms_mv,
                "mV",
            ),
            ("supply (Eq. 4)", cal_report.supply_rms_mv, "mV"),
            ("temperature (Eq. 5)", cal_report.temperature_rms_mv, "mV"),
            (
                "mismatch sigma (Eq. 6)",
                cal_report.mismatch_sigma_rms_mv,
                "mV",
            ),
            ("write energy (Eq. 7)", cal_report.write_energy_rms_fj, "fJ"),
            (
                "discharge energy (Eq. 8)",
                cal_report.discharge_energy_rms_fj,
                "fJ",
            ),
        ] {
            training.push_row(vec![
                Scalar::text(model),
                Scalar::Suffixed(rms, 3, if unit == "mV" { " mV" } else { " fJ" }),
            ]);
        }
        report.table(training);

        let evaluator = ModelEvaluator::new(technology, outcome.into_models())
            .with_reference_time_steps(if fast { 150 } else { 400 });
        let grid = if fast { 4 } else { 8 };
        let mc = if fast { 20 } else { 100 };
        let held_out = evaluator.rms_errors(grid, mc)?;

        report
            .blank()
            .heading(
                2,
                format!(
                    "Held-out RMS errors (Fig. 6 equivalent; '{}' vs '{}' through one DischargeBackend interface)",
                    evaluator.reference_backend().backend_name(),
                    evaluator.fitted_backend().backend_name()
                ),
            )
            .blank();
        let mut table = Table::new(vec![
            Column::plain("Model"),
            Column::plain("Held-out RMS"),
            Column::plain("Paper (TSMC 65 nm)"),
        ]);
        for (model, rms, suffix, paper) in [
            (
                "basic discharge (Eq. 3)",
                held_out.basic_discharge_mv,
                " mV",
                "0.76 mV",
            ),
            ("supply (Eq. 4)", held_out.supply_mv, " mV", "0.88 mV"),
            (
                "temperature (Eq. 5)",
                held_out.temperature_mv,
                " mV",
                "0.76 mV",
            ),
            (
                "mismatch sigma (Eq. 6)",
                held_out.mismatch_sigma_mv,
                " mV",
                "0.59 mV",
            ),
            (
                "write energy (Eq. 7)",
                held_out.write_energy_fj,
                " fJ",
                "0.15 fJ",
            ),
            (
                "discharge energy (Eq. 8)",
                held_out.discharge_energy_fj,
                " fJ",
                "0.74 fJ",
            ),
        ] {
            table.push_row(vec![
                Scalar::text(model),
                Scalar::Suffixed(rms, 3, suffix),
                Scalar::text(paper),
            ]);
        }
        report.table(table);
        let worst = held_out.worst_voltage_error_mv();
        report.blank().metric_line(
            "worst_voltage_model_rms_mv",
            Scalar::Float(worst, 3),
            Some("mV"),
            format!("Worst voltage-model RMS error: {worst:.3} mV (paper headline: 0.88 mV)."),
        );
        Ok(report)
    }
}
