//! Section V speed-up claim — OPTIMA models vs. circuit simulation.
//!
//! The paper reports a ~101× speed-up for iterating over the input space and
//! design corners and 28.1× for mismatch Monte Carlo sampling compared to
//! Cadence Virtuoso.  Here the comparison is against our own ODE-based golden
//! reference, so the absolute factor differs, but the same mechanism (cheap
//! polynomial evaluation replacing transient integration) is measured.

use super::{BenchError, Experiment, ExperimentContext};
use crate::report::{Column, Report, Scalar, Table};
use optima_core::evaluation::ModelEvaluator;

pub struct Speedup;

impl Experiment for Speedup {
    fn name(&self) -> &'static str {
        "speedup"
    }

    fn description(&self) -> &'static str {
        "Wall-clock speed-up of the fitted models over the golden circuit reference"
    }

    fn paper_ref(&self) -> &'static str {
        "Section V"
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Result<Report, BenchError> {
        let fast = ctx.is_fast();
        // Starts from the persistent calibration snapshot when one exists —
        // the expensive circuit sweeps only run on a cold cache.
        let (technology, outcome) = ctx.calibration().clone();
        // The circuit-reference side of both measurements fans out over the
        // sweep engine, so the reported factor is the wall-clock advantage
        // over the *parallel* golden reference.  Both sides answer the
        // identical DischargeBackend waveform queries.
        let evaluator = ModelEvaluator::new(technology, outcome.into_models())
            .with_threads(ctx.threads())
            .with_reference_time_steps(if fast { 150 } else { 400 });

        let (wordlines, times, mc) = if fast { (8, 8, 50) } else { (16, 16, 300) };
        let sweep = evaluator.measure_speedup(wordlines, times)?;
        let monte_carlo = evaluator.measure_monte_carlo_speedup(mc)?;

        let mut report = Report::new();
        report
            .heading(
                1,
                "Section V — simulation speed-up of OPTIMA vs. circuit simulation",
            )
            .note(format!(
                "(backends '{}' vs '{}', one DischargeBackend interface; \
                 circuit reference parallelised over {} sweep-engine threads)",
                evaluator.reference_backend().backend_name(),
                evaluator.fitted_backend().backend_name(),
                ctx.effective_threads()
            ))
            .blank();
        let mut table = Table::new(vec![
            Column::plain("Workload"),
            Column::unit("Circuit sim", "s"),
            Column::unit("OPTIMA", "s"),
            Column::plain("Speed-up"),
            Column::plain("Paper"),
        ]);
        table.push_row(vec![
            Scalar::text(format!("input-space sweep ({} points)", sweep.evaluations)),
            Scalar::Float(sweep.circuit_seconds, 4),
            Scalar::Float(sweep.model_seconds, 6),
            Scalar::Suffixed(sweep.speedup(), 0, "x"),
            Scalar::text("~101x"),
        ]);
        table.push_row(vec![
            Scalar::text(format!(
                "mismatch Monte Carlo ({} samples)",
                monte_carlo.evaluations
            )),
            Scalar::Float(monte_carlo.circuit_seconds, 4),
            Scalar::Float(monte_carlo.model_seconds, 6),
            Scalar::Suffixed(monte_carlo.speedup(), 0, "x"),
            Scalar::text("28.1x"),
        ]);
        report.table(table);
        Ok(report)
    }
}
