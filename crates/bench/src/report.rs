//! Structured experiment reports.
//!
//! Every [`crate::experiments::Experiment`] returns a [`Report`]: an ordered
//! sequence of headings, prose notes, typed tables (columns carry units) and
//! key/scalar metrics.  Two deterministic renderers consume it:
//!
//! * [`Report::render_text`] — the human-readable form.  It reproduces the
//!   Markdown-table conventions of the original per-binary `println!`
//!   harnesses byte-for-byte (golden-tested), so the legacy shim binaries
//!   emit exactly the pre-refactor output.
//! * [`Report::to_json`] — the machine-readable form, emitted through the
//!   shared hand-rolled serializer in [`crate::json`] (the same one behind
//!   `BENCH_dnn.json`/`BENCH_analog.json`).
//!
//! Tables are *typed*: a cell is a [`Scalar`] carrying its numeric value and
//! display precision, so the JSON output exposes real numbers while the text
//! renderer prints the exact historical formatting.

use crate::json::Json;

/// One typed cell or metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// An integer, rendered via `Display`.
    Int(i64),
    /// A float rendered with a fixed number of decimals.
    Float(f64, usize),
    /// A float rendered with fixed decimals and a display suffix glued on
    /// (e.g. `102x`); the JSON form stays numeric.
    Suffixed(f64, usize, &'static str),
    /// Free-form text.
    Text(String),
}

impl Scalar {
    /// Convenience constructor for text cells.
    pub fn text(value: impl Into<String>) -> Self {
        Scalar::Text(value.into())
    }

    /// The exact text-renderer form.
    pub fn render(&self) -> String {
        match self {
            Scalar::Int(i) => i.to_string(),
            Scalar::Float(v, precision) => format!("{v:.precision$}"),
            Scalar::Suffixed(v, precision, suffix) => format!("{v:.precision$}{suffix}"),
            Scalar::Text(s) => s.clone(),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            Scalar::Int(i) => Json::Int(*i),
            Scalar::Float(v, precision) => Json::Fixed(*v, *precision),
            // The suffix often carries a per-cell unit (tables whose column
            // mixes mV and fJ rows) — keep the value numeric but preserve
            // the suffix so JSON consumers don't lose it.
            Scalar::Suffixed(v, precision, suffix) => Json::object(vec![
                ("value", Json::Fixed(*v, *precision)),
                ("suffix", Json::str(suffix.trim())),
            ]),
            Scalar::Text(s) => Json::str(s.clone()),
        }
    }
}

/// A table column: header text plus an optional unit.
///
/// The text renderer prints `header [unit]` when a unit is present — the
/// bracket convention of every table of the original harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub header: String,
    pub unit: Option<String>,
}

impl Column {
    /// A unit-less column.
    pub fn plain(header: impl Into<String>) -> Self {
        Column {
            header: header.into(),
            unit: None,
        }
    }

    /// A column with a unit, rendered as `header [unit]`.
    pub fn unit(header: impl Into<String>, unit: impl Into<String>) -> Self {
        Column {
            header: header.into(),
            unit: Some(unit.into()),
        }
    }

    fn render(&self) -> String {
        match &self.unit {
            Some(unit) => format!("{} [{}]", self.header, unit),
            None => self.header.clone(),
        }
    }
}

/// A typed table with unit-annotated columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    pub columns: Vec<Column>,
    pub rows: Vec<Vec<Scalar>>,
}

impl Table {
    /// Creates an empty table over `columns`.
    pub fn new(columns: Vec<Column>) -> Self {
        Table {
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width does not match the column count — a
    /// malformed table is an experiment bug, not a recoverable condition.
    pub fn push_row(&mut self, row: Vec<Scalar>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "table row width must match the declared columns"
        );
        self.rows.push(row);
    }

    fn render_text(&self, out: &mut String) {
        let header: Vec<String> = self.columns.iter().map(Column::render).collect();
        out.push_str(&format!("| {} |\n", header.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Scalar::render).collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
    }

    fn columns_json(&self) -> Json {
        Json::Array(
            self.columns
                .iter()
                .map(|c| {
                    Json::object(vec![
                        ("name", Json::str(c.header.clone())),
                        ("unit", c.unit.clone().map(Json::Str).unwrap_or(Json::Null)),
                    ])
                })
                .collect(),
        )
    }

    fn rows_json(&self) -> Json {
        Json::Array(
            self.rows
                .iter()
                .map(|row| Json::Array(row.iter().map(Scalar::to_json).collect()))
                .collect(),
        )
    }
}

/// How a metric appears in the text rendering (it is always in the JSON).
#[derive(Debug, Clone, PartialEq)]
pub enum MetricDisplay {
    /// `key: value unit`
    KeyValue,
    /// A verbatim line (for prose that embeds the value).
    Line(String),
    /// JSON-only; the surrounding prose is carried by separate notes.
    Hidden,
}

/// One key/scalar metric with an optional unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    pub key: String,
    pub value: Scalar,
    pub unit: Option<String>,
    pub display: MetricDisplay,
}

/// One ordered element of a report.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A Markdown heading (`#`, `##`, ... according to `level`).
    Heading {
        level: usize,
        text: String,
    },
    /// One verbatim prose line.
    Note(String),
    /// An empty line.
    Blank,
    Metric(Metric),
    Table(Table),
}

/// A structured experiment report: ordered headings, notes, metrics and
/// typed tables.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    items: Vec<Item>,
}

impl Report {
    pub fn new() -> Self {
        Report::default()
    }

    /// The ordered items (for tests and renderers).
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// A report with no items carries no evidence; the runner treats it as
    /// an experiment failure.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn heading(&mut self, level: usize, text: impl Into<String>) -> &mut Self {
        self.items.push(Item::Heading {
            level,
            text: text.into(),
        });
        self
    }

    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.items.push(Item::Note(text.into()));
        self
    }

    pub fn blank(&mut self) -> &mut Self {
        self.items.push(Item::Blank);
        self
    }

    /// A metric rendered as `key: value unit`.
    pub fn metric(
        &mut self,
        key: impl Into<String>,
        value: Scalar,
        unit: Option<&str>,
    ) -> &mut Self {
        self.items.push(Item::Metric(Metric {
            key: key.into(),
            value,
            unit: unit.map(str::to_string),
            display: MetricDisplay::KeyValue,
        }));
        self
    }

    /// A metric whose text form is the verbatim `line` (prose embedding the
    /// value); the typed value still lands in the JSON.
    pub fn metric_line(
        &mut self,
        key: impl Into<String>,
        value: Scalar,
        unit: Option<&str>,
        line: impl Into<String>,
    ) -> &mut Self {
        self.items.push(Item::Metric(Metric {
            key: key.into(),
            value,
            unit: unit.map(str::to_string),
            display: MetricDisplay::Line(line.into()),
        }));
        self
    }

    /// A JSON-only metric (the surrounding prose is carried by notes).
    pub fn hidden_metric(
        &mut self,
        key: impl Into<String>,
        value: Scalar,
        unit: Option<&str>,
    ) -> &mut Self {
        self.items.push(Item::Metric(Metric {
            key: key.into(),
            value,
            unit: unit.map(str::to_string),
            display: MetricDisplay::Hidden,
        }));
        self
    }

    pub fn table(&mut self, table: Table) -> &mut Self {
        self.items.push(Item::Table(table));
        self
    }

    /// Renders the human-readable text form; every line is `\n`-terminated.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            match item {
                Item::Heading { level, text } => {
                    out.push_str(&"#".repeat((*level).max(1)));
                    out.push(' ');
                    out.push_str(text);
                    out.push('\n');
                }
                Item::Note(text) => {
                    out.push_str(text);
                    out.push('\n');
                }
                Item::Blank => out.push('\n'),
                Item::Metric(metric) => match &metric.display {
                    MetricDisplay::KeyValue => {
                        out.push_str(&metric.key);
                        out.push_str(": ");
                        out.push_str(&metric.value.render());
                        if let Some(unit) = &metric.unit {
                            out.push(' ');
                            out.push_str(unit);
                        }
                        out.push('\n');
                    }
                    MetricDisplay::Line(line) => {
                        out.push_str(line);
                        out.push('\n');
                    }
                    MetricDisplay::Hidden => {}
                },
                Item::Table(table) => table.render_text(&mut out),
            }
        }
        out
    }

    /// The machine-readable form: an ordered item array.  Blank lines are
    /// layout, not data, and are omitted; hidden metrics are included.
    pub fn to_json(&self) -> Json {
        Json::Array(
            self.items
                .iter()
                .filter_map(|item| match item {
                    Item::Heading { level, text } => Some(Json::object(vec![
                        ("type", Json::str("heading")),
                        ("level", Json::Int(*level as i64)),
                        ("text", Json::str(text.clone())),
                    ])),
                    Item::Note(text) => Some(Json::object(vec![
                        ("type", Json::str("note")),
                        ("text", Json::str(text.clone())),
                    ])),
                    Item::Blank => None,
                    Item::Metric(metric) => Some(Json::object(vec![
                        ("type", Json::str("metric")),
                        ("key", Json::str(metric.key.clone())),
                        ("value", metric.value.to_json()),
                        (
                            "unit",
                            metric.unit.clone().map(Json::Str).unwrap_or(Json::Null),
                        ),
                    ])),
                    Item::Table(table) => Some(Json::object(vec![
                        ("type", Json::str("table")),
                        ("columns", table.columns_json()),
                        ("rows", table.rows_json()),
                    ])),
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_matches_the_legacy_table_conventions() {
        let mut table = Table::new(vec![Column::unit("t", "ns"), Column::plain("VDD=0.9 V")]);
        table.push_row(vec![Scalar::Float(0.5, 1), Scalar::Float(0.8149, 4)]);
        let mut report = Report::new();
        report
            .heading(1, "Fig. X — demo")
            .blank()
            .table(table)
            .blank()
            .note("closing prose.");
        assert_eq!(
            report.render_text(),
            concat!(
                "# Fig. X — demo\n",
                "\n",
                "| t [ns] | VDD=0.9 V |\n",
                "|---|---|\n",
                "| 0.5 | 0.8149 |\n",
                "\n",
                "closing prose.\n"
            )
        );
    }

    #[test]
    fn metric_display_modes() {
        let mut report = Report::new();
        report
            .metric("worst error", Scalar::Float(0.88, 2), Some("mV"))
            .metric_line(
                "speedup",
                Scalar::Suffixed(4.0, 0, "x"),
                None,
                "went 4x faster",
            )
            .hidden_metric("samples", Scalar::Int(100), None);
        assert_eq!(
            report.render_text(),
            "worst error: 0.88 mV\nwent 4x faster\n"
        );
        // All three metrics are present in the JSON.
        match report.to_json() {
            Json::Array(items) => assert_eq!(items.len(), 3),
            other => panic!("expected an array, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_are_rejected() {
        let mut table = Table::new(vec![Column::plain("a"), Column::plain("b")]);
        table.push_row(vec![Scalar::Int(1)]);
    }
}
