//! Shared plumbing for the experiment harnesses and Criterion benches.
//!
//! Every figure, table and ablation of the paper is an
//! [`experiments::Experiment`] registered in [`experiments::registry`] (see
//! DESIGN.md for the per-experiment index) and driven by the `optima` CLI
//! binary; the legacy per-experiment binaries in `src/bin/` are thin shims
//! over the same registry.  This library additionally provides the pieces
//! they share: model calibration (snapshot-cached), the three Table I corner
//! configurations, structured [`report::Report`]s with text/JSON renderers,
//! and the naive reference forward pass used by the perf benches.

use optima_circuit::array::ArrayConfig;
use optima_circuit::technology::Technology;
use optima_core::calibration::{CalibrationConfig, CalibrationOutcome, Calibrator};
use optima_core::model::suite::ModelSuite;
use optima_core::snapshot;
use optima_dnn::layers::{Conv2d, Dense, ResidualBlock};
use optima_dnn::multiplier::ProductTable;
use optima_dnn::network::Network;
use optima_dnn::{reference, Tensor};
use optima_imc::multiplier::MultiplierConfig;
use std::path::PathBuf;
use std::sync::Arc;

pub mod experiments;
pub mod json;
pub mod report;
pub mod serving;

/// Environment variable controlling the calibration-snapshot cache:
/// unset → cache under `target/optima/`, `0`/`off` → disabled,
/// anything else → cache directory.
pub const CALIBRATION_CACHE_ENV_VAR: &str = "OPTIMA_CALIBRATION_CACHE";

/// Directory of the calibration-snapshot cache, or `None` when disabled via
/// [`CALIBRATION_CACHE_ENV_VAR`].
///
/// The default lives under the workspace `target/` directory (resolved
/// relative to this crate's manifest, so binaries and tests agree on the
/// location regardless of their working directory) and is therefore swept
/// away by `cargo clean` like every other build artifact.
pub fn calibration_cache_dir() -> Option<PathBuf> {
    match std::env::var(CALIBRATION_CACHE_ENV_VAR) {
        // An empty value is treated like an unset variable, not as a cache
        // directory — `OPTIMA_CALIBRATION_CACHE= cmd` must never litter the
        // working directory with snapshots.
        Err(_) => Some(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/optima")),
        Ok(value) if value.trim().is_empty() => {
            Some(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/optima"))
        }
        Ok(value) if value == "0" || value.eq_ignore_ascii_case("off") => None,
        Ok(value) => Some(PathBuf::from(value)),
    }
}

/// Path of the calibration snapshot for the fast or full grid at the paper's
/// default array geometry, when caching is enabled.
pub fn calibration_snapshot_path(fast: bool) -> Option<PathBuf> {
    calibration_snapshot_path_for(fast, &ArrayConfig::default())
}

/// Path of the calibration snapshot for the fast or full grid at an
/// arbitrary array geometry, when caching is enabled.
///
/// The default geometry keeps the historical file names
/// (`calibration-{fast,full}.v1.snap`); other geometries get a
/// geometry-tagged name so differently-shaped snapshots coexist in the same
/// cache directory.
pub fn calibration_snapshot_path_for(fast: bool, array: &ArrayConfig) -> Option<PathBuf> {
    let grid = if fast { "fast" } else { "full" };
    let name = if array.is_paper() {
        format!("calibration-{grid}.v1.snap")
    } else {
        format!(
            "calibration-{grid}.{}x{}-int{}-s{}-m{}.v1.snap",
            array.rows, array.columns, array.operand_bits, array.slice_bits, array.column_mux
        )
    };
    calibration_cache_dir().map(|dir| dir.join(name))
}

/// Calibrates the OPTIMA models against the golden-reference simulator,
/// starting from a persistent calibration snapshot when one is available.
///
/// With `fast = true` a coarser sweep is used (for tests and smoke runs);
/// otherwise the default calibration grids are used.  The first call saves a
/// versioned snapshot under `target/optima/` (see
/// [`calibration_snapshot_path`]); subsequent calls — including every
/// experiment binary — load it in milliseconds instead of re-running the
/// circuit sweeps.  The snapshot is invalidated automatically when the
/// schema version, the technology parameters or the calibration grids
/// change (fingerprint checks in [`optima_core::snapshot`]), and any
/// load failure silently falls back to recalibration, so the cache can
/// never change results: loads are bit-exact.
///
/// # Panics
///
/// Panics if calibration fails, which would indicate a bug in the fitting
/// pipeline rather than a recoverable user error.
pub fn calibrate(fast: bool) -> (Technology, CalibrationOutcome) {
    calibrate_for(fast, &ArrayConfig::default())
}

/// Geometry-aware variant of [`calibrate`]: the array's row count sets the
/// simulated bit-line load (`cells_on_bitline`), and the snapshot is keyed
/// by the full geometry through both its file name
/// ([`calibration_snapshot_path_for`]) and the config fingerprint inside it
/// — a stale 16×4 snapshot can never silently serve an INT8 run.
///
/// At the default geometry this is exactly [`calibrate`]: the paper's 16
/// rows equal the calibration default, so the models (and all downstream
/// outputs) are byte-identical.
///
/// # Panics
///
/// Panics if calibration fails, which would indicate a bug in the fitting
/// pipeline rather than a recoverable user error.
pub fn calibrate_for(fast: bool, array: &ArrayConfig) -> (Technology, CalibrationOutcome) {
    let technology = Technology::tsmc65_like();
    let mut config = if fast {
        CalibrationConfig::fast()
    } else {
        CalibrationConfig::default()
    };
    // The rows are the cells loading every bit-line discharge the golden
    // reference simulates; re-fitting against the actual load is what makes
    // a tall array's calibration differ from the paper's 16-row macro.
    config.cells_on_bitline = array.rows as usize;
    let path = calibration_snapshot_path_for(fast, array);
    if let Some(path) = &path {
        if let Ok(outcome) = snapshot::load(path, &technology, &config, array) {
            return (technology, outcome);
        }
    }
    let outcome = Calibrator::new(technology.clone(), config.clone())
        .run()
        .expect("model calibration must succeed");
    if let Some(path) = &path {
        if let Err(err) = snapshot::save(path, &outcome, &technology, &config, array) {
            eprintln!("warning: could not save calibration snapshot: {err}");
        }
    }
    (technology, outcome)
}

/// Convenience wrapper returning only the fitted models.
pub fn calibrated_models(fast: bool) -> (Technology, ModelSuite) {
    let (technology, outcome) = calibrate(fast);
    (technology, outcome.into_models())
}

/// The three named corners of Table I with their paper configurations.
pub fn paper_corners() -> Vec<(&'static str, MultiplierConfig)> {
    vec![
        ("fom", MultiplierConfig::paper_fom_corner()),
        ("power", MultiplierConfig::paper_power_corner()),
        ("variation", MultiplierConfig::paper_variation_corner()),
    ]
}

/// Forwarding [`ProductTable`] wrapper that opts out of LUT snapshotting.
///
/// Routing a pure table through this wrapper forces
/// [`optima_dnn::quantized::QuantizedNetwork`] onto its per-product
/// dynamic-dispatch reference path, which is the "before" side of the
/// LUT-vs-dyn benchmarks and the ground truth of the bit-identity checks in
/// `bench_report`.
#[derive(Debug, Clone)]
pub struct DynDispatchProducts(pub Arc<dyn ProductTable>);

impl ProductTable for DynDispatchProducts {
    fn product(&self, a: u8, b: u8) -> u16 {
        self.0.product(a, b)
    }

    fn name(&self) -> String {
        format!("dyn({})", self.0.name())
    }

    fn supports_snapshot(&self) -> bool {
        false
    }
}

fn naive_conv_forward(conv: &Conv2d, input: &Tensor) -> Tensor {
    let (height, width) = (input.shape()[1], input.shape()[2]);
    Tensor::from_vec(
        &[conv.out_channels(), height, width],
        reference::conv2d_forward(
            input.data(),
            conv.in_channels(),
            height,
            width,
            conv.weights(),
            conv.bias(),
            conv.out_channels(),
            conv.kernel(),
        ),
    )
    .expect("reference conv output has the declared shape")
}

/// Forward pass of `network` through the naive scalar reference kernels of
/// [`optima_dnn::reference`] — the "before" side of the end-to-end inference
/// benchmarks.  Convolutions and dense layers run the original six-deep /
/// dot-product loops; layers that were never lowered onto GEMM (pooling,
/// activation, flatten) use their normal inference path.
///
/// # Panics
///
/// Panics on shape errors — benchmark inputs are constructed to fit.
pub fn naive_network_forward(network: &Network, input: &Tensor) -> Tensor {
    let mut current = input.clone();
    for layer in network.layers() {
        let any = layer.as_any();
        current = if let Some(conv) = any.downcast_ref::<Conv2d>() {
            naive_conv_forward(conv, &current)
        } else if let Some(dense) = any.downcast_ref::<Dense>() {
            Tensor::from_vec(
                &[dense.outputs()],
                reference::dense_forward(
                    current.data(),
                    dense.weights(),
                    dense.bias(),
                    dense.inputs(),
                    dense.outputs(),
                ),
            )
            .expect("reference dense output has the declared shape")
        } else if let Some(block) = any.downcast_ref::<ResidualBlock>() {
            let (conv1, conv2) = block.convolutions();
            let mut branch = naive_conv_forward(conv1, &current);
            branch.map_inplace(|v| v.max(0.0));
            let mut branch = naive_conv_forward(conv2, &branch);
            branch
                .add_assign(&current)
                .expect("residual branch keeps the input shape");
            branch.map_inplace(|v| v.max(0.0));
            branch
        } else {
            layer
                .infer(&current)
                .expect("benchmark inputs fit the network")
        };
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_calibration_produces_usable_models() {
        let (technology, models) = calibrated_models(true);
        assert_eq!(models.vdd_nominal(), technology.vdd_nominal);
    }

    #[test]
    fn calibration_snapshot_cache_round_trips_bit_exactly() {
        // First call may calibrate and save; the second must load the
        // snapshot and produce the identical outcome.
        let (_, first) = calibrate(true);
        let path = calibration_snapshot_path(true).expect("cache enabled by default");
        assert!(path.exists(), "snapshot missing at {}", path.display());
        let (_, second) = calibrate(true);
        assert_eq!(first, second);
    }

    #[test]
    fn cache_knob_parses_the_environment_contract() {
        // Can't mutate the process environment safely under the parallel
        // test runner; assert the default resolution instead.
        let dir = calibration_cache_dir().expect("default cache is enabled");
        assert!(dir.ends_with("target/optima"));
        assert!(calibration_snapshot_path(true)
            .unwrap()
            .to_string_lossy()
            .contains("calibration-fast"));
        assert!(calibration_snapshot_path(false)
            .unwrap()
            .to_string_lossy()
            .contains("calibration-full"));
    }

    #[test]
    fn snapshot_paths_are_keyed_by_geometry() {
        let default_path = calibration_snapshot_path_for(true, &ArrayConfig::default()).unwrap();
        assert_eq!(default_path, calibration_snapshot_path(true).unwrap());
        let int8_path = calibration_snapshot_path_for(true, &ArrayConfig::int8()).unwrap();
        assert_ne!(default_path, int8_path);
        assert!(int8_path.to_string_lossy().contains("16x8-int8"));
    }

    #[test]
    fn paper_corners_are_the_three_from_table_one() {
        let corners = paper_corners();
        assert_eq!(corners.len(), 3);
        assert_eq!(corners[0].0, "fom");
        assert_eq!(corners[1].0, "power");
        assert_eq!(corners[2].0, "variation");
    }
}
