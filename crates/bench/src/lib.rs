//! Shared plumbing for the experiment harnesses and Criterion benches.
//!
//! Every figure and table of the paper has a dedicated binary in `src/bin/`
//! (see DESIGN.md for the per-experiment index); this library provides the
//! pieces they share: model calibration, the three Table I corner
//! configurations, and small table-printing helpers.

use optima_circuit::technology::Technology;
use optima_core::calibration::{CalibrationConfig, CalibrationOutcome, Calibrator};
use optima_core::model::suite::ModelSuite;
use optima_imc::multiplier::MultiplierConfig;

/// Calibrates the OPTIMA models against the golden-reference simulator.
///
/// With `fast = true` a coarser sweep is used (for tests and smoke runs);
/// otherwise the default calibration grids are used.
///
/// # Panics
///
/// Panics if calibration fails, which would indicate a bug in the fitting
/// pipeline rather than a recoverable user error.
pub fn calibrate(fast: bool) -> (Technology, CalibrationOutcome) {
    let technology = Technology::tsmc65_like();
    let config = if fast {
        CalibrationConfig::fast()
    } else {
        CalibrationConfig::default()
    };
    let outcome = Calibrator::new(technology.clone(), config)
        .run()
        .expect("model calibration must succeed");
    (technology, outcome)
}

/// Convenience wrapper returning only the fitted models.
pub fn calibrated_models(fast: bool) -> (Technology, ModelSuite) {
    let (technology, outcome) = calibrate(fast);
    (technology, outcome.into_models())
}

/// Returns `true` when the harness was asked for a quick run
/// (environment variable `OPTIMA_QUICK=1`), used to keep CI times short.
pub fn quick_mode() -> bool {
    std::env::var("OPTIMA_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The three named corners of Table I with their paper configurations.
pub fn paper_corners() -> Vec<(&'static str, MultiplierConfig)> {
    vec![
        ("fom", MultiplierConfig::paper_fom_corner()),
        ("power", MultiplierConfig::paper_power_corner()),
        ("variation", MultiplierConfig::paper_variation_corner()),
    ]
}

/// Prints a Markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a Markdown-style table header with a separator line.
pub fn print_header(cells: &[&str]) {
    print_row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_calibration_produces_usable_models() {
        let (technology, models) = calibrated_models(true);
        assert_eq!(models.vdd_nominal(), technology.vdd_nominal);
    }

    #[test]
    fn paper_corners_are_the_three_from_table_one() {
        let corners = paper_corners();
        assert_eq!(corners.len(), 3);
        assert_eq!(corners[0].0, "fom");
        assert_eq!(corners[1].0, "power");
        assert_eq!(corners[2].0, "variation");
    }

    #[test]
    fn quick_mode_reads_the_environment() {
        // Not set in the test environment unless exported by the caller.
        let _ = quick_mode();
    }
}
