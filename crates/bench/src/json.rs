//! Minimal hand-rolled JSON document model and writer.
//!
//! The build container has no serde_json, so every machine-readable artifact
//! of the workspace — the structured experiment reports of
//! [`crate::report`] and the `BENCH_dnn.json`/`BENCH_analog.json` perf
//! trajectories of the `bench_report` binary — is emitted through this one
//! serializer instead of per-binary `format!` templates.
//!
//! The model is deliberately tiny: ordered objects (insertion order is
//! preserved, so output is deterministic), arrays, strings with full RFC 8259
//! escaping, integers, and floats.  Floats come in two flavours:
//! [`Json::Float`] renders via Rust's shortest-round-trip `Display`, while
//! [`Json::Fixed`] renders with a fixed number of decimals (the convention of
//! the perf reports).  Non-finite floats have no JSON representation and are
//! written as `null`.

use std::fmt::Write as _;

/// A JSON value with deterministic, insertion-ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    /// Rendered via `f64`'s shortest-round-trip `Display`; `NaN`/`±inf`
    /// become `null`.
    Float(f64),
    /// Rendered with a fixed decimal count (`format!("{:.*}")`);
    /// `NaN`/`±inf` become `null`.
    Fixed(f64, usize),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(value: impl Into<String>) -> Self {
        Json::Str(value.into())
    }

    /// Convenience constructor for an ordered object.
    pub fn object(fields: Vec<(&str, Json)>) -> Self {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Pretty-prints the document with two-space indentation and a trailing
    /// newline — the on-disk convention of every JSON artifact in this repo.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Fixed(v, precision) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.precision$}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Writes `s` as a JSON string literal, escaping quotes, backslashes and
/// control characters (`\u00XX` for the ones without a short form).
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_every_special_class() {
        let mut out = String::new();
        write_escaped("a\"b\\c\nd\te\u{01}f\u{08}\u{0c}é", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\\b\\fé\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
        assert_eq!(Json::Fixed(f64::INFINITY, 3).render(), "null\n");
    }

    #[test]
    fn fixed_floats_keep_their_precision() {
        assert_eq!(Json::Fixed(1.5, 6).render(), "1.500000\n");
        assert_eq!(Json::Float(0.1).render(), "0.1\n");
    }

    #[test]
    fn renders_nested_documents_deterministically() {
        let doc = Json::object(vec![
            ("name", Json::str("x")),
            ("values", Json::Array(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Array(vec![])),
            ("nested", Json::object(vec![("ok", Json::Bool(true))])),
        ]);
        assert_eq!(
            doc.render(),
            concat!(
                "{\n",
                "  \"name\": \"x\",\n",
                "  \"values\": [\n    1,\n    2\n  ],\n",
                "  \"empty\": [],\n",
                "  \"nested\": {\n    \"ok\": true\n  }\n",
                "}\n"
            )
        );
    }
}
