//! Legacy shim: runs the registered `fig1_sota` experiment and prints its text
//! report (byte-identical to the pre-refactor harness).  Profile comes from
//! `OPTIMA_PROFILE` (or the deprecated `OPTIMA_QUICK=1`); prefer
//! `optima run fig1_sota` for the full CLI.

fn main() {
    optima_bench::experiments::run_shim("fig1_sota");
}
