//! Fig. 1 — state-of-the-art in-SRAM multiplication design space.
//!
//! Prints the published design points ([8], [14], [15], [16]) that the paper
//! compares by energy per MAC, bit width and clock frequency.

use optima_bench::{print_header, print_row};
use optima_imc::sota::published_design_points;

fn main() {
    println!("# Fig. 1 — state-of-the-art in-SRAM multiplication design space\n");
    print_header(&[
        "Reference",
        "Energy [pJ]",
        "Bit width",
        "Clock [MHz]",
        "Description",
    ]);
    for point in published_design_points() {
        print_row(&[
            point.reference.to_string(),
            format!("{:.3}", point.energy_pj),
            point.bit_width.to_string(),
            format!("{:.0}", point.clock_mhz),
            point.description.to_string(),
        ]);
    }
    println!("\nMAC energy reduction potential: lowest published energy is");
    let min_energy = published_design_points()
        .iter()
        .map(|p| p.energy_pj)
        .fold(f64::INFINITY, f64::min);
    println!("{min_energy:.3} pJ; bit widths remain limited to 4-8 bits.");
}
